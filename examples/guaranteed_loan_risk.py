#!/usr/bin/env python
"""Guaranteed-loan portfolio risk screening (the paper's §5 scenario).

Simulates what the deployed VulnDS system does monthly: build the
bank's guarantee network, attach feature-calibrated probabilities, find
the top-k vulnerable SMEs with BSRBK, and print a risk report a loan
officer could act on — including how much of the answer the bound
machinery certified without any sampling.

Run:
    python examples/guaranteed_loan_risk.py [--scale 0.05] [--k-percent 5]
"""

from __future__ import annotations

import argparse

from repro import BottomKDetector, BoundedSampleReverseDetector
from repro.datasets.registry import load_dataset
from repro.experiments.ground_truth import ground_truth_for
from repro.metrics.ranking import precision_at_k
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the 31k-node network to simulate")
    parser.add_argument("--k-percent", type=float, default=5.0,
                        help="answer size as %% of enterprises")
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    print("Building the guaranteed-loan network "
          f"(scale={args.scale} of the paper's 31,309 enterprises)...")
    loaded = load_dataset("guarantee", scale=args.scale, seed=args.seed)
    graph = loaded.graph
    stats = graph.stats()
    print(f"  {stats.num_nodes} enterprises, {stats.num_edges} guarantees, "
          f"max degree {stats.max_degree} (the mega-guarantor hub)")

    k = loaded.k_for_percent(args.k_percent)
    print(f"\nScreening for the top-{k} vulnerable enterprises...")

    bsrbk = BottomKDetector(bk=16, epsilon=0.3, delta=0.1, seed=args.seed)
    result = bsrbk.detect(graph, k)
    print(f"  BSRBK: {result.samples_used} sampled worlds over "
          f"{result.candidate_size} candidates "
          f"({result.k_verified} answers certified by bounds alone), "
          f"{result.elapsed_seconds:.2f}s")

    bsr = BoundedSampleReverseDetector(epsilon=0.3, delta=0.1, seed=args.seed)
    bsr_result = bsr.detect(graph, k)
    overlap = precision_at_k(result.nodes, bsr_result.top_set())
    print(f"  BSR agreement with BSRBK: {overlap:.0%}")

    print("\nValidating against a 5,000-world Monte-Carlo ground truth...")
    truth = ground_truth_for(loaded, samples=5000)
    truth_set = truth.top_k_labels(graph, k)
    print(f"  precision@{k}: {precision_at_k(result.nodes, truth_set):.2%}")

    rows = []
    for rank, label in enumerate(result.nodes[:15], start=1):
        index = graph.index(label)
        rows.append(
            {
                "rank": rank,
                "enterprise": label,
                "est. default prob": round(result.scores[label], 4),
                "self-risk": round(graph.self_risk(label), 4),
                "guarantees given": graph.out_degree(label),
                "guarantees received": graph.in_degree(label),
                "certified": rank <= result.k_verified,
            }
        )
    print()
    print(render_table(rows, title="Watch list (top 15 shown)"))
    print("\nEnterprises whose estimated default probability far exceeds"
          "\ntheir self-risk are endangered mainly by contagion - the"
          "\nguarantee chains the paper's introduction warns about.")


if __name__ == "__main__":
    main()
