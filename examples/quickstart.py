#!/usr/bin/env python
"""Quickstart: build an uncertain graph and find its vulnerable nodes.

Recreates the paper's running example (Figure 3 / Examples 1-3): five
enterprises A-E in a guaranteed-loan network, every self-risk and
diffusion probability 0.2, and asks each of the five detection methods
for the top-2 vulnerable nodes.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ALL_METHODS,
    UncertainGraph,
    exact_default_probabilities,
    exact_top_k,
    make_detector,
    precision_at_k,
)


def build_figure3_graph() -> UncertainGraph:
    """The toy guaranteed-loan network of the paper's Figure 3."""
    graph = UncertainGraph()
    for enterprise in "ABCDE":
        graph.add_node(enterprise, self_risk=0.2)
    guarantees = [
        ("A", "B"),  # B guarantees A: A's default can pull B down
        ("A", "C"),
        ("B", "D"),
        ("B", "E"),
        ("C", "E"),
        ("D", "E"),
    ]
    for borrower, guarantor in guarantees:
        graph.add_edge(borrower, guarantor, probability=0.2)
    return graph


def main() -> None:
    graph = build_figure3_graph()
    print(f"Graph: {graph}")

    # Exact default probabilities via possible-world enumeration (the
    # graph is tiny; real graphs need the samplers below).
    exact = exact_default_probabilities(graph)
    print("\nExact default probabilities (Definition 1):")
    for label in graph.nodes():
        print(f"  p({label}) = {exact[graph.index(label)]:.5f}")
    print("(the paper's Example 1 computes p(B) = 0.232)")

    k = 2
    truth = set(exact_top_k(graph, k))
    print(f"\nGround-truth top-{k}: {sorted(truth)}")

    print(f"\nTop-{k} according to each method:")
    header = f"{'method':8s} {'answer':12s} {'worlds':>7s} {'verified':>9s} {'precision':>10s}"
    print(header)
    print("-" * len(header))
    for method in ALL_METHODS:
        detector = make_detector(
            method, samples=5000, epsilon=0.2, delta=0.1, seed=7
        )
        result = detector.detect(graph, k)
        precision = precision_at_k(result.nodes, truth)
        print(
            f"{method:8s} {','.join(result.nodes):12s} "
            f"{result.samples_used:7d} {result.k_verified:9d} "
            f"{precision:10.2f}"
        )

    print(
        "\nNote: p(D)-p(B) is only 0.005, far below epsilon=0.2, so the"
        "\nsampling methods may legitimately answer {E,B} or {E,C} - that"
        "\nis exactly the (epsilon, delta) guarantee of Definition 2."
    )


if __name__ == "__main__":
    main()
