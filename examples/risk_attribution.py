#!/usr/bin/env python
"""Risk attribution and intervention planning on a guarantee network.

Detection (the paper's contribution) tells a bank *who* is vulnerable;
this example shows the follow-up analytics a risk team runs next:

1. find the top-k vulnerable enterprises (BSRBK);
2. attribute the top enterprise's risk to its upstream contagion
   sources;
3. rank candidate de-risking interventions by how many expected
   defaults they prevent system-wide;
4. verify the best intervention with a what-if re-simulation.

Run:
    python examples/risk_attribution.py [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro.algorithms.bsrbk import BottomKDetector
from repro.analysis.contagion import attribution, systemic_importance
from repro.analysis.whatif import derisk_impact, rank_interventions
from repro.datasets.registry import load_dataset
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--samples", type=int, default=3000)
    args = parser.parse_args()

    loaded = load_dataset("guarantee", scale=args.scale, seed=args.seed)
    graph = loaded.graph
    print(f"Guarantee network: {graph.num_nodes} enterprises, "
          f"{graph.num_edges} guarantees")

    # 1. Detection.
    k = loaded.k_for_percent(5.0)
    result = BottomKDetector(bk=16, seed=args.seed).detect(graph, k)
    target = result.nodes[0]
    print(f"\nMost vulnerable enterprise: {target} "
          f"(estimated default probability {result.scores[target]:.3f})")

    # 2. Attribution: whose defaults reach it?
    blame = attribution(graph, target, samples=args.samples, seed=args.seed)
    blame_rows = [
        {"source": label, "share of default worlds": round(fraction, 3)}
        for label, fraction in sorted(
            blame.items(), key=lambda kv: -kv[1]
        )[:8]
    ]
    print()
    print(render_table(blame_rows, title=f"Where {target}'s risk comes from"))

    # 3. Intervention planning over the most systemically important nodes.
    importance = systemic_importance(graph, samples=args.samples // 2,
                                     seed=args.seed)
    candidate_indices = importance.argsort()[::-1][:5]
    candidates = [graph.label(int(i)) for i in candidate_indices]
    ranking = rank_interventions(
        graph, candidates, new_self_risk=0.01,
        samples=args.samples // 2, seed=args.seed,
    )
    print()
    print(render_table(
        [
            {"intervention": f"de-risk {label}",
             "expected defaults prevented": round(benefit, 3)}
            for label, benefit in ranking
        ],
        title="Intervention ranking (best first)",
    ))

    # 4. Verify the winner with a full what-if run.
    best, _ = ranking[0]
    impact = derisk_impact(graph, best, 0.01, samples=args.samples,
                           seed=args.seed + 1)
    print(f"\nVerification — {impact.description}:")
    print(f"  expected defaults prevented: "
          f"{impact.total_risk_reduction:.3f}")
    for label, reduction in impact.top_beneficiaries(graph, count=5):
        print(f"  {label}: default probability -{reduction:.3f}")


if __name__ == "__main__":
    main()
