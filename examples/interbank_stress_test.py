#!/usr/bin/env python
"""Interbank contagion stress test on a maximum-entropy network.

Builds the paper's Interbank dataset (125 banks, exposures estimated by
the maximum-entropy approach of Anand, Craig & von Peter), then:

1. ranks banks by default probability under normal conditions;
2. stresses the system by forcing a chosen bank into distress and
   re-ranks — showing which banks a single failure endangers;
3. compares the vulnerability ranking against simple balance-sheet
   intuition (self-risk alone), demonstrating why contagion matters.

Run:
    python examples/interbank_stress_test.py [--stress-bank 0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ForwardSampler
from repro.algorithms.bsrbk import BottomKDetector
from repro.datasets.registry import load_dataset
from repro.utils.tables import render_table


def rank_banks(graph, samples: int, seed: int) -> np.ndarray:
    """Monte-Carlo default probabilities for every bank."""
    return ForwardSampler(graph, seed=seed).estimate_probabilities(samples)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stress-bank", type=int, default=None,
                        help="index of the bank to force into distress "
                             "(default: the most systemically risky one)")
    parser.add_argument("--samples", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()

    print("Estimating the interbank network via maximum entropy (RAS)...")
    loaded = load_dataset("interbank", seed=args.seed)
    graph = loaded.graph
    print(f"  {graph.num_nodes} banks, {graph.num_edges} exposures")

    print("\nBaseline vulnerability (BSRBK top-10):")
    detector = BottomKDetector(bk=16, seed=args.seed)
    baseline_topk = detector.detect(graph, 10)
    baseline = rank_banks(graph, args.samples, args.seed)
    rows = []
    for rank, label in enumerate(baseline_topk.nodes, start=1):
        index = graph.index(label)
        rows.append(
            {
                "rank": rank,
                "bank": label,
                "p(default)": round(float(baseline[index]), 4),
                "self-risk": round(graph.self_risk(label), 4),
                "contagion lift": round(
                    float(baseline[index]) - graph.self_risk(label), 4
                ),
                "creditors": graph.out_degree(label),
            }
        )
    print(render_table(rows))

    # Pick the stress target: the bank whose distress would matter most
    # (most creditors) unless the user chose one.
    if args.stress_bank is None:
        out_degrees = graph.out_csr().degrees
        target_index = int(np.argmax(out_degrees))
    else:
        target_index = args.stress_bank
    target = graph.label(target_index)
    print(f"\nStress scenario: {target} forced into distress "
          f"(self-risk -> 0.99; it lends to {graph.out_degree(target)} banks)")

    stressed_graph = graph.copy()
    stressed_graph.set_self_risk(target, 0.99)
    stressed = rank_banks(stressed_graph, args.samples, args.seed + 1)

    lift = stressed - baseline
    worst = np.argsort(-lift)[:10]
    rows = [
        {
            "bank": graph.label(int(i)),
            "baseline p": round(float(baseline[i]), 4),
            "stressed p": round(float(stressed[i]), 4),
            "increase": round(float(lift[i]), 4),
        }
        for i in worst
        if lift[i] > 1e-6
    ]
    print()
    print(render_table(rows, title="Banks most endangered by the failure"))

    spillover = float(lift[np.arange(len(lift)) != target_index].sum())
    print(f"\nTotal spillover (sum of probability increases elsewhere): "
          f"{spillover:.3f} expected additional defaults")


if __name__ == "__main__":
    main()
