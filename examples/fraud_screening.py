#!/usr/bin/env python
"""Card-fraud exposure screening on a transaction network.

Mirrors the paper's Fraud dataset scenario: a bipartite network of
merchants and consumers where a compromised merchant leaks risk to the
consumers who traded there.  The script finds the top-k at-risk
accounts, then breaks the answer down by node type and shows how the
candidate-pruning machinery concentrates the sampling effort on the
heavy-tail mega-merchants' customers.

Run:
    python examples/fraud_screening.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import bound_pair
from repro.datasets.registry import load_dataset
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--k-percent", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    print(f"Building the fraud transaction network (scale={args.scale})...")
    loaded = load_dataset("fraud", scale=args.scale, seed=args.seed)
    graph = loaded.graph
    merchants = [l for l in graph.labels() if l.startswith("merchant_")]
    consumers = [l for l in graph.labels() if l.startswith("consumer_")]
    print(f"  {len(merchants)} merchants, {len(consumers)} consumers, "
          f"{graph.num_edges} transactions")

    k = loaded.k_for_percent(args.k_percent)

    # Show the pruning pipeline explicitly before running the detector.
    lower, upper = bound_pair(graph, 2, 2)
    reduction = reduce_candidates(graph, lower, upper, k)
    print(f"\nAlgorithm 4 at k={k}:")
    print(f"  verified outright: {reduction.k_verified}")
    print(f"  candidate set |B|: {reduction.candidate_size} "
          f"({reduction.candidate_size / graph.num_nodes:.1%} of all nodes)")

    detector = BoundedSampleReverseDetector(
        epsilon=0.3, delta=0.1, seed=args.seed
    )
    result = detector.detect(graph, k)
    print(f"  reverse-sampled worlds: {result.samples_used} "
          f"(vs {graph.num_nodes} nodes to estimate naively)")

    at_risk_merchants = [n for n in result.nodes if n.startswith("merchant_")]
    at_risk_consumers = [n for n in result.nodes if n.startswith("consumer_")]
    print(f"\nTop-{k} at-risk accounts: {len(at_risk_merchants)} merchants, "
          f"{len(at_risk_consumers)} consumers")

    rows = []
    for rank, label in enumerate(result.nodes[:12], start=1):
        rows.append(
            {
                "rank": rank,
                "account": label,
                "type": "merchant" if label.startswith("merchant_") else "consumer",
                "est. risk": round(result.scores[label], 4),
                "self-risk": round(graph.self_risk(label), 4),
                "exposure (in-deg)": graph.in_degree(label),
            }
        )
    print()
    print(render_table(rows, title="Fraud watch list (top 12 shown)"))
    print("\nConsumers on the list typically trade with many risky"
          "\nmerchants - their risk is almost entirely contagion-driven.")


if __name__ == "__main__":
    main()
