#!/usr/bin/env python
"""Loan default prediction case study (the paper's Table 3, §5.2).

Builds a temporal guaranteed-loan panel (train on 2012, predict
2014-2016), trains all eleven baselines plus the paper's BSR/BSRBK
scorers, and prints the per-year AUC table.  The shape to look for:
contagion-aware scoring (BSR/BSRBK) on top, graph-aware ML (HGAR,
INDDP) next, feature-only ML in the middle, structure-only baselines
at the bottom.

Run:
    python examples/default_prediction_study.py [--nodes 1500]
"""

from __future__ import annotations

import argparse

from repro.datasets.temporal import build_guarantee_panel
from repro.experiments.config import get_config
from repro.experiments.table3_prediction import run
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1500,
                        help="enterprises in the simulated panel")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    edges = round(args.nodes * 1.15)  # the Guarantee dataset's density
    print(f"Simulating a {args.nodes}-enterprise guarantee panel "
          f"(2012 training year, 2014-2016 test years)...")
    panel = build_guarantee_panel(
        num_nodes=args.nodes, num_edges=edges, seed=args.seed
    )
    for year, snapshot in sorted(panel.snapshots.items()):
        print(f"  {year}: default rate {snapshot.labels.mean():.1%}")

    print("\nTraining 11 baselines + BSR/BSRBK and scoring each test year...")
    config = get_config("default").with_overrides(seed=args.seed)
    rows = run(config, panel=panel)
    print()
    print(render_table(rows, title="Default prediction AUC (cf. paper Table 3)"))

    by_method = {row["method"]: row for row in rows}
    years = [key for key in rows[0] if key.startswith("AUC")]
    our_best = max(float(by_method["BSR"][y]) for y in years)
    ml_best = max(float(by_method[m][y]) for y in years
                  for m in ("Wide", "Wide & Deep", "GBDT", "CNN-max",
                            "crDNN", "INDDP", "HGAR"))
    print(f"\nBest contagion-aware AUC: {our_best:.4f}")
    print(f"Best ML-baseline AUC:     {ml_best:.4f}")
    if our_best > ml_best:
        print("=> modelling default *diffusion* beats pure prediction, the "
              "paper's §5.2 conclusion.")


if __name__ == "__main__":
    main()
