#!/usr/bin/env python
"""The full VulnDS risk-control pipeline of the paper's Section 5.

Wires together the three stages of the deployed system — rule engine,
vulnerable-node detection, and loan evaluation — over a simulated
guaranteed-loan book, then pushes a month of loan applications through
it and prints the decisions and the audit trail.

Run:
    python examples/vulnds_pipeline.py [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro.datasets.registry import load_dataset
from repro.sampling.rng import make_rng
from repro.system import (
    BlacklistRule,
    Enterprise,
    ExposureComplianceRule,
    LoanApplication,
    RiskControlCenter,
    RuleEngine,
    SectorComplianceRule,
    TermComplianceRule,
    VulnDS,
    WhitelistRule,
)
from repro.utils.tables import render_table

SECTORS = ("manufacturing", "retail", "construction", "logistics", "mining")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--applications", type=int, default=12)
    parser.add_argument("--seed", type=int, default=31)
    args = parser.parse_args()

    rng = make_rng(args.seed)
    print(f"Loading the guarantee network (scale={args.scale})...")
    loaded = load_dataset("guarantee", scale=args.scale, seed=args.seed)
    graph = loaded.graph
    labels = [str(label) for label in graph.labels()]
    print(f"  {graph.num_nodes} enterprises, {graph.num_edges} guarantees")

    # Stage 1: the rule book (paper: blacklist, whitelist, Basel rules).
    blacklist = set(rng.choice(labels, size=3, replace=False))
    whitelist = {labels[0]}
    engine = RuleEngine(
        [
            WhitelistRule(whitelist),
            BlacklistRule(blacklist),
            SectorComplianceRule(["mining"]),
            ExposureComplianceRule(max_capital_multiple=2.0),
            TermComplianceRule(max_term_months=60),
        ]
    )

    # Stages 2+3: VulnDS detection feeding the evaluation module.
    center = RiskControlCenter(
        rule_engine=engine,
        vulnds=VulnDS(graph),
        watch_fraction=0.1,
        review_threshold=0.45,
    )

    # A month of applications, a few engineered to hit each rule.
    applications = []
    applicants = rng.choice(labels, size=args.applications, replace=False)
    applicants[0] = next(iter(blacklist))  # guaranteed rule hit
    applicants[1] = labels[0]  # whitelisted
    for i, enterprise_id in enumerate(applicants):
        capital = float(rng.uniform(200, 2000))
        sector = SECTORS[int(rng.integers(len(SECTORS)))]
        applications.append(
            LoanApplication(
                application_id=f"2026-06-{i:03d}",
                enterprise=Enterprise(
                    enterprise_id=str(enterprise_id),
                    registered_capital=capital,
                    sector=sector,
                    credit_rating=float(rng.uniform(0.3, 0.9)),
                ),
                amount=float(rng.uniform(100, 3000)),
                term_months=int(rng.integers(6, 72)),
            )
        )

    print(f"\nProcessing {len(applications)} applications "
          "(one monthly VulnDS batch)...")
    decisions = center.process_batch(applications)

    rows = []
    for decision in decisions:
        rows.append(
            {
                "application": decision.application.application_id,
                "enterprise": decision.application.enterprise.enterprise_id,
                "decision": decision.decision.value,
                "vulnerability": (
                    round(decision.vulnerability, 3)
                    if decision.vulnerability is not None
                    else "-"
                ),
                "granted": (
                    round(decision.terms.granted_amount, 0)
                    if decision.terms
                    else "-"
                ),
                "rate": (
                    f"{decision.terms.annual_interest_rate:.2%}"
                    if decision.terms
                    else "-"
                ),
            }
        )
    print()
    print(render_table(rows, title="Loan decisions"))

    print("\nAudit trail (last 8 events):")
    for record in center.audit_log[-8:]:
        print(f"  [{record.event}] {record.detail}")


if __name__ == "__main__":
    main()
