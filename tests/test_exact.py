"""Tests for repro.core.exact — the enumeration oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphError
from repro.core.exact import exact_default_probabilities, exact_top_k
from repro.core.graph import UncertainGraph


def seeded_random_graph(
    seed: int, max_nodes: int = 6, probability_pool=None
) -> UncertainGraph:
    """Small random graph; *probability_pool* restricts the value set."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_nodes + 1))
    pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    m = int(rng.integers(0, min(len(pairs), 12 - n) + 1))
    chosen = rng.choice(len(pairs), size=m, replace=False) if m else []
    if probability_pool is None:
        risks = rng.uniform(0.0, 1.0, n)
        probs = rng.uniform(0.0, 1.0, m)
    else:
        risks = rng.choice(probability_pool, size=n)
        probs = rng.choice(probability_pool, size=m)
    return UncertainGraph.from_arrays(
        risks,
        np.fromiter((pairs[i][0] for i in chosen), dtype=np.int64, count=m),
        np.fromiter((pairs[i][1] for i in chosen), dtype=np.int64, count=m),
        probs,
    )


class TestExactProbabilities:
    def test_paper_example_1(self, paper_graph):
        """The paper's Example 1: p(A) = 0.2 and p(B) = 0.232."""
        probabilities = exact_default_probabilities(paper_graph)
        assert probabilities[paper_graph.index("A")] == pytest.approx(0.2)
        assert probabilities[paper_graph.index("B")] == pytest.approx(0.232)

    def test_symmetry_b_and_c(self, paper_graph):
        """B and C are symmetric in Figure 3, so p(B) == p(C)."""
        probabilities = exact_default_probabilities(paper_graph)
        assert probabilities[paper_graph.index("B")] == pytest.approx(
            probabilities[paper_graph.index("C")]
        )

    def test_sink_is_most_vulnerable(self, paper_graph):
        """E receives risk from everyone, so it has the highest p(v)."""
        probabilities = exact_default_probabilities(paper_graph)
        assert np.argmax(probabilities) == paper_graph.index("E")

    def test_isolated_node_probability_is_self_risk(self, singleton_graph):
        probabilities = exact_default_probabilities(singleton_graph)
        assert probabilities[0] == pytest.approx(0.4)

    def test_two_node_chain_hand_computed(self):
        graph = UncertainGraph()
        graph.add_node("u", 0.3)
        graph.add_node("v", 0.1)
        graph.add_edge("u", "v", 0.5)
        probabilities = exact_default_probabilities(graph)
        # p(v) = 1 - (1 - 0.1)(1 - 0.5 * 0.3)
        assert probabilities[graph.index("v")] == pytest.approx(
            1 - 0.9 * (1 - 0.15)
        )

    def test_probability_bounds(self, small_random_graph):
        probabilities = exact_default_probabilities(small_random_graph)
        ps = small_random_graph.self_risk_array
        assert np.all(probabilities >= ps - 1e-12)
        assert np.all(probabilities <= 1.0 + 1e-12)

    def test_deterministic_graph(self):
        graph = UncertainGraph()
        graph.add_node("a", 1.0)
        graph.add_node("b", 0.0)
        graph.add_edge("a", "b", 1.0)
        probabilities = exact_default_probabilities(graph)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1] == pytest.approx(1.0)

    def test_monotone_in_edge_probability(self):
        def p_of_v(edge_probability):
            graph = UncertainGraph()
            graph.add_node("u", 0.4)
            graph.add_node("v", 0.1)
            graph.add_edge("u", "v", edge_probability)
            return exact_default_probabilities(graph)[graph.index("v")]

        values = [p_of_v(p) for p in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(0.1)


class TestEngineEquivalence:
    """The bit-parallel engine against the scalar reference."""

    def test_random_graphs_agree_to_ulps(self):
        for seed in range(12):
            graph = seeded_random_graph(seed)
            block = exact_default_probabilities(graph, engine="block")
            reference = exact_default_probabilities(graph, engine="reference")
            # Per-world masses and defaults are bit-identical; only the
            # reference's sequential accumulation order rounds differently.
            assert np.allclose(block, reference, rtol=0.0, atol=1e-12)

    def test_pinned_probability_graphs_agree(self):
        pool = np.array([0.0, 0.1, 0.5, 0.9, 1.0])
        for seed in range(12):
            graph = seeded_random_graph(seed + 100, probability_pool=pool)
            block = exact_default_probabilities(graph, engine="block")
            reference = exact_default_probabilities(graph, engine="reference")
            assert np.allclose(block, reference, rtol=0.0, atol=1e-12)

    def test_dyadic_probabilities_agree_exactly(self):
        """With probabilities in {0, 1/2, 1} every product and sum is
        exactly representable, so the engines must agree bit for bit."""
        pool = np.array([0.0, 0.5, 1.0])
        for seed in range(12):
            graph = seeded_random_graph(seed + 200, probability_pool=pool)
            block = exact_default_probabilities(graph, engine="block")
            reference = exact_default_probabilities(graph, engine="reference")
            assert np.array_equal(block, reference)

    def test_self_risk_only_graph(self):
        graph = UncertainGraph()
        for i, risk in enumerate([0.0, 0.25, 0.5, 1.0]):
            graph.add_node(i, risk)
        block = exact_default_probabilities(graph, engine="block")
        reference = exact_default_probabilities(graph, engine="reference")
        assert np.array_equal(block, reference)
        assert np.array_equal(block, graph.self_risk_array)

    def test_symmetric_nodes_tie_exactly(self, paper_graph):
        """B and C are mathematically symmetric; the compensated block
        accumulation must preserve the exact tie the scalar engine sees."""
        block = exact_default_probabilities(paper_graph, engine="block")
        assert block[paper_graph.index("B")] == block[paper_graph.index("C")]

    def test_block_worlds_setting_does_not_change_result(self, paper_graph):
        baseline = exact_default_probabilities(paper_graph, block_worlds=4096)
        for block_worlds in (1, 2, 64, 1024):
            probabilities = exact_default_probabilities(
                paper_graph, block_worlds=block_worlds
            )
            assert np.allclose(
                probabilities, baseline, rtol=0.0, atol=1e-15
            )

    def test_unknown_engine_rejected(self, paper_graph):
        with pytest.raises(GraphError, match="unknown exact engine"):
            exact_default_probabilities(paper_graph, engine="warp")

    def test_default_cap_is_raised_to_28(self):
        from repro.core.worlds import DEFAULT_MAX_CHOICES

        assert DEFAULT_MAX_CHOICES >= 28
        # 29 free choices must still trip the default cap.
        risks = np.full(29, 0.5)
        big = UncertainGraph.from_arrays(
            risks, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), []
        )
        with pytest.raises(GraphError, match="capped"):
            exact_default_probabilities(big)


class TestExactTopK:
    def test_top_1_is_e(self, paper_graph):
        assert exact_top_k(paper_graph, 1) == ["E"]

    def test_top_2(self, paper_graph):
        assert exact_top_k(paper_graph, 2) == ["E", "D"]

    def test_top_all_ordering(self, paper_graph):
        order = exact_top_k(paper_graph, 5)
        assert order[0] == "E"
        assert order[1] == "D"
        assert set(order[2:4]) == {"B", "C"}
        assert order[4] == "A"

    def test_ties_broken_by_insertion_order(self, paper_graph):
        # B and C tie exactly; B was inserted first.
        order = exact_top_k(paper_graph, 5)
        assert order.index("B") < order.index("C")
