"""Tests for repro.core.exact — the enumeration oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import exact_default_probabilities, exact_top_k
from repro.core.graph import UncertainGraph


class TestExactProbabilities:
    def test_paper_example_1(self, paper_graph):
        """The paper's Example 1: p(A) = 0.2 and p(B) = 0.232."""
        probabilities = exact_default_probabilities(paper_graph)
        assert probabilities[paper_graph.index("A")] == pytest.approx(0.2)
        assert probabilities[paper_graph.index("B")] == pytest.approx(0.232)

    def test_symmetry_b_and_c(self, paper_graph):
        """B and C are symmetric in Figure 3, so p(B) == p(C)."""
        probabilities = exact_default_probabilities(paper_graph)
        assert probabilities[paper_graph.index("B")] == pytest.approx(
            probabilities[paper_graph.index("C")]
        )

    def test_sink_is_most_vulnerable(self, paper_graph):
        """E receives risk from everyone, so it has the highest p(v)."""
        probabilities = exact_default_probabilities(paper_graph)
        assert np.argmax(probabilities) == paper_graph.index("E")

    def test_isolated_node_probability_is_self_risk(self, singleton_graph):
        probabilities = exact_default_probabilities(singleton_graph)
        assert probabilities[0] == pytest.approx(0.4)

    def test_two_node_chain_hand_computed(self):
        graph = UncertainGraph()
        graph.add_node("u", 0.3)
        graph.add_node("v", 0.1)
        graph.add_edge("u", "v", 0.5)
        probabilities = exact_default_probabilities(graph)
        # p(v) = 1 - (1 - 0.1)(1 - 0.5 * 0.3)
        assert probabilities[graph.index("v")] == pytest.approx(
            1 - 0.9 * (1 - 0.15)
        )

    def test_probability_bounds(self, small_random_graph):
        probabilities = exact_default_probabilities(small_random_graph)
        ps = small_random_graph.self_risk_array
        assert np.all(probabilities >= ps - 1e-12)
        assert np.all(probabilities <= 1.0 + 1e-12)

    def test_deterministic_graph(self):
        graph = UncertainGraph()
        graph.add_node("a", 1.0)
        graph.add_node("b", 0.0)
        graph.add_edge("a", "b", 1.0)
        probabilities = exact_default_probabilities(graph)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1] == pytest.approx(1.0)

    def test_monotone_in_edge_probability(self):
        def p_of_v(edge_probability):
            graph = UncertainGraph()
            graph.add_node("u", 0.4)
            graph.add_node("v", 0.1)
            graph.add_edge("u", "v", edge_probability)
            return exact_default_probabilities(graph)[graph.index("v")]

        values = [p_of_v(p) for p in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(0.1)


class TestExactTopK:
    def test_top_1_is_e(self, paper_graph):
        assert exact_top_k(paper_graph, 1) == ["E"]

    def test_top_2(self, paper_graph):
        assert exact_top_k(paper_graph, 2) == ["E", "D"]

    def test_top_all_ordering(self, paper_graph):
        order = exact_top_k(paper_graph, 5)
        assert order[0] == "E"
        assert order[1] == "D"
        assert set(order[2:4]) == {"B", "C"}
        assert order[4] == "A"

    def test_ties_broken_by_insertion_order(self, paper_graph):
        # B and C tie exactly; B was inserted first.
        order = exact_top_k(paper_graph, 5)
        assert order.index("B") < order.index("C")
