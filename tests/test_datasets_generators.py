"""Tests for the topology generators (powerlaw, citation, guarantee, fraud)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eq1 import topological_order
from repro.core.errors import DatasetError
from repro.datasets.fraud import fraud_edges, fraud_graph
from repro.datasets.guarantee import guarantee_edges, guarantee_graph
from repro.datasets.powerlaw import (
    citation_edges,
    directed_powerlaw_edges,
    powerlaw_weights,
)
from repro.sampling.rng import make_rng


class TestPowerlawWeights:
    def test_positive(self):
        weights = powerlaw_weights(1000, 2.5, make_rng(0))
        assert np.all(weights >= 1.0)

    def test_heavier_tail_with_lower_exponent(self):
        rng_a, rng_b = make_rng(1), make_rng(1)
        heavy = powerlaw_weights(5000, 1.8, rng_a)
        light = powerlaw_weights(5000, 3.5, rng_b)
        assert heavy.max() > light.max()

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            powerlaw_weights(0, 2.5, make_rng(0))
        with pytest.raises(DatasetError):
            powerlaw_weights(10, 1.0, make_rng(0))


class TestDirectedPowerlawEdges:
    def test_exact_edge_count(self):
        src, dst = directed_powerlaw_edges(200, 800, seed=0)
        assert src.shape == dst.shape == (800,)

    def test_simple_graph(self):
        src, dst = directed_powerlaw_edges(100, 400, seed=1)
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == 400
        assert all(s != d for s, d in pairs)

    def test_degree_cap_respected(self):
        cap = 10
        src, dst = directed_powerlaw_edges(
            200, 500, seed=2, max_degree_cap=cap
        )
        degree = np.bincount(src, minlength=200) + np.bincount(
            dst, minlength=200
        )
        assert degree.max() <= cap

    def test_too_many_edges_rejected(self):
        with pytest.raises(DatasetError):
            directed_powerlaw_edges(5, 100, seed=0)

    def test_deterministic(self):
        a = directed_powerlaw_edges(100, 300, seed=5)
        b = directed_powerlaw_edges(100, 300, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_skewed_degrees(self):
        """Power-law weights must create visible hub structure."""
        src, _ = directed_powerlaw_edges(500, 3000, seed=3, exponent_out=1.8)
        out_degree = np.bincount(src, minlength=500)
        assert out_degree.max() >= 5 * max(out_degree.mean(), 1)


class TestCitationEdges:
    def test_acyclic(self):
        src, dst = citation_edges(300, 340, seed=0)
        assert np.all(dst < src)  # papers cite strictly older papers

    def test_topological_via_graph(self):
        graph = _edges_to_graph(citation_edges(100, 120, seed=1), 100)
        topological_order(graph)  # must not raise

    def test_edge_count(self):
        src, dst = citation_edges(500, 560, seed=2)
        assert src.size == 560
        assert len(set(zip(src.tolist(), dst.tolist()))) == 560

    def test_too_many_edges_rejected(self):
        with pytest.raises(DatasetError):
            citation_edges(5, 100, seed=0)

    def test_seminal_hubs_attract_citations(self):
        src, dst = citation_edges(1000, 1150, seed=3)
        in_degree = np.bincount(dst, minlength=1000)
        assert in_degree[:20].max() >= 10


def _edges_to_graph(edge_arrays, n):
    from repro.core.graph import UncertainGraph

    src, dst = edge_arrays
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, 0.1)
    for s, d in zip(src.tolist(), dst.tolist()):
        graph.add_edge(int(s), int(d), 0.5)
    return graph


class TestGuaranteeGenerator:
    def test_edge_count_and_simplicity(self):
        src, dst = guarantee_edges(1000, 1150, seed=0)
        assert src.size == 1150
        assert len(set(zip(src.tolist(), dst.tolist()))) == 1150

    def test_mega_hub_exists(self):
        src, dst = guarantee_edges(2000, 2300, seed=1)
        degree = np.bincount(src, minlength=2000) + np.bincount(
            dst, minlength=2000
        )
        # Hub 0 should dwarf the average (paper: max degree 14k on 31k nodes).
        assert degree[0] >= 50 * max(1.0, degree.mean())

    def test_minimum_size_enforced(self):
        with pytest.raises(DatasetError):
            guarantee_edges(10, 12, seed=0)

    def test_graph_wrapper(self):
        graph = guarantee_graph(500, 575, seed=2)
        assert graph.num_nodes == 500
        assert graph.num_edges == 575
        assert all(label.startswith("sme_") for label in graph.labels())

    def test_deterministic(self):
        a = guarantee_edges(300, 345, seed=9)
        b = guarantee_edges(300, 345, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestFraudGenerator:
    def test_bipartite_direction(self):
        src, dst, num_merchants = fraud_edges(500, 2000, seed=0)
        assert np.all(src < num_merchants)  # merchants only on the left
        assert np.all(dst >= num_merchants)  # consumers only on the right

    def test_edge_count(self):
        src, dst, _ = fraud_edges(500, 2000, seed=1)
        assert src.size == 2000
        assert len(set(zip(src.tolist(), dst.tolist()))) == 2000

    def test_merchant_heavy_tail(self):
        src, _, num_merchants = fraud_edges(1000, 8000, seed=2)
        merchant_degree = np.bincount(src, minlength=num_merchants)
        assert merchant_degree.max() >= 4 * merchant_degree.mean()

    def test_impossible_density_rejected(self):
        with pytest.raises(DatasetError):
            fraud_edges(20, 10_000, seed=0)

    def test_graph_wrapper_labels(self):
        graph = fraud_graph(200, 500, seed=3)
        merchants = [l for l in graph.labels() if l.startswith("merchant_")]
        consumers = [l for l in graph.labels() if l.startswith("consumer_")]
        assert len(merchants) + len(consumers) == 200
        assert graph.num_edges == 500
