"""Tests for repro.sampling.forward — Algorithm 1 engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph
from repro.sampling.forward import (
    ForwardEstimate,
    ForwardSampler,
    forward_sample_reference,
)
from repro.core.errors import SamplingError
from repro.sampling.rng import make_rng


class TestReferenceSampler:
    def test_returns_boolean_vector(self, paper_graph):
        hv = forward_sample_reference(paper_graph, make_rng(0))
        assert hv.dtype == np.bool_
        assert hv.shape == (5,)

    def test_deterministic_graph(self):
        graph = UncertainGraph()
        graph.add_node("a", 1.0)
        graph.add_node("b", 0.0)
        graph.add_node("c", 0.0)
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("b", "c", 1.0)
        hv = forward_sample_reference(graph, make_rng(0))
        assert hv.all()

    def test_zero_probability_graph(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.0)
        graph.add_node("b", 0.0)
        graph.add_edge("a", "b", 1.0)
        hv = forward_sample_reference(graph, make_rng(0))
        assert not hv.any()

    def test_unbiased_against_exact(self, paper_graph):
        """Mean of reference samples ≈ exact probabilities (3-sigma)."""
        rng = make_rng(42)
        t = 4000
        counts = np.zeros(5)
        for _ in range(t):
            counts += forward_sample_reference(paper_graph, rng)
        estimate = counts / t
        exact = exact_default_probabilities(paper_graph)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)


class TestVectorisedSampler:
    def test_counts_shape_and_range(self, paper_graph):
        estimate = ForwardSampler(paper_graph, seed=1).run(500)
        assert estimate.counts.shape == (5,)
        assert estimate.samples == 500
        assert np.all(estimate.counts >= 0)
        assert np.all(estimate.counts <= 500)

    def test_probabilities_property(self):
        estimate = ForwardEstimate(counts=np.array([50, 100]), samples=200)
        assert np.allclose(estimate.probabilities, [0.25, 0.5])

    def test_unbiased_against_exact(self, paper_graph):
        exact = exact_default_probabilities(paper_graph)
        t = 8000
        estimate = ForwardSampler(paper_graph, seed=7).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)

    def test_unbiased_on_random_graph(self, small_random_graph):
        exact = exact_default_probabilities(small_random_graph)
        t = 8000
        estimate = ForwardSampler(
            small_random_graph, seed=11
        ).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)

    def test_agrees_with_reference_engine(self, small_random_graph):
        """Both engines estimate the same distribution (2-sample check)."""
        t = 6000
        vectorised = ForwardSampler(
            small_random_graph, seed=3
        ).estimate_probabilities(t)
        rng = make_rng(4)
        counts = np.zeros(small_random_graph.num_nodes)
        for _ in range(t):
            counts += forward_sample_reference(small_random_graph, rng)
        reference = counts / t
        # Two-sample normal bound on the difference of means.
        sigma = np.sqrt(2 * 0.25 / t)
        assert np.all(np.abs(vectorised - reference) < 5 * sigma)

    def test_batching_does_not_change_distribution(self, paper_graph):
        small_batches = ForwardSampler(
            paper_graph, seed=5, batch_size=7
        ).run(1000)
        one_batch = ForwardSampler(
            paper_graph, seed=5, batch_size=1000
        ).run(1000)
        # Same seed but different batch split changes the draw layout, so
        # compare statistically rather than exactly.
        assert np.all(
            np.abs(small_batches.probabilities - one_batch.probabilities) < 0.08
        )

    def test_deterministic_with_same_seed(self, paper_graph):
        a = ForwardSampler(paper_graph, seed=9).run(200)
        b = ForwardSampler(paper_graph, seed=9).run(200)
        assert np.array_equal(a.counts, b.counts)

    def test_different_seeds_differ(self, paper_graph):
        a = ForwardSampler(paper_graph, seed=1).run(200)
        b = ForwardSampler(paper_graph, seed=2).run(200)
        assert not np.array_equal(a.counts, b.counts)

    def test_edgeless_graph(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.5)
        graph.add_node("b", 0.25)
        estimate = ForwardSampler(graph, seed=0).run(4000)
        assert estimate.probabilities[0] == pytest.approx(0.5, abs=0.05)
        assert estimate.probabilities[1] == pytest.approx(0.25, abs=0.05)

    def test_invalid_parameters(self, paper_graph):
        with pytest.raises(SamplingError):
            ForwardSampler(paper_graph, batch_size=0)
        with pytest.raises(SamplingError):
            ForwardSampler(paper_graph).run(0)

    def test_sample_batch_rows_are_worlds(self, paper_graph):
        batch = ForwardSampler(paper_graph, seed=0).sample_batch(64)
        assert batch.shape == (64, 5)
        assert batch.dtype == np.bool_

    def test_certain_chain_propagates_in_batch(self):
        graph = UncertainGraph()
        graph.add_node("a", 1.0)
        graph.add_node("b", 0.0)
        graph.add_node("c", 0.0)
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("b", "c", 1.0)
        batch = ForwardSampler(graph, seed=0).sample_batch(16)
        assert batch.all()

    def test_long_chain_depth(self):
        """Propagation must cross arbitrarily many hops within a batch."""
        graph = UncertainGraph()
        length = 40
        graph.add_node(0, 1.0)
        for i in range(1, length):
            graph.add_node(i, 0.0)
            graph.add_edge(i - 1, i, 1.0)
        batch = ForwardSampler(graph, seed=0).sample_batch(4)
        assert batch.all()
