"""Codec tests: event round-trips, record framing, and the golden files
(v1 provenance-free, v2 provenance + topology)."""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.persistence.codec import (
    BATCH_KIND_EVENTS,
    BATCH_KIND_REGISTER,
    CODEC_VERSION,
    CorruptRecordError,
    PersistenceError,
    SUPPORTED_WAL_VERSIONS,
    WAL_MAGIC,
    WAL_MAGIC_PREFIX,
    decode_batch_payload,
    decode_event,
    decode_record_stream,
    encode_batch_payload,
    encode_event,
    encode_record,
)
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeAdd,
    EdgeProbabilityUpdate,
    NodeAdd,
    SelfRiskUpdate,
)

GOLDEN = Path(__file__).parent / "data" / "wal_golden_v1.log"
GOLDEN_V2 = Path(__file__).parent / "data" / "wal_golden_v2.log"

# JSON-scalar labels the durable layer accepts: unicode text (including
# the empty string), ints, bools, floats, None.
labels = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.none(),
)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
vectors = st.lists(probabilities, max_size=30).map(
    lambda values: np.asarray(values, dtype=np.float64)
)
# Optional provenance: both fields absent, or any combination where at
# least one is set (the codec serialises the pair positionally).
sources = st.one_of(st.none(), st.text(max_size=30))
confidences = st.one_of(st.none(), probabilities)


class TestEventRoundTrip:
    @given(label=labels, value=probabilities)
    def test_self_risk(self, label, value):
        event = SelfRiskUpdate(label=label, value=value)
        decoded = decode_event(encode_event(event))
        assert isinstance(decoded, SelfRiskUpdate)
        assert decoded.label == label and decoded.value == value

    @given(src=labels, dst=labels, value=probabilities)
    def test_edge_probability(self, src, dst, value):
        event = EdgeProbabilityUpdate(src=src, dst=dst, value=value)
        decoded = decode_event(encode_event(event))
        assert isinstance(decoded, EdgeProbabilityUpdate)
        assert (decoded.src, decoded.dst, decoded.value) == (src, dst, value)

    @given(values=vectors)
    def test_bulk_self_risk(self, values):
        decoded = decode_event(encode_event(BulkSelfRiskUpdate(values)))
        assert isinstance(decoded, BulkSelfRiskUpdate)
        assert np.array_equal(decoded.values, values)
        assert decoded.values.dtype == np.float64

    @given(values=vectors)
    def test_bulk_edge_probability(self, values):
        decoded = decode_event(
            encode_event(BulkEdgeProbabilityUpdate(values))
        )
        assert isinstance(decoded, BulkEdgeProbabilityUpdate)
        assert np.array_equal(decoded.values, values)

    def test_decoded_bulk_vector_is_writable(self):
        decoded = decode_event(
            encode_event(BulkSelfRiskUpdate(np.array([0.1, 0.2])))
        )
        decoded.values[0] = 0.9  # must own its memory, not the read buffer

    def test_non_json_label_rejected(self):
        with pytest.raises(PersistenceError, match="JSON-scalar"):
            encode_event(SelfRiskUpdate(label=("tuple", 1), value=0.5))

    def test_unknown_tag_rejected(self):
        with pytest.raises(CorruptRecordError, match="unknown event tag"):
            decode_event(bytes([250]) + b"{}")

    def test_empty_payload_rejected(self):
        with pytest.raises(CorruptRecordError):
            decode_event(b"")

    def test_misaligned_bulk_vector_rejected(self):
        blob = encode_event(BulkSelfRiskUpdate(np.array([0.5])))
        with pytest.raises(CorruptRecordError, match="aligned"):
            decode_event(blob + b"xyz")


class TestProvenanceAndTopologyRoundTrip:
    """v2 additions: optional provenance on per-entity events, and the
    ``NodeAdd``/``EdgeAdd`` topology tags."""

    @given(label=labels, value=probabilities,
           source=sources, confidence=confidences)
    def test_self_risk_with_provenance(
        self, label, value, source, confidence
    ):
        event = SelfRiskUpdate(
            label=label, value=value, source=source, confidence=confidence
        )
        decoded = decode_event(encode_event(event))
        assert decoded == event

    @given(src=labels, dst=labels, value=probabilities,
           source=sources, confidence=confidences)
    def test_edge_probability_with_provenance(
        self, src, dst, value, source, confidence
    ):
        event = EdgeProbabilityUpdate(
            src=src,
            dst=dst,
            value=value,
            source=source,
            confidence=confidence,
        )
        decoded = decode_event(encode_event(event))
        assert decoded == event

    @given(label=labels, risk=probabilities,
           source=sources, confidence=confidences)
    def test_node_add(self, label, risk, source, confidence):
        event = NodeAdd(
            label=label,
            self_risk=risk,
            source=source,
            confidence=confidence,
        )
        decoded = decode_event(encode_event(event))
        assert isinstance(decoded, NodeAdd)
        assert decoded == event

    @given(src=labels, dst=labels, prob=probabilities,
           source=sources, confidence=confidences)
    def test_edge_add(self, src, dst, prob, source, confidence):
        event = EdgeAdd(
            src=src,
            dst=dst,
            probability=prob,
            source=source,
            confidence=confidence,
        )
        decoded = decode_event(encode_event(event))
        assert isinstance(decoded, EdgeAdd)
        assert decoded == event

    @given(label=labels, value=probabilities)
    def test_provenance_free_events_stay_v1_byte_identical(
        self, label, value
    ):
        # The compatibility keystone: a v1 writer's events encode to the
        # same bytes under the v2 codec, so the v1 golden file keeps
        # pinning this codec and old readers were never misled.
        event = SelfRiskUpdate(label=label, value=value)
        blob = encode_event(event)
        import json as _json

        assert blob[0] == 1
        assert _json.loads(blob[1:].decode("utf-8")) == [label, value]

    def test_non_string_source_rejected(self):
        with pytest.raises(PersistenceError, match="source"):
            encode_event(SelfRiskUpdate("a", 0.5, source=123))

    def test_wrong_field_count_rejected(self):
        # 3 fields is neither the 2-field base nor the 4-field
        # provenance form of a self-risk body.
        with pytest.raises(CorruptRecordError, match="fields"):
            decode_event(bytes([1]) + b'["a", 0.5, "stray"]')


class TestRecordFraming:
    @given(payloads=st.lists(st.binary(max_size=100), max_size=10))
    def test_stream_round_trip(self, payloads):
        data = b"".join(encode_record(payload) for payload in payloads)
        decoded = [payload for payload, _ in decode_record_stream(data)]
        assert decoded == payloads

    def test_torn_tail_stops_stream(self):
        data = encode_record(b"first") + encode_record(b"second")
        torn = data[:-3]  # cut the last record's payload short
        decoded = [payload for payload, _ in decode_record_stream(torn)]
        assert decoded == [b"first"]

    def test_corrupt_crc_stops_stream(self):
        record_a = encode_record(b"aaaa")
        record_b = bytearray(encode_record(b"bbbb"))
        record_b[-1] ^= 0xFF  # flip a payload bit -> CRC mismatch
        decoded = [
            payload
            for payload, _ in decode_record_stream(record_a + bytes(record_b))
        ]
        assert decoded == [b"aaaa"]

    def test_end_offset_marks_good_prefix(self):
        data = encode_record(b"x") + encode_record(b"yy")
        offsets = [end for _, end in decode_record_stream(data)]
        assert offsets[-1] == len(data)

    def test_declared_length_is_trusted_only_with_crc(self):
        # A record claiming a huge payload must not be yielded.
        header = struct.pack("<II", 10**6, zlib.crc32(b""))
        assert list(decode_record_stream(header + b"short")) == []


class TestBatchPayload:
    def test_events_round_trip(self):
        parts = [b"one", b"two", b""]
        payload = encode_batch_payload(BATCH_KIND_EVENTS, 42, "tenant", parts)
        kind, seq, tenant_id, decoded = decode_batch_payload(payload)
        assert kind == BATCH_KIND_EVENTS
        assert (seq, tenant_id, decoded) == (42, "tenant", parts)

    def test_register_round_trip_with_int_tenant(self):
        payload = encode_batch_payload(BATCH_KIND_REGISTER, 7, 123, [b"{}"])
        kind, seq, tenant_id, parts = decode_batch_payload(payload)
        assert kind == BATCH_KIND_REGISTER
        assert (seq, tenant_id, parts) == (7, 123, [b"{}"])

    def test_unknown_kind_rejected(self):
        payload = encode_batch_payload(BATCH_KIND_EVENTS, 1, "t", [])
        with pytest.raises(CorruptRecordError, match="unknown batch kind"):
            decode_batch_payload(b"Z" + payload[1:])

    def test_trailing_bytes_rejected(self):
        payload = encode_batch_payload(BATCH_KIND_EVENTS, 1, "t", [b"x"])
        with pytest.raises(CorruptRecordError, match="trailing"):
            decode_batch_payload(payload + b"junk")

    def test_unhashable_tenant_rejected(self):
        with pytest.raises(PersistenceError, match="tenant id"):
            encode_batch_payload(BATCH_KIND_EVENTS, 1, object(), [])


class TestGoldenFile:
    """Pin the v1 on-disk format against a committed byte-exact log.

    v2 extended the grammar (provenance tails, topology tags) without
    changing any byte a v1 writer could produce, so this file keeps
    pinning the current codec.  If decoding it breaks, the change is a
    WAL format break: bump CODEC_VERSION and add a new golden file
    rather than editing this one — older logs in the field must stay
    readable or be refused, never misread.
    """

    def test_magic(self):
        data = GOLDEN.read_bytes()
        assert data[:9] == WAL_MAGIC_PREFIX + bytes([1])
        assert CODEC_VERSION == 2, "bump needs a new golden file"
        assert WAL_MAGIC == WAL_MAGIC_PREFIX + bytes([2])
        # v1 logs in the field must stay readable, never misread.
        assert set(SUPPORTED_WAL_VERSIONS) == {1, 2}
        assert len(WAL_MAGIC) == len(data[:9])

    def test_decodes_to_pinned_batches(self):
        data = GOLDEN.read_bytes()
        batches = [
            decode_batch_payload(payload)
            for payload, _ in decode_record_stream(data, start=len(WAL_MAGIC))
        ]
        assert [batch[0] for batch in batches] == [
            BATCH_KIND_REGISTER,
            BATCH_KIND_EVENTS,
            BATCH_KIND_EVENTS,
            BATCH_KIND_EVENTS,
        ]
        assert [batch[1] for batch in batches] == [1, 2, 3, 4]
        assert [batch[2] for batch in batches] == ["alpha", "alpha", 17, "alpha"]

        register = batches[0][3]
        assert register == [b'{"k": 3, "kwargs": {"epsilon": 0.5, "seed": 7}}']

        scalars = [decode_event(part) for part in batches[1][3]]
        assert scalars == [
            SelfRiskUpdate("B", 0.232),
            EdgeProbabilityUpdate("A", "B", 0.2),
        ]

        bulk_self, bulk_edge = [decode_event(part) for part in batches[2][3]]
        assert np.array_equal(bulk_self.values, [0.0, 0.25, 0.5, 1.0])
        assert np.array_equal(bulk_edge.values, [0.125, 0.875])

        (unicode_event,) = [decode_event(part) for part in batches[3][3]]
        assert unicode_event == SelfRiskUpdate("é-node", 1.0)

    def test_wal_reader_recovers_golden(self, tmp_path):
        from repro.persistence.wal import WriteAheadLog

        target = tmp_path / "wal-00000001.log"
        target.write_bytes(GOLDEN.read_bytes())
        with WriteAheadLog(tmp_path) as wal:
            batches = wal.read_batches()
        assert [batch.kind for batch in batches] == [
            "register", "events", "events", "events",
        ]
        assert batches[0].register == {
            "k": 3, "kwargs": {"epsilon": 0.5, "seed": 7},
        }


class TestGoldenFileV2:
    """Pin the v2 on-disk format: provenance tails + topology tags.

    Same contract as the v1 pin: if this file stops decoding to exactly
    these batches, that is a format break — bump CODEC_VERSION and add
    ``wal_golden_v3.log`` instead of editing this test.
    """

    def test_magic(self):
        data = GOLDEN_V2.read_bytes()
        assert data[:9] == WAL_MAGIC_PREFIX + bytes([2])
        assert WAL_MAGIC == data[:9]

    def test_decodes_to_pinned_batches(self):
        data = GOLDEN_V2.read_bytes()
        batches = [
            decode_batch_payload(payload)
            for payload, _ in decode_record_stream(data, start=len(WAL_MAGIC))
        ]
        assert [batch[0] for batch in batches] == [
            BATCH_KIND_REGISTER,
            BATCH_KIND_EVENTS,
            BATCH_KIND_EVENTS,
            BATCH_KIND_EVENTS,
        ]
        assert [batch[1] for batch in batches] == [1, 2, 3, 4]
        assert [batch[2] for batch in batches] == [
            "alpha", "alpha", "alpha", 17,
        ]

        register = batches[0][3]
        assert register == [b'{"k": 3, "kwargs": {"epsilon": 0.5, "seed": 7}}']

        scalars = [decode_event(part) for part in batches[1][3]]
        assert scalars == [
            SelfRiskUpdate("B", 0.232, source="feed", confidence=0.875),
            EdgeProbabilityUpdate("A", "B", 0.2),
        ]

        topology = [decode_event(part) for part in batches[2][3]]
        assert topology == [
            NodeAdd("C", 0.3, source="crawl:seed", confidence=1.0),
            EdgeAdd("C", "A", 0.45, source="crawl:degree/0", confidence=1.0),
            EdgeAdd("A", "C", 0.5),
        ]

        (unicode_event,) = [decode_event(part) for part in batches[3][3]]
        assert unicode_event == SelfRiskUpdate("é-node", 1.0)

    def test_wal_reader_recovers_golden(self, tmp_path):
        from repro.persistence.wal import WriteAheadLog

        target = tmp_path / "wal-00000001.log"
        target.write_bytes(GOLDEN_V2.read_bytes())
        with WriteAheadLog(tmp_path) as wal:
            batches = wal.read_batches()
        assert [batch.kind for batch in batches] == [
            "register", "events", "events", "events",
        ]
        topology = batches[2].events
        assert topology[0].source == "crawl:seed"
        assert topology[1] == EdgeAdd(
            "C", "A", 0.45, source="crawl:degree/0", confidence=1.0
        )
