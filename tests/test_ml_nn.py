"""Gradient checks and training tests for the numpy NN engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ml.nn import (
    Adam,
    Conv1D,
    Dense,
    GlobalMaxPool1D,
    LeakyReLU,
    ReLU,
    Sequential,
    bce_grad,
    bce_with_logits,
    train_network,
)
from repro.core.errors import ReproError
from repro.sampling.rng import make_rng


def finite_difference_check(model, X, y, epsilon=1e-6, tolerance=1e-4):
    """Compare backprop parameter gradients against central differences."""
    logits = model.forward(X)
    model.backward(bce_grad(logits, y))
    for param, grad in model.parameters():
        flat = param.ravel()
        flat_grad = grad.ravel()
        # Spot-check a handful of coordinates to keep the test fast.
        rng = np.random.default_rng(0)
        for index in rng.choice(flat.size, size=min(flat.size, 6), replace=False):
            original = flat[index]
            flat[index] = original + epsilon
            loss_plus = bce_with_logits(model.forward(X), y)
            flat[index] = original - epsilon
            loss_minus = bce_with_logits(model.forward(X), y)
            flat[index] = original
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            assert flat_grad[index] == pytest.approx(
                numeric, abs=tolerance
            ), f"gradient mismatch at parameter coordinate {index}"


@pytest.fixture
def toy_data():
    rng = make_rng(0)
    X = rng.normal(size=(32, 6))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.float64)
    return X, y


class TestGradients:
    def test_dense_gradient(self, toy_data):
        X, y = toy_data
        model = Sequential([Dense(6, 1, make_rng(1))])
        finite_difference_check(model, X, y)

    def test_mlp_gradient(self, toy_data):
        X, y = toy_data
        rng = make_rng(2)
        model = Sequential([Dense(6, 8, rng), ReLU(), Dense(8, 1, rng)])
        finite_difference_check(model, X, y)

    def test_leaky_relu_gradient(self, toy_data):
        X, y = toy_data
        rng = make_rng(3)
        model = Sequential([Dense(6, 5, rng), LeakyReLU(0.1), Dense(5, 1, rng)])
        finite_difference_check(model, X, y)

    def test_conv_maxpool_gradient(self, toy_data):
        X, y = toy_data
        rng = make_rng(4)
        model = Sequential(
            [Conv1D(3, 4, rng), ReLU(), GlobalMaxPool1D(), Dense(4, 1, rng)]
        )
        finite_difference_check(model, X, y, tolerance=2e-4)


class TestLayerMechanics:
    def test_dense_shapes(self):
        layer = Dense(4, 7, make_rng(0))
        out = layer.forward(np.zeros((3, 4)))
        assert out.shape == (3, 7)
        back = layer.backward(np.ones((3, 7)))
        assert back.shape == (3, 4)

    def test_relu_zeroes_negatives(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(ReproError):
            ReLU().backward(np.zeros((1, 1)))
        with pytest.raises(ReproError):
            Dense(2, 2, make_rng(0)).backward(np.zeros((1, 2)))

    def test_conv_output_shape(self):
        layer = Conv1D(3, 5, make_rng(0))
        out = layer.forward(np.zeros((2, 8)))
        assert out.shape == (2, 6, 5)

    def test_conv_rejects_short_input(self):
        layer = Conv1D(5, 2, make_rng(0))
        with pytest.raises(ReproError):
            layer.forward(np.zeros((1, 3)))

    def test_maxpool_selects_maximum(self):
        layer = GlobalMaxPool1D()
        x = np.array([[[1.0], [5.0], [3.0]]])  # (1, 3, 1)
        assert layer.forward(x)[0, 0] == 5.0

    def test_maxpool_routes_gradient_to_argmax(self):
        layer = GlobalMaxPool1D()
        x = np.array([[[1.0], [5.0], [3.0]]])
        layer.forward(x)
        grad = layer.backward(np.array([[2.0]]))
        assert grad[0, 1, 0] == 2.0
        assert grad[0, 0, 0] == 0.0

    def test_sequential_requires_layers(self):
        with pytest.raises(ReproError):
            Sequential([])


class TestLoss:
    def test_bce_matches_manual(self):
        logits = np.array([0.0, 2.0])
        y = np.array([1.0, 0.0])
        manual = -(np.log(0.5) + np.log(1 - 1 / (1 + np.exp(-2)))) / 2
        assert bce_with_logits(logits, y) == pytest.approx(manual)

    def test_bce_grad_shape_and_sign(self):
        logits = np.array([[3.0], [-3.0]])
        y = np.array([0.0, 1.0])
        grad = bce_grad(logits, y)
        assert grad.shape == logits.shape
        assert grad[0, 0] > 0  # over-predicting a negative
        assert grad[1, 0] < 0  # under-predicting a positive

    def test_bce_stable_for_large_logits(self):
        loss = bce_with_logits(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-9)


class TestTraining:
    def test_adam_reduces_loss(self, toy_data):
        X, y = toy_data
        rng = make_rng(5)
        model = Sequential([Dense(6, 8, rng), ReLU(), Dense(8, 1, rng)])
        losses = train_network(
            model, X, y, epochs=60, batch_size=16, lr=1e-2, seed=6
        )
        assert losses[-1] < losses[0] * 0.6

    def test_training_fits_separable_data(self):
        rng = make_rng(7)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(np.float64)
        model = Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 1, rng)])
        train_network(model, X, y, epochs=80, batch_size=32, lr=1e-2, seed=8)
        predictions = model.forward(X).ravel() > 0
        assert (predictions == y.astype(bool)).mean() > 0.95

    def test_adam_step_moves_parameters(self):
        layer = Dense(2, 1, make_rng(9))
        before = layer.weight.copy()
        layer.forward(np.ones((4, 2)))
        layer.backward(np.ones((4, 1)))
        Adam(layer.parameters(), lr=0.1).step()
        assert not np.allclose(layer.weight, before)
