"""Edge-case tests for the BSRBK detector's early-stopping machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector, assemble_answer
from repro.algorithms.bsrbk import BottomKDetector
from repro.bounds.candidates import reduce_candidates
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph


def all_verified_graph():
    """Separations so extreme that bounds alone decide the top-2."""
    graph = UncertainGraph()
    graph.add_node("hot1", 0.95)
    graph.add_node("hot2", 0.9)
    graph.add_node("cold1", 0.01)
    graph.add_node("cold2", 0.02)
    graph.add_edge("cold1", "cold2", 0.05)
    return graph


class TestFullyVerifiedAnswers:
    def test_bsr_skips_sampling(self):
        result = BoundedSampleReverseDetector(seed=0).detect(
            all_verified_graph(), 2
        )
        assert result.k_verified == 2
        assert result.samples_used == 0
        assert set(result.nodes) == {"hot1", "hot2"}

    def test_bsrbk_skips_sampling(self):
        result = BottomKDetector(seed=0).detect(all_verified_graph(), 2)
        assert result.k_verified == 2
        assert result.samples_used == 0
        assert set(result.nodes) == {"hot1", "hot2"}
        assert result.details["stopped_early"] is False


class TestExhaustedBudgetFallback:
    def test_bsrbk_falls_back_to_frequencies(self, paper_graph):
        """With a huge bk the stop condition can never fire; BSRBK must
        degrade into BSR (consume the budget, use empirical estimates)."""
        bsrbk = BottomKDetector(bk=10_000, epsilon=0.3, seed=1)
        result = bsrbk.detect(paper_graph, 2)
        assert result.details["stopped_early"] is False
        bsr = BoundedSampleReverseDetector(epsilon=0.3, seed=1)
        reference = bsr.detect(paper_graph, 2)
        assert result.samples_used == reference.samples_used

    def test_tiny_bk_stops_very_early(self, paper_graph):
        result = BottomKDetector(bk=2, epsilon=0.3, seed=2).detect(
            paper_graph, 2
        )
        full = BoundedSampleReverseDetector(epsilon=0.3, seed=2).detect(
            paper_graph, 2
        )
        assert result.samples_used < full.samples_used


class TestAssembleAnswer:
    def test_raises_when_candidates_insufficient(self, paper_graph):
        lower = np.array([0.9, 0.1, 0.1, 0.1, 0.95])
        upper = np.array([0.92, 0.2, 0.2, 0.2, 0.97])
        reduction = reduce_candidates(paper_graph, lower, upper, k=1)
        # Forge an impossible reduction: no candidates, nothing verified.
        import dataclasses

        forged = dataclasses.replace(
            reduction,
            verified=np.array([], dtype=np.int64),
            candidates=np.array([], dtype=np.int64),
        )
        with pytest.raises(SamplingError, match="candidate set"):
            assemble_answer(paper_graph, forged, lower, None, 1)

    def test_merges_verified_before_sampled(self, paper_graph):
        lower = np.array([0.1, 0.1, 0.1, 0.6, 0.95])
        upper = np.array([0.2, 0.2, 0.2, 0.7, 0.95])
        reduction = reduce_candidates(paper_graph, lower, upper, k=2)
        assert reduction.k_verified == 1  # E
        probabilities = np.full(reduction.candidate_size, 0.5)
        nodes, scores = assemble_answer(
            paper_graph, reduction, lower, probabilities, 2
        )
        assert nodes[0] == "E"
        assert len(nodes) == 2
        assert scores["E"] == pytest.approx(0.95)


class TestSeedStability:
    @pytest.mark.parametrize("bk", [4, 16, 64])
    def test_same_seed_same_processing_length(self, paper_graph, bk):
        first = BottomKDetector(bk=bk, seed=9).detect(paper_graph, 2)
        second = BottomKDetector(bk=bk, seed=9).detect(paper_graph, 2)
        assert first.samples_used == second.samples_used
        assert first.nodes == second.nodes
