"""Serving-layer tests for query families and carried sidecar state.

Covers the routes the tentpole threads through the upper layers:

* :meth:`RiskService.query_family` — read-your-writes flushing, the
  family-tagged result cache (hits across tenants with token-equal
  histories, misses across distinct families/params, invalidation on
  update), and lockstep with a direct monitor;
* snapshot ``extras`` — JSON sidecar state riding the durable snapshot
  manifest and resurfacing in :attr:`RiskService.recovered_extras`;
* :class:`EwmaCostModel` persistence — ``state_dict`` round-trips and a
  restarted front end predicting from the recovered model immediately;
* the HTTP front end routing ``family``/``params`` bodies end to end;
* the ``query`` CLI subcommand.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.cli import main, query_main
from repro.datasets.registry import load_dataset
from repro.frontend.admission import EwmaCostModel
from repro.frontend.client import FrontendClient
from repro.frontend.server import FrontendServer
from repro.queries import QueryEngine, get_query_family
from repro.sampling.worldstate import WorldView
from repro.serving.service import RiskService
from repro.streaming.events import SelfRiskUpdate
from repro.streaming.monitor import RefreshReport, TopKMonitor


@pytest.fixture(scope="module")
def serving_graph():
    return load_dataset("guarantee", scale=0.02, seed=5).graph


def make_service(graph, **kwargs):
    kwargs.setdefault("mode", "serial")
    kwargs.setdefault("monitor_defaults", {"seed": 0, "engine": "indexed"})
    return RiskService(graph, **kwargs)


def make_report(elapsed, worlds):
    return RefreshReport(
        mode="test",
        reason="synthetic",
        dirty_nodes=0,
        dirty_edges=0,
        bounds_recomputed=0,
        reduction_reused=True,
        sampling="observed",
        worlds_repaired=worlds,
        samples=worlds,
        elapsed_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# RiskService.query_family
# ----------------------------------------------------------------------
class TestServiceQueryFamily:
    def test_matches_direct_monitor(self, serving_graph):
        with make_service(serving_graph) as service:
            service.register_tenant("a", 4)
            served = service.query_family("a", "kcore", params={"k": 2})
            direct = TopKMonitor(
                serving_graph.copy(), 4, seed=0, engine="indexed"
            ).query("kcore", k=2)
            assert served.same_answer(direct)

    def test_cache_shared_across_token_equal_tenants(self, serving_graph):
        with make_service(serving_graph) as service:
            service.register_tenant("a", 4)
            service.register_tenant("b", 4)
            first = service.query_family("a", "skyline")
            hit_same = service.query_family("a", "skyline")
            hit_cross = service.query_family("b", "skyline")
            assert hit_same is first and hit_cross is first
            assert service.cache_stats == {"hits": 2, "misses": 1}

    def test_cache_keys_disjoint_per_family_and_params(self, serving_graph):
        with make_service(serving_graph) as service:
            service.register_tenant("a", 4)
            kcore2 = service.query_family("a", "kcore", params={"k": 2})
            kcore3 = service.query_family("a", "kcore", params={"k": 3})
            skyline = service.query_family("a", "skyline")
            topk = service.query_topk("a")
            family_topk = service.query_family("a", "topk", params={"k": 4})
            assert kcore2 is not kcore3
            assert skyline.family == "skyline"
            assert family_topk is not topk  # distinct cache namespaces
            assert service.cache_stats["hits"] == 0
            assert service.cache_stats["misses"] == 5

    def test_update_invalidates_and_reflects(self, serving_graph):
        with make_service(serving_graph) as service:
            service.register_tenant("a", 4)
            before = service.query_family("a", "kcore", params={"k": 2})
            label = serving_graph.label(0)
            service.submit_update("a", SelfRiskUpdate(label, 0.97))
            after = service.query_family("a", "kcore", params={"k": 2})
            assert after is not before  # stale entry must not be served
            # Read-your-writes: the answer equals a fresh monitor over
            # the patched graph (same seed => bit-identical).
            shadow = serving_graph.copy()
            shadow.set_self_risk(label, 0.97)
            fresh = TopKMonitor(shadow, 4, seed=0, engine="indexed")
            assert after.same_answer(fresh.query("kcore", k=2))

    def test_unknown_family_raises(self, serving_graph):
        from repro.core.errors import ReproError

        with make_service(serving_graph) as service:
            service.register_tenant("a", 4)
            with pytest.raises(ReproError, match="unknown query family"):
                service.query_family("a", "no-such-family")


# ----------------------------------------------------------------------
# Snapshot extras + EWMA persistence
# ----------------------------------------------------------------------
class TestCarriedExtras:
    def test_extras_round_trip_through_snapshot(
        self, serving_graph, tmp_path
    ):
        wal = tmp_path / "state"
        with make_service(serving_graph, wal_dir=wal) as service:
            service.register_tenant("a", 4)
            service.query_topk("a")
            service.register_extras_provider(
                "probe", lambda: {"answer": 42, "nested": {"x": [1, 2]}}
            )
            service.snapshot_to_disk()
        with make_service(serving_graph, wal_dir=wal) as recovered:
            assert recovered.recovered_extras["probe"] == {
                "answer": 42, "nested": {"x": [1, 2]}
            }

    def test_failing_provider_does_not_block_snapshot(
        self, serving_graph, tmp_path
    ):
        with make_service(
            serving_graph, wal_dir=tmp_path / "state"
        ) as service:
            service.register_tenant("a", 4)
            service.query_topk("a")
            service.register_extras_provider("good", lambda: {"ok": True})

            def explode():
                raise RuntimeError("sidecar boom")

            service.register_extras_provider("bad", explode)
            snapshot = service.snapshot_to_disk()
            assert snapshot.extras == {"good": {"ok": True}}

    def test_ewma_state_dict_round_trip(self):
        model = EwmaCostModel(alpha=0.4)
        model.observe("t", make_report(0.02, 0))
        model.observe("t", make_report(0.12, 10))
        model.observe("u", make_report(0.30, 40))
        clone = EwmaCostModel(alpha=0.4)
        clone.load_state_dict(
            json.loads(json.dumps(model.state_dict()))
        )
        for tenant in ("t", "u", "never-seen"):
            assert clone.predict(tenant) == pytest.approx(
                model.predict(tenant)
            )

    def test_cold_load_resets(self):
        model = EwmaCostModel()
        model.observe("t", make_report(0.5, 5))
        model.load_state_dict({})
        assert model.predict("t") is None

    def test_frontend_restores_cost_model_across_restart(
        self, serving_graph, tmp_path
    ):
        wal = tmp_path / "state"
        with make_service(serving_graph, wal_dir=wal) as service:
            server = FrontendServer(service, {"a": "tok"})
            service.register_tenant("a", 4)
            service.query_topk("a")
            server.cost_model.observe("a", make_report(0.08, 0))
            server.cost_model.observe("a", make_report(0.20, 12))
            expected = server.cost_model.predict("a")
            service.snapshot_to_disk()
        with make_service(serving_graph, wal_dir=wal) as recovered:
            reborn = FrontendServer(recovered, {"a": "tok"})
            # The restarted front end predicts immediately — no blind
            # window while the EWMA re-warms from scratch.
            assert reborn.cost_model.predict("a") == pytest.approx(expected)


# ----------------------------------------------------------------------
# HTTP front end: family routing over the wire
# ----------------------------------------------------------------------
class ServerHarness:
    """A FrontendServer on its own event-loop thread."""

    def __init__(self, service, tokens, **kwargs):
        kwargs.setdefault("flush_interval", 0.01)
        kwargs.setdefault("slo_ms", 10_000.0)
        kwargs.setdefault("rate_limit", 500.0)
        self.server = FrontendServer(service, tokens, **kwargs)
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main_loop():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main_loop())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(30), "server failed to start"
        return self.server

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


class TestFrontendFamilies:
    @pytest.fixture()
    def service(self, serving_graph):
        service = make_service(serving_graph)
        service.register_tenant("alpha", 4)
        yield service
        service.close()

    def test_family_queries_over_the_wire(self, service, serving_graph):
        with ServerHarness(service, {"alpha": "alpha-secret"}) as server:
            client = FrontendClient(
                "127.0.0.1", server.port, "alpha-secret", tenant="alpha",
                sleep=lambda _d: None,
            )
            kcore = client.query(family="kcore", params={"k": 2, "top": 5})
            assert kcore.ok
            body = kcore.payload
            assert body["degraded"] is False and body["stale"] is False
            assert body["result"]["family"] == "kcore"
            assert len(body["result"]["nodes"]) == 5
            # Wire answer equals the direct engine answer on the same
            # monitor worlds (seed-pinned => deterministic).
            direct = TopKMonitor(
                serving_graph.copy(), 4, seed=0, engine="indexed"
            ).query("kcore", k=2, top=5)
            assert body["result"]["nodes"] == direct.nodes.tolist()
            assert body["result"]["values"] == pytest.approx(
                direct.values.tolist()
            )

            reliability = client.query(
                family="reliability",
                params={"pairs": [[0, 7]], "cluster": [0, 1, 2]},
            )
            assert reliability.ok
            details = reliability.payload["result"]["details"]
            assert details["cluster"]["nodes"] == [0, 1, 2]
            assert 0.0 <= details["cluster"]["probability"] <= 1.0

            # The plain top-k path is untouched by the family plumbing.
            plain = client.query()
            assert plain.ok and "family" not in plain.payload["result"]

    def test_family_request_validation(self, service):
        with ServerHarness(service, {"alpha": "alpha-secret"}) as server:
            client = FrontendClient(
                "127.0.0.1", server.port, "alpha-secret", tenant="alpha",
                sleep=lambda _d: None,
            )
            unknown = client.query(family="nope")
            assert unknown.status == 500
            assert "unknown query family" in unknown.payload["error"]
            bad_params = client.request(
                "POST",
                "/v1/query",
                {"tenant": "alpha", "family": "kcore", "params": [1, 2]},
            )
            assert bad_params.status == 400
            orphan_params = client.request(
                "POST", "/v1/query", {"tenant": "alpha", "params": {"k": 2}}
            )
            assert orphan_params.status == 400


# ----------------------------------------------------------------------
# CLI: the query subcommand
# ----------------------------------------------------------------------
class TestQueryCli:
    def test_list_families(self, capsys):
        assert query_main(["--list-families"]) == 0
        out = capsys.readouterr().out.split()
        assert {"topk", "kcore", "reliability", "skyline"} <= set(out)

    def test_sampled_family_table(self, capsys):
        code = main([
            "query", "--dataset", "guarantee", "--scale", "0.01",
            "--family", "kcore", "--params", '{"k": 2, "top": 3}',
            "--worlds", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "kcore (estimate) over 256 worlds" in out

    def test_exact_json_matches_engine(self, capsys, paper_graph):
        code = main([
            "query", "--dataset", "guarantee", "--scale", "0.01",
            "--family", "skyline", "--worlds", "128", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        graph = load_dataset("guarantee", scale=0.01, seed=0).graph
        view = WorldView(graph, np.arange(128, dtype=np.int64), seed=0)
        direct = QueryEngine(view).run("skyline")
        assert payload["nodes"] == direct.nodes.tolist()

    def test_exact_mode_on_small_graph(self, capsys, small_random_graph):
        # The guarantee dataset is far too large to enumerate; drive
        # --exact through the API instead and the CLI against a file.
        result = get_query_family("topk").exact(small_random_graph, k=2)
        assert result.method == "exact"

    def test_errors_are_reported_not_raised(self, capsys):
        assert query_main(["--family", "kcore"]) == 1  # no graph source
        assert "error:" in capsys.readouterr().err
        assert query_main([
            "--dataset", "guarantee", "--scale", "0.01",
            "--params", "not json",
        ]) == 1
        assert "error:" in capsys.readouterr().err
        assert query_main([
            "--dataset", "guarantee", "--scale", "0.01",
            "--family", "kcore", "--params", '{"bogus": 1}',
            "--worlds", "64",
        ]) == 1
        assert "error:" in capsys.readouterr().err
