"""Tests for repro.bounds.candidates — Algorithm 4 / Lemma 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import bound_pair
from repro.core.errors import SamplingError
from repro.core.exact import exact_top_k
from repro.core.graph import UncertainGraph


def build_tree(seed: int) -> UncertainGraph:
    """Random-ish out-tree where Eq.(1) is exact (valid bounds)."""
    rng = np.random.default_rng(seed)
    graph = UncertainGraph()
    n = 10
    for i in range(n):
        graph.add_node(i, float(rng.uniform(0.05, 0.5)))
    for child in range(1, n):
        parent = int(rng.integers(0, child))
        graph.add_edge(parent, child, float(rng.uniform(0.1, 0.9)))
    return graph


class TestReduceCandidatesMechanics:
    def test_hand_case(self, paper_graph):
        lower = np.array([0.2, 0.232, 0.232, 0.2371, 0.3060])
        upper = np.array([0.2, 0.25, 0.25, 0.30, 0.32])
        reduction = reduce_candidates(paper_graph, lower, upper, k=1)
        # Tu = 0.32; only E (idx 4) has pl >= 0.32? No: 0.3060 < 0.32, so
        # nothing verifies; Tl = 0.3060, candidates need pu >= 0.3060.
        assert reduction.k_verified == 0
        assert list(reduction.candidates) == [4]

    def test_verification_needs_lower_to_reach_kth_upper(self, paper_graph):
        # Rule 1 compares pl(u) against Tu, the k-th largest *upper* bound
        # over all nodes — which for k=1 includes u's own pu.  A slack
        # interval therefore never verifies ...
        lower = np.array([0.1, 0.1, 0.1, 0.1, 0.90])
        upper = np.array([0.2, 0.2, 0.2, 0.2, 0.95])
        reduction = reduce_candidates(paper_graph, lower, upper, k=1)
        assert reduction.k_verified == 0
        # ... while a pinched-tight winner does.
        lower[4] = upper[4] = 0.95
        reduction = reduce_candidates(paper_graph, lower, upper, k=1)
        assert reduction.k_verified == 1
        assert list(reduction.verified) == [4]
        assert reduction.k_remaining == 0

    def test_verification_fires_for_k2_with_separation(self, paper_graph):
        # For k=2, Tu is the *second* largest upper bound, so a clear
        # winner verifies as soon as its lower bound clears the runner-up.
        lower = np.array([0.1, 0.1, 0.1, 0.1, 0.70])
        upper = np.array([0.2, 0.2, 0.2, 0.6, 0.95])
        reduction = reduce_candidates(paper_graph, lower, upper, k=2)
        assert list(reduction.verified) == [4]
        assert reduction.k_remaining == 1

    def test_thresholds_recorded(self, paper_graph):
        lower = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        upper = np.array([0.2, 0.3, 0.4, 0.5, 0.6])
        reduction = reduce_candidates(paper_graph, lower, upper, k=2)
        assert reduction.threshold_lower == pytest.approx(0.4)
        assert reduction.threshold_upper == pytest.approx(0.5)

    def test_rule2_filters_hopeless_nodes(self, paper_graph):
        lower = np.array([0.05, 0.2, 0.3, 0.4, 0.5])
        upper = np.array([0.10, 0.3, 0.4, 0.5, 0.6])
        reduction = reduce_candidates(paper_graph, lower, upper, k=2)
        # Tl = 0.4; node 0 has pu = 0.10 < 0.4 -> filtered.
        assert 0 not in reduction.candidates
        assert 0 not in reduction.verified

    def test_ties_cannot_oververify(self, paper_graph):
        lower = np.full(5, 0.5)
        upper = np.full(5, 0.5)
        reduction = reduce_candidates(paper_graph, lower, upper, k=2)
        assert reduction.k_verified <= 2

    def test_verified_sorted_by_lower_bound(self, paper_graph):
        lower = np.array([0.90, 0.95, 0.1, 0.92, 0.1])
        upper = np.array([0.90, 0.95, 0.3, 0.92, 0.3])
        reduction = reduce_candidates(paper_graph, lower, upper, k=3)
        assert list(reduction.verified) == [1, 3, 0]

    def test_summary_keys(self, paper_graph):
        lower, upper = bound_pair(paper_graph, 2, 2)
        summary = reduce_candidates(paper_graph, lower, upper, 2).summary()
        assert set(summary) == {"k", "k_verified", "candidate_size", "Tl", "Tu"}

    def test_shape_validation(self, paper_graph):
        with pytest.raises(SamplingError):
            reduce_candidates(paper_graph, np.zeros(3), np.zeros(5), 1)

    def test_inverted_bounds_rejected(self, paper_graph):
        lower = np.full(5, 0.9)
        upper = np.full(5, 0.1)
        with pytest.raises(SamplingError, match="exceeds upper"):
            reduce_candidates(paper_graph, lower, upper, 1)

    def test_non_finite_bounds_rejected(self, paper_graph):
        """Regression: a NaN bound would slip through both Lemma-1 rules
        (all comparisons False) while the thresholds treated it as
        largest — reject instead of reducing inconsistently."""
        from repro.core.errors import GraphError

        good = np.full(5, 0.5)
        nan_vector = good.copy()
        nan_vector[2] = np.nan
        with pytest.raises(GraphError, match="finite"):
            reduce_candidates(paper_graph, nan_vector, good, 2)
        with pytest.raises(GraphError, match="finite"):
            reduce_candidates(paper_graph, good, nan_vector, 2)
        inf_vector = good.copy()
        inf_vector[0] = np.inf
        with pytest.raises(GraphError, match="finite"):
            reduce_candidates(paper_graph, good, inf_vector, 2)


class TestReductionSoundness:
    """On trees (exact Eq.(1)) the reduction must never lose a true answer."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_true_topk_survives(self, seed, k):
        graph = build_tree(seed)
        lower, upper = bound_pair(graph, 2, 2)
        reduction = reduce_candidates(graph, lower, upper, k)
        true_top = set(exact_top_k(graph, k))
        survivors = {
            graph.label(int(i))
            for i in np.concatenate([reduction.verified, reduction.candidates])
        }
        # Allow ties at the boundary: every truly-top node must survive
        # unless it ties exactly with an excluded one (generic random
        # probabilities make exact ties measure-zero).
        assert true_top <= survivors

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_candidate_count_at_least_k_remaining(self, seed):
        graph = build_tree(seed)
        lower, upper = bound_pair(graph, 2, 2)
        for k in (1, 2, 4):
            reduction = reduce_candidates(graph, lower, upper, k)
            assert reduction.candidate_size >= reduction.k_remaining

    @pytest.mark.parametrize("seed", [8, 9])
    def test_verified_nodes_are_truly_top(self, seed):
        graph = build_tree(seed)
        lower, upper = bound_pair(graph, 3, 3)
        k = 3
        reduction = reduce_candidates(graph, lower, upper, k)
        true_top = set(exact_top_k(graph, k))
        for index in reduction.verified:
            assert graph.label(int(index)) in true_top

    def test_higher_order_never_grows_candidates(self):
        graph = build_tree(11)
        k = 3
        sizes = []
        for order in (1, 2, 3, 4):
            lower, upper = bound_pair(graph, order, order)
            sizes.append(
                reduce_candidates(graph, lower, upper, k).candidate_size
            )
        assert sizes == sorted(sizes, reverse=True)
