"""Tests for dataset specs, probability models, and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.probabilities import (
    FEATURE_NAMES,
    assign_financial,
    assign_uniform,
    generate_features,
)
from repro.datasets.registry import available_datasets, load_dataset, table2_rows
from repro.datasets.specs import (
    BENCHMARKS,
    FINANCIAL,
    TABLE2_SPECS,
    spec_for,
)


class TestSpecs:
    def test_eight_datasets(self):
        assert len(TABLE2_SPECS) == 8
        assert set(BENCHMARKS) | set(FINANCIAL) == {
            spec.name for spec in TABLE2_SPECS
        }

    def test_spec_lookup_case_insensitive(self):
        assert spec_for("Interbank").name == "interbank"

    def test_unknown_spec_rejected(self):
        with pytest.raises(DatasetError):
            spec_for("enron")

    def test_scaling(self):
        spec = spec_for("guarantee")
        assert spec.scaled_nodes(1.0) == 31_309
        assert spec.scaled_nodes(0.1) == 3_131
        assert spec.scaled_nodes(1e-9) == 10  # floor

    def test_scale_must_be_positive(self):
        with pytest.raises(DatasetError):
            spec_for("wiki").scaled_nodes(0.0)
        with pytest.raises(DatasetError):
            spec_for("wiki").scaled_edges(-1.0)

    def test_paper_statistics_recorded(self):
        spec = spec_for("fraud")
        assert spec.paper_nodes == 14_242
        assert spec.paper_max_degree == 85_074


class TestFeatures:
    def test_shape_and_names(self):
        features = generate_features(100, seed=0)
        assert features.matrix.shape == (100, len(FEATURE_NAMES))
        assert features.names == FEATURE_NAMES
        assert features.num_nodes == 100
        assert features.num_features == len(FEATURE_NAMES)

    def test_latent_risk_is_probability(self):
        features = generate_features(500, seed=1)
        assert np.all(features.latent_risk > 0)
        assert np.all(features.latent_risk < 1)

    def test_deterministic(self):
        a = generate_features(50, seed=3)
        b = generate_features(50, seed=3)
        assert np.array_equal(a.matrix, b.matrix)

    def test_risky_features_raise_latent_risk(self):
        """Higher debt ratio (col 1) must push latent risk up on average."""
        features = generate_features(2000, seed=4)
        debt = features.matrix[:, 1]
        high = features.latent_risk[debt > 1.0].mean()
        low = features.latent_risk[debt < -1.0].mean()
        assert high > low

    def test_invalid_n(self):
        with pytest.raises(DatasetError):
            generate_features(0)


class TestProbabilityModels:
    def test_uniform_assignment(self, paper_graph):
        assign_uniform(paper_graph, seed=0)
        risks = paper_graph.self_risk_array
        assert len(np.unique(risks)) == 5  # actually random now
        _, _, probs = paper_graph.edge_array
        assert np.all((probs >= 0) & (probs <= 1))

    def test_uniform_deterministic(self, paper_graph):
        assign_uniform(paper_graph, seed=5)
        first = paper_graph.self_risk_array.copy()
        assign_uniform(paper_graph, seed=5)
        assert np.array_equal(paper_graph.self_risk_array, first)

    def test_financial_assignment(self, paper_graph):
        features = assign_financial(paper_graph, seed=0)
        assert features.matrix.shape[0] == 5
        risks = paper_graph.self_risk_array
        assert np.all((risks >= 0.005) & (risks <= 0.95))
        _, _, probs = paper_graph.edge_array
        assert np.all((probs >= 0.01) & (probs <= 0.95))


class TestRegistry:
    def test_available_names_ordered(self):
        assert available_datasets() == [spec.name for spec in TABLE2_SPECS]

    @pytest.mark.parametrize("name", [spec.name for spec in TABLE2_SPECS])
    def test_every_dataset_loads_small(self, name):
        loaded = load_dataset(name, scale=0.02 if name != "interbank" else 0.5, seed=0)
        loaded.graph.validate()
        assert loaded.graph.num_nodes >= 10
        assert loaded.name == name

    def test_deterministic_load(self):
        a = load_dataset("citation", scale=0.1, seed=4)
        b = load_dataset("citation", scale=0.1, seed=4)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_different_seeds_differ(self):
        a = load_dataset("citation", scale=0.1, seed=1)
        b = load_dataset("citation", scale=0.1, seed=2)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())

    def test_financial_datasets_expose_features(self):
        loaded = load_dataset("guarantee", scale=0.02, seed=0)
        assert loaded.features is not None
        assert loaded.features.matrix.shape[0] == loaded.graph.num_nodes

    def test_benchmark_datasets_have_no_features(self):
        loaded = load_dataset("wiki", scale=0.02, seed=0)
        assert loaded.features is None

    def test_avg_degree_tracks_spec(self):
        loaded = load_dataset("p2p", scale=0.05, seed=0)
        stats = loaded.graph.stats()
        assert stats.avg_degree == pytest.approx(
            loaded.spec.paper_avg_degree, rel=0.15
        )

    def test_k_for_percent(self):
        loaded = load_dataset("interbank", seed=0)
        assert loaded.k_for_percent(1.0) == 1  # the paper's 1%|V| = 1 case
        assert loaded.k_for_percent(10.0) == 12  # round(12.5), banker's
        with pytest.raises(DatasetError):
            loaded.k_for_percent(0.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("wiki", scale=-0.5)

    def test_table2_rows_cover_all(self):
        rows = table2_rows(scale=None, seed=0)
        assert [row["dataset"] for row in rows] == available_datasets()
        for row in rows:
            assert row["nodes"] > 0
            assert row["edges"] > 0
