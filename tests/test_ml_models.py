"""Tests for the Table-3 baseline classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ml.base import StandardScaler, log_loss, sigmoid
from repro.baselines.ml.cnn_max import CNNMaxClassifier
from repro.baselines.ml.crdnn import CompetingRisksDNN
from repro.baselines.ml.gbdt import GradientBoostedTrees, RegressionTree
from repro.baselines.ml.hgar import HGARClassifier, attention_aggregate
from repro.baselines.ml.inddp import INDDPClassifier, neighbor_mean
from repro.baselines.ml.linear import WideLogisticRegression
from repro.baselines.ml.wide_deep import WideDeepClassifier
from repro.core.errors import NotFittedError, ReproError
from repro.core.graph import UncertainGraph
from repro.metrics.auc import roc_auc
from repro.sampling.rng import make_rng


# These end-to-end runs dominate suite runtime; deselect with -m "not slow".
pytestmark = pytest.mark.slow


def separable_data(n=400, d=8, seed=0):
    rng = make_rng(seed)
    X = rng.normal(size=(n, d))
    logits = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.5 * X[:, 2]
    y = (logits + rng.normal(0, 0.5, n) > 0).astype(np.float64)
    return X, y


def ring_graph(n):
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, 0.1)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, 0.5)
    return graph


# (factory, min train AUC, min test AUC).  CNN-max gets looser targets:
# max-pooling over an unordered feature vector is inherently lossy on
# tabular data (it is a mid-tier baseline in Table 3 for the same reason).
FEATURE_CLASSIFIERS = [
    (lambda: WideLogisticRegression(), 0.85, 0.8),
    (lambda: WideDeepClassifier(epochs=40, seed=0), 0.85, 0.8),
    (lambda: GradientBoostedTrees(n_trees=40), 0.85, 0.8),
    (lambda: CNNMaxClassifier(epochs=100, seed=0), 0.8, 0.7),
    (lambda: CompetingRisksDNN(epochs=40, seed=0), 0.85, 0.8),
]


class TestScalerAndHelpers:
    def test_scaler_round_trip(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0)
        assert np.allclose(scaled.std(axis=0), 1.0)

    def test_scaler_constant_column(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_scaler_unfitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_sigmoid_extremes(self):
        values = sigmoid(np.array([-800.0, 0.0, 800.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0)

    def test_log_loss_perfect(self):
        assert log_loss(np.array([1.0, 0.0]), np.array([1.0, 0.0])) < 1e-9


class TestFeatureClassifiers:
    @pytest.mark.parametrize("factory,train_min,test_min", FEATURE_CLASSIFIERS)
    def test_learns_separable_data(self, factory, train_min, test_min):
        X, y = separable_data(seed=1)
        model = factory().fit(X, y)
        auc = roc_auc(y.astype(int), model.predict_proba(X))
        assert auc > train_min, f"{model.name} reached only AUC={auc:.3f}"

    @pytest.mark.parametrize("factory,train_min,test_min", FEATURE_CLASSIFIERS)
    def test_generalises(self, factory, train_min, test_min):
        X, y = separable_data(seed=2)
        X_test, y_test = separable_data(seed=3)
        model = factory().fit(X, y)
        auc = roc_auc(y_test.astype(int), model.predict_proba(X_test))
        assert auc > test_min, f"{model.name} reached only AUC={auc:.3f}"

    @pytest.mark.parametrize("factory,train_min,test_min", FEATURE_CLASSIFIERS)
    def test_probabilities_in_unit_interval(self, factory, train_min, test_min):
        X, y = separable_data(seed=4, n=150)
        scores = factory().fit(X, y).predict_proba(X)
        assert np.all(scores >= 0)
        assert np.all(scores <= 1)

    @pytest.mark.parametrize("factory,train_min,test_min", FEATURE_CLASSIFIERS)
    def test_unfitted_rejected(self, factory, train_min, test_min):
        with pytest.raises(NotFittedError):
            factory().predict_proba(np.zeros((2, 8)))

    def test_label_validation(self):
        X, _ = separable_data(n=20)
        with pytest.raises(ReproError):
            WideLogisticRegression().fit(X, np.full(20, 0.5))
        with pytest.raises(ReproError):
            WideLogisticRegression().fit(X, np.zeros(7))

    def test_deterministic_with_seed(self):
        X, y = separable_data(seed=5, n=150)
        a = WideDeepClassifier(epochs=15, seed=3).fit(X, y).predict_proba(X)
        b = WideDeepClassifier(epochs=15, seed=3).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)


class TestRegressionTree:
    def test_fits_step_function(self):
        rng = make_rng(0)
        X = rng.uniform(-1, 1, size=(200, 1))
        y = np.where(X[:, 0] > 0.2, 1.0, -1.0)
        tree = RegressionTree(max_depth=2).fit(X, y)
        predictions = tree.predict(X)
        assert np.corrcoef(predictions, y)[0, 1] > 0.95

    def test_depth_one_is_stump(self):
        rng = make_rng(1)
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert len(np.unique(tree.predict(X))) <= 2

    def test_unfitted_rejected(self):
        with pytest.raises(ReproError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_invalid_depth(self):
        with pytest.raises(ReproError):
            RegressionTree(max_depth=0)


class TestGraphAwareClassifiers:
    def test_neighbor_mean_on_ring(self):
        graph = ring_graph(4)
        X = np.arange(4, dtype=np.float64).reshape(-1, 1)
        means = neighbor_mean(graph.in_csr(), X)
        # node i's only in-neighbour is i-1 (mod 4)
        assert np.allclose(means.ravel(), [3, 0, 1, 2])

    def test_neighbor_mean_isolated_nodes_zero(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.1)
        graph.add_node("b", 0.1)
        means = neighbor_mean(graph.in_csr(), np.ones((2, 3)))
        assert np.allclose(means, 0.0)

    def test_neighbor_mean_shape_validation(self):
        graph = ring_graph(3)
        with pytest.raises(ReproError):
            neighbor_mean(graph.in_csr(), np.ones((5, 2)))

    def test_attention_rows_are_convex_mixes(self):
        graph = ring_graph(5)
        H = make_rng(0).normal(size=(5, 3))
        out = attention_aggregate(graph.in_csr(), H)
        assert out.shape == H.shape
        assert np.all(np.isfinite(out))

    def test_attention_isolated_nodes_keep_half_self(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.1)
        H = np.array([[2.0, 4.0]])
        out = attention_aggregate(graph.in_csr(), H)
        assert np.allclose(out, [[1.0, 2.0]])

    def _graph_task(self, seed=0, n=300):
        """Labels depend on a node's own and neighbours' features."""
        rng = make_rng(seed)
        graph = ring_graph(n)
        X = rng.normal(size=(n, 4))
        neighbor_signal = np.roll(X[:, 0], 1)  # in-neighbour's feature
        logits = 1.5 * X[:, 0] + 1.5 * neighbor_signal
        y = (logits + rng.normal(0, 0.4, n) > 0).astype(np.float64)
        return graph, X, y

    def test_inddp_learns_and_beats_wide(self):
        graph, X, y = self._graph_task(seed=1)
        inddp_auc = roc_auc(
            y.astype(int), INDDPClassifier(graph).fit(X, y).predict_proba(X)
        )
        wide_auc = roc_auc(
            y.astype(int), WideLogisticRegression().fit(X, y).predict_proba(X)
        )
        assert inddp_auc > 0.85
        assert inddp_auc > wide_auc

    def test_hgar_learns_and_beats_wide(self):
        graph, X, y = self._graph_task(seed=2)
        hgar_auc = roc_auc(
            y.astype(int), HGARClassifier(graph).fit(X, y).predict_proba(X)
        )
        wide_auc = roc_auc(
            y.astype(int), WideLogisticRegression().fit(X, y).predict_proba(X)
        )
        assert hgar_auc > 0.8
        assert hgar_auc > wide_auc

    def test_graph_classifiers_validate_row_count(self):
        graph = ring_graph(4)
        with pytest.raises(ReproError):
            INDDPClassifier(graph).fit(np.zeros((7, 2)), np.zeros(7))

    def test_hgar_rejects_zero_hops(self):
        with pytest.raises(ReproError):
            HGARClassifier(ring_graph(3), hops=0)

    def test_cnn_rejects_wide_kernel(self):
        X, y = separable_data(n=50, d=4)
        with pytest.raises(ReproError):
            CNNMaxClassifier(kernel_size=9).fit(X, y)
