"""Tests for the Graphviz DOT exporter."""

from __future__ import annotations

import pytest

from repro.core.errors import GraphError
from repro.io.dot import to_dot, write_dot


class TestToDot:
    def test_structure(self, paper_graph):
        dot = to_dot(paper_graph)
        assert dot.startswith("digraph uncertain_graph {")
        assert dot.rstrip().endswith("}")
        assert '"A" -> "B"' in dot
        assert dot.count("->") == paper_graph.num_edges

    def test_default_scores_are_self_risks(self, paper_graph):
        dot = to_dot(paper_graph)
        assert 'tooltip="p=0.2000"' in dot

    def test_custom_scores_and_highlight(self, paper_graph):
        dot = to_dot(
            paper_graph,
            scores={"E": 0.95},
            highlight={"E"},
        )
        assert "penwidth=3" in dot
        assert 'tooltip="p=0.9500"' in dot

    def test_score_out_of_range_rejected(self, paper_graph):
        with pytest.raises(GraphError):
            to_dot(paper_graph, scores={"E": 1.5})

    def test_risky_nodes_are_redder(self, paper_graph):
        safe = to_dot(paper_graph, scores={label: 0.0 for label in "ABCDE"})
        risky = to_dot(paper_graph, scores={label: 1.0 for label in "ABCDE"})
        assert "#ffffff" in safe  # white at zero risk
        assert "#ff0000" in risky  # full red at certain default

    def test_quotes_escaped(self):
        from repro.core.graph import UncertainGraph

        graph = UncertainGraph()
        graph.add_node('we"ird', 0.5)
        dot = to_dot(graph)
        assert '\\"' in dot

    def test_write_dot(self, paper_graph, tmp_path):
        path = tmp_path / "graph.dot"
        write_dot(paper_graph, path, highlight={"E"})
        content = path.read_text()
        assert "digraph" in content
