"""Tests for the crawling subsystem: frontier semantics, strategy
determinism, session replay, and the crawl-while-monitoring oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph
from repro.crawling import (
    CRAWL_STRATEGIES,
    AvrachenkovStrategy,
    CrawlFrontier,
    ObservedGraphSession,
    resolve_strategy,
)
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.streaming.events import EdgeAdd, NodeAdd, apply_events
from repro.streaming.monitor import TopKMonitor


def hidden_graph(n: int = 100, seed: int = 11) -> UncertainGraph:
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, 3 * n, seed=rng)
    return UncertainGraph.from_arrays(
        rng.random(n) * 0.3,
        src,
        dst,
        np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def tiny_graph() -> UncertainGraph:
    """a -> b -> c plus c -> a and an isolated d (hand-checkable)."""
    graph = UncertainGraph()
    for label, risk in [("a", 0.1), ("b", 0.2), ("c", 0.3), ("d", 0.4)]:
        graph.add_node(label, risk)
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("b", "c", 0.6)
    graph.add_edge("c", "a", 0.7)
    return graph


class TestCrawlFrontier:
    def test_needs_seeds(self):
        with pytest.raises(GraphError, match="seed"):
            CrawlFrontier(tiny_graph(), [])

    def test_seed_observation_is_budget_free(self):
        frontier = CrawlFrontier(tiny_graph(), ["a", "b"])
        assert frontier.observed_labels() == ["a", "b"]
        assert frontier.num_crawled == 0
        assert frontier.num_observed_edges == 0
        assert frontier.self_risk("a") == pytest.approx(0.1)

    def test_crawl_reveals_all_incident_edges(self):
        frontier = CrawlFrontier(tiny_graph(), ["a"])
        step = frontier.crawl("a")
        # Both a -> b (out) and c -> a (in) surface, edge-id order.
        assert step.new_edges == (
            ("a", "b", pytest.approx(0.5)),
            ("c", "a", pytest.approx(0.7)),
        )
        assert step.new_nodes == (
            ("b", pytest.approx(0.2)),
            ("c", pytest.approx(0.3)),
        )
        assert frontier.observed_degree("a") == 2
        assert frontier.observed_degree("b") == 1

    def test_edge_revealed_once(self):
        frontier = CrawlFrontier(tiny_graph(), ["a"])
        frontier.crawl("a")
        step = frontier.crawl("b")
        # a -> b was already revealed by crawling a; only b -> c is new.
        assert step.new_edges == (("b", "c", pytest.approx(0.6)),)
        assert step.new_nodes == ()
        assert frontier.num_observed_edges == 3

    def test_crawl_requires_observed_uncrawled(self):
        frontier = CrawlFrontier(tiny_graph(), ["a"])
        with pytest.raises(GraphError, match="unobserved"):
            frontier.crawl("d")
        frontier.crawl("a")
        with pytest.raises(GraphError, match="already crawled"):
            frontier.crawl("a")

    def test_self_risk_requires_observation(self):
        frontier = CrawlFrontier(tiny_graph(), ["a"])
        with pytest.raises(GraphError, match="not observed"):
            frontier.self_risk("d")

    def test_exhaustion(self):
        frontier = CrawlFrontier(tiny_graph(), ["a"])
        assert not frontier.is_exhausted()
        for label in ["a", "b", "c"]:
            frontier.crawl(label)
        # d is unreachable from the crawled component, so no crawlable
        # target remains even though it was never observed.
        assert frontier.is_exhausted()
        assert frontier.uncrawled_observed() == []

    def test_deterministic_given_crawl_order(self):
        hidden = hidden_graph(60, seed=3)
        seeds = [hidden.label(0), hidden.label(1)]
        a, b = CrawlFrontier(hidden, seeds), CrawlFrontier(hidden, seeds)
        for _ in range(10):
            target = a.uncrawled_observed()[0]
            assert a.crawl(target) == b.crawl(target)
        assert a.observed_labels() == b.observed_labels()


class TestStrategies:
    def test_resolve_unknown_raises(self):
        with pytest.raises(GraphError, match="unknown crawl strategy"):
            resolve_strategy("no-such-strategy")

    def test_resolve_passes_instances_through(self):
        strategy = AvrachenkovStrategy(n1=2)
        assert resolve_strategy(strategy) is strategy

    def test_avrachenkov_rejects_negative_n1(self):
        with pytest.raises(GraphError, match="n1"):
            AvrachenkovStrategy(n1=-1)

    @pytest.mark.parametrize("name", sorted(CRAWL_STRATEGIES))
    def test_streams_are_seed_deterministic(self, name):
        hidden = hidden_graph(80, seed=5)
        seeds = [hidden.label(i) for i in (0, 4, 9)]

        def replay():
            session = ObservedGraphSession(
                hidden, seeds, strategy=name, budget=12, seed=17
            )
            return [batch.events for batch in session.run()]

        assert replay() == replay()

    def test_degree_strategy_crawls_highest_observed_degree(self):
        hidden = tiny_graph()
        session = ObservedGraphSession(
            hidden, ["a"], strategy="degree", budget=3, seed=0
        )
        session.step()  # crawls the only candidate: a
        # After crawling a: degrees a=2, b=1, c=1 -> next target is b
        # (earliest-observed among the tied uncrawled candidates).
        batch = session.step()
        assert batch.target == "b"

    def test_avrachenkov_switches_to_degree_after_n1(self):
        hidden = hidden_graph(80, seed=6)
        seeds = [hidden.label(i) for i in (0, 1)]
        session = ObservedGraphSession(
            hidden,
            seeds,
            strategy=AvrachenkovStrategy(n1=4),
            budget=10,
            seed=23,
        )
        targets = [batch.target for batch in session.run() if batch.step >= 4]
        # From step n1 on, the choice is greedy max observed degree: an
        # independent degree-only session started from the same state
        # must agree.  Cheap proxy: the crawled targets' observed
        # degrees at selection time are maxima; verify via a replayed
        # frontier.
        frontier = CrawlFrontier(hidden, seeds)
        replay_targets = []
        for batch in ObservedGraphSession(
            hidden,
            seeds,
            strategy=AvrachenkovStrategy(n1=4),
            budget=10,
            seed=23,
        ).run():
            if batch.step < 0:
                continue
            if batch.step >= 4:
                candidates = frontier.uncrawled_observed()
                degrees = [
                    frontier.observed_degree(label) for label in candidates
                ]
                best = candidates[int(np.argmax(degrees))]
                replay_targets.append(best)
            frontier.crawl(batch.target)
        assert targets == replay_targets


class TestObservedGraphSession:
    def test_bootstrap_carries_seed_provenance(self):
        session = ObservedGraphSession(tiny_graph(), ["a", "b"], budget=0)
        assert session.bootstrap.step == -1
        assert session.bootstrap.target is None
        for event in session.bootstrap.events:
            assert isinstance(event, NodeAdd)
            assert event.source == "crawl:seed"
            assert event.confidence == 1.0

    def test_step_events_carry_strategy_provenance(self):
        session = ObservedGraphSession(
            tiny_graph(), ["a"], strategy="degree", budget=2, seed=0
        )
        session.bootstrap  # already applied
        batch = session.step()
        for event in batch.events:
            assert event.source == "crawl:degree/0"
        node_events = [e for e in batch.events if isinstance(e, NodeAdd)]
        edge_events = [e for e in batch.events if isinstance(e, EdgeAdd)]
        # NodeAdds precede EdgeAdds so the batch applies transactionally.
        assert batch.events == tuple(node_events) + tuple(edge_events)

    def test_budget_is_respected(self):
        hidden = hidden_graph(60, seed=9)
        session = ObservedGraphSession(
            hidden, [hidden.label(0)], strategy="random", budget=5, seed=1
        )
        batches = list(session.run())
        assert session.steps_taken == 5
        assert len(batches) == 6  # bootstrap + 5 crawls
        assert not session.budget_left()
        assert session.step() is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            ObservedGraphSession(tiny_graph(), ["a"], budget=-1)

    def test_unbounded_run_stops_at_exhaustion(self):
        session = ObservedGraphSession(
            tiny_graph(), ["a"], strategy="degree", budget=None
        )
        batches = [batch for batch in session.run() if batch.step >= 0]
        assert len(batches) == 3  # a, b, c; d is unreachable
        assert session.frontier.is_exhausted()

    def test_replaying_events_rebuilds_observed_graph(self):
        hidden = hidden_graph(100, seed=13)
        seeds = [hidden.label(i) for i in (0, 2, 5)]
        session = ObservedGraphSession(
            hidden, seeds, strategy="avrachenkov", budget=15, seed=29
        )
        replay = UncertainGraph()
        for batch in session.run():
            apply_events(replay, batch.events)
        observed = session.observed_graph
        assert replay.labels() == observed.labels()
        assert np.array_equal(
            replay.self_risk_array, observed.self_risk_array
        )
        for mine, theirs in zip(replay.edge_array, observed.edge_array):
            assert np.array_equal(mine, theirs)
        # The observed subgraph's attributes are the hidden truth.
        for label in replay.labels():
            assert replay.self_risk_array[replay.index(label)] == (
                pytest.approx(
                    hidden.self_risk_array[hidden.index(label)]
                )
            )


class TestCrawlWhileMonitoring:
    """The tentpole oracle: a monitor ingesting crawl batches stays
    bit-identical to fresh detection on the observed subgraph after
    every crawl step, for every strategy."""

    @pytest.mark.parametrize("name", sorted(CRAWL_STRATEGIES))
    def test_every_step_matches_fresh_detection(self, name):
        hidden = hidden_graph(120, seed=21)
        seeds = [hidden.label(i) for i in (0, 3, 7)]
        k = 3
        session = ObservedGraphSession(
            hidden, seeds, strategy=name, budget=15, seed=37
        )

        def fresh_monitor(graph):
            return TopKMonitor(
                graph,
                k,
                seed=5,
                engine="indexed",
                counter_layout="stable",
            )

        live = UncertainGraph()
        replay = UncertainGraph()
        monitor = None
        checked = 0
        for batch in session.run():
            apply_events(replay, batch.events)
            if monitor is None:
                apply_events(live, batch.events)
                if live.num_nodes < k:
                    continue
                monitor = fresh_monitor(live)
            else:
                monitor.apply(batch.events)
            result = monitor.top_k()
            fresh = fresh_monitor(replay).top_k()
            assert result.same_answer(fresh), (
                f"{name}: diverged after step {batch.step}"
            )
            checked += 1
        assert checked >= 10
        # The incremental topology path (not full fallback) must have
        # carried most steps, or the oracle proves nothing about it.
        assert monitor.stats["topology"] >= checked // 2

    def test_bsrbk_crawl_matches_fresh(self):
        hidden = hidden_graph(100, seed=41)
        seeds = [hidden.label(i) for i in (1, 4)]
        k = 3
        session = ObservedGraphSession(
            hidden, seeds, strategy="degree", budget=10, seed=3
        )

        def fresh_monitor(graph):
            return TopKMonitor(
                graph,
                k,
                seed=9,
                algorithm="bsrbk",
                bk=8,
                engine="indexed",
                counter_layout="stable",
            )

        live = UncertainGraph()
        replay = UncertainGraph()
        monitor = None
        for batch in session.run():
            apply_events(replay, batch.events)
            if monitor is None:
                apply_events(live, batch.events)
                if live.num_nodes < k:
                    continue
                monitor = fresh_monitor(live)
            else:
                monitor.apply(batch.events)
            assert monitor.top_k().same_answer(fresh_monitor(replay).top_k())
