"""Replication layer units: shipping, fencing, health, failover, routing.

The chaos matrix (``test_replication_chaos.py``) proves the end-to-end
zero-loss claims under SIGKILL; this file pins the mechanisms those
runs compose — cursor arithmetic, mirror byte-identity, epoch claims,
corruption rewind, death verdicts, and the router's failover/hedging
policies — each in isolation, deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.errors import FencedError, ReplicationError
from repro.core.graph import UncertainGraph
from repro.persistence.wal import WriteAheadLog
from repro.replication import (
    EpochStore,
    FailoverCoordinator,
    HealthMonitor,
    LocalSource,
    ReplicaService,
    ReplicatedClient,
    ReplicationHub,
    WalShipper,
)
from repro.replication.router import (
    EwmaLatency,
    LocalPrimaryHandle,
    LocalReplicaHandle,
    NodeUnavailable,
)
from repro.serving.service import RiskService
from repro.streaming.events import SelfRiskUpdate

DEFAULTS = {"seed": 42, "epsilon": 0.5}


def make_graph(n=14, seed=7, density=0.2):
    rng = random.Random(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, rng.uniform(0.05, 0.6))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < density:
                graph.add_edge(src, dst, rng.uniform(0.1, 0.9))
    return graph


def make_primary(tmp_path, *, name="primary", store=None, subdir="p"):
    return RiskService(
        make_graph(),
        mode="serial",
        wal_dir=tmp_path / subdir,
        fsync="always",
        monitor_defaults=DEFAULTS,
        epoch_store=store,
        node_id=name,
    )


def make_replica(tmp_path, *, name="r1", subdir=None):
    return ReplicaService(
        make_graph(),
        tmp_path / (subdir or name),
        node_id=name,
        mode="serial",
        monitor_defaults=DEFAULTS,
    )


def drive(primary, tenant, count, *, seed=3, start=0):
    rng = random.Random(seed + start)
    for _ in range(count):
        primary.submit_and_sync(
            tenant,
            SelfRiskUpdate(rng.randrange(14), rng.uniform(0.0, 1.0)),
        )


def mirror_bytes_match(primary_dir, mirror_dir):
    """Every primary segment exists on the mirror with identical bytes."""
    for path in sorted(primary_dir.glob("wal-*.log")):
        twin = mirror_dir / path.name
        assert twin.exists(), f"mirror is missing {path.name}"
        assert twin.read_bytes() == path.read_bytes(), (
            f"mirror bytes diverge in {path.name}"
        )


# ----------------------------------------------------------------------
# Epoch store
# ----------------------------------------------------------------------
class TestEpochStore:
    def test_missing_register_is_epoch_zero(self, tmp_path):
        store = EpochStore(tmp_path / "epoch.json")
        record = store.current()
        assert record.epoch == 0
        assert record.owner is None

    def test_claims_are_monotonic_and_owned(self, tmp_path):
        store = EpochStore(tmp_path / "epoch.json")
        assert store.claim("a") == 1
        assert store.claim("b") == 2
        record = store.current()
        assert record.epoch == 2
        assert record.owner == "b"

    def test_concurrent_claims_never_collide(self, tmp_path):
        store = EpochStore(tmp_path / "epoch.json")
        claimed: list[int] = []
        lock = threading.Lock()

        def worker(node):
            for _ in range(5):
                epoch = store.claim(node)
                with lock:
                    claimed.append(epoch)

        threads = [
            threading.Thread(target=worker, args=(f"n{i}",))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == list(range(1, 31))

    def test_unreadable_register_raises(self, tmp_path):
        path = tmp_path / "epoch.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReplicationError, match="unreadable"):
            EpochStore(path).current()


# ----------------------------------------------------------------------
# WAL cursor reads (the hub's raw material)
# ----------------------------------------------------------------------
class TestWalCursorReads:
    def test_read_from_round_trips_segment_bytes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="flush")
        wal.append_register("t", 3, {})
        wal.append_events("t", [SelfRiskUpdate(1, 0.5)])
        raw = wal.active_segment.read_bytes()
        chunk = wal.read_from(1, 0)
        assert chunk.data == raw
        assert not chunk.exhausted  # active segment: more may come
        # Resuming from the returned cursor yields nothing new.
        again = wal.read_from(1, len(raw))
        assert again.data == b""
        wal.close()

    def test_sealed_segment_reports_exhausted(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="flush")
        wal.append_events("t", [SelfRiskUpdate(1, 0.5)])
        wal.rotate()
        chunk = wal.read_from(1, 0)
        assert chunk.exhausted
        # The cursor steps to the next segment at offset zero.
        nxt = wal.read_from(2, 0)
        assert not nxt.exhausted
        assert nxt.data  # magic header of the fresh active segment
        wal.close()

    def test_reading_ahead_of_active_is_an_empty_poll(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="flush")
        chunk = wal.read_from(5, 0)
        assert chunk.data == b""
        assert not chunk.exhausted and not chunk.gone
        wal.close()

    def test_truncated_segment_reports_gone(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="flush")
        wal.append_events("t", [SelfRiskUpdate(1, 0.5)])
        wal.rotate()
        assert wal.truncate_upto(10) == 1
        chunk = wal.read_from(1, 0)
        assert chunk.gone
        assert chunk.oldest_segment == 2
        wal.close()

    def test_retain_floor_blocks_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="flush")
        wal.append_events("t", [SelfRiskUpdate(1, 0.5)])  # seq 1
        wal.rotate()
        wal.set_retain_seq(0)  # a replica acked nothing yet
        assert wal.truncate_upto(10) == 0
        wal.set_retain_seq(1)  # replica caught up through seq 1
        assert wal.truncate_upto(10) == 1
        wal.close()


# ----------------------------------------------------------------------
# Shipping: mirrors, restarts, bootstrap, fencing
# ----------------------------------------------------------------------
class TestWalShipping:
    def test_catch_up_is_bit_identical_and_byte_identical(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 12)
        shipper.catch_up()
        assert replica.lag == 0
        assert replica.applied_seq == primary.durable_seq
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        mirror_bytes_match(tmp_path / "p", tmp_path / "r1")
        assert hub.acked()["r1"] == primary.durable_seq
        primary.close()
        replica.close()

    def test_live_tail_follows_new_writes(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 4)
        shipper.catch_up()
        before = replica.applied_seq
        drive(primary, "t1", 4, start=1)
        shipper.catch_up()
        assert replica.applied_seq > before
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        primary.close()
        replica.close()

    def test_shipping_follows_segment_rotation(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 5)
        shipper.catch_up()
        # Snapshot rotates the WAL; the retain floor (replica acked
        # everything) lets truncation proceed on the primary, but the
        # replica has already mirrored those bytes.
        primary.snapshot_to_disk()
        drive(primary, "t1", 5, start=2)
        shipper.catch_up()
        assert replica.stats["segments_opened"] >= 1
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        primary.close()
        replica.close()

    def test_replica_restart_resumes_from_durable_cursor(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 6)
        shipper.catch_up()
        cursor = replica.durable_cursor
        replica.close()
        drive(primary, "t1", 6, start=5)
        # A new process on the same mirror dir: local recovery rebuilds
        # the pool from the mirrored WAL, then shipping resumes from
        # the durable cursor — no re-shipping of verified bytes.
        restarted = make_replica(tmp_path)
        assert restarted.durable_cursor == cursor
        resumed = WalShipper(LocalSource(hub), restarted)
        resumed.catch_up()
        assert primary.query_topk("t1").same_answer(
            restarted.query_topk("t1")
        )
        mirror_bytes_match(tmp_path / "p", tmp_path / "r1")
        primary.close()
        restarted.close()

    def test_cold_bootstrap_after_primary_truncation(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        drive(primary, "t1", 8)
        # Snapshot + truncate: segment 1 is gone; a cold replica can
        # only reach a complete state via the snapshot files.
        primary.snapshot_to_disk()
        drive(primary, "t1", 3, start=4)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        shipper.catch_up()
        assert not replica.is_cold
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        primary.close()
        replica.close()

    def test_fenced_replica_rejects_old_epoch_stream(self, tmp_path):
        store = EpochStore(tmp_path / "epoch.json")
        primary = make_primary(tmp_path, store=store)  # claims epoch 1
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 3)
        shipper.catch_up()
        applied = replica.applied_seq
        cursor = replica.durable_cursor
        # A promotion elsewhere fences this replica above the deposed
        # primary's epoch; its stream must now be rejected wholesale.
        replica.fence_below(2)
        drive(primary, "t1", 2, start=9)
        with pytest.raises(FencedError):
            shipper.catch_up()
        assert replica.applied_seq == applied
        assert replica.durable_cursor == cursor  # nothing persisted
        primary.close()
        replica.close()


# ----------------------------------------------------------------------
# Satellite 4: bit damage in a shipped chunk
# ----------------------------------------------------------------------
class CorruptingSource:
    """Wraps a source; flips one bit in the Nth non-empty fetch."""

    def __init__(self, inner, *, corrupt_fetch=2):
        self._inner = inner
        self._corrupt_fetch = corrupt_fetch
        self._nonempty = 0
        self.corrupted = 0

    def fetch(self, replica_id, segment, offset, **kwargs):
        result = self._inner.fetch(replica_id, segment, offset, **kwargs)
        chunk = result.chunk
        if chunk.data:
            self._nonempty += 1
            if self._nonempty == self._corrupt_fetch:
                damaged = bytearray(chunk.data)
                damaged[len(damaged) // 2] ^= 0x10
                self.corrupted += 1
                import dataclasses

                return dataclasses.replace(
                    result,
                    chunk=dataclasses.replace(chunk, data=bytes(damaged)),
                )
        return result

    def bootstrap(self, replica_id):
        return self._inner.bootstrap(replica_id)


class TestShippedCorruption:
    def test_bit_flip_detected_rewound_and_recovered(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        source = CorruptingSource(LocalSource(hub), corrupt_fetch=2)
        # Small fetches so the damaged chunk is mid-stream, with clean
        # records before and after it.
        shipper = WalShipper(source, replica, max_bytes=96)
        drive(primary, "t1", 10)
        shipper.catch_up()
        assert source.corrupted == 1
        assert shipper.stats["corruption_retries"] == 1
        assert replica.stats["corrupt_chunks"] == 1
        # Catch-up completed bit-identically despite the damage.
        assert replica.lag == 0
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        mirror_bytes_match(tmp_path / "p", tmp_path / "r1")
        primary.close()
        replica.close()


# ----------------------------------------------------------------------
# Health monitor (virtual time)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class TestHealthMonitor:
    def test_death_needs_consecutive_failures(self):
        outcomes = iter([Exception("x"), {"ok": 1}, Exception("x"),
                         Exception("x"), Exception("x")])

        def probe():
            outcome = next(outcomes)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        clock = FakeClock()
        monitor = HealthMonitor(
            {"n": probe}, failure_threshold=3,
            clock=clock, sleep=clock.sleep,
        )
        assert monitor.probe_once("n").consecutive_failures == 1
        # One success resets the count: no flap-triggered failover.
        assert monitor.probe_once("n").consecutive_failures == 0
        for _ in range(2):
            assert monitor.probe_once("n").alive
        assert not monitor.probe_once("n").alive
        assert monitor.dead_nodes() == ["n"]

    def test_backoff_is_exponential_and_bounded(self):
        monitor = HealthMonitor(
            {"n": dict}, backoff=0.05, backoff_cap=0.4,
        )
        delays = [monitor.failure_delay(f) for f in range(1, 7)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert all(delay <= 0.4 for delay in delays)
        assert monitor.failure_delay(0) == 0.0

    def test_wait_for_death_confirms_in_bounded_probes(self):
        clock = FakeClock()
        calls = []

        def probe():
            calls.append(clock.now)
            raise ConnectionRefusedError("dead")

        monitor = HealthMonitor(
            {"n": probe}, failure_threshold=3, backoff=0.05,
            backoff_cap=0.4, clock=clock, sleep=clock.sleep,
        )
        report = monitor.wait_for_death("n", timeout=10.0)
        assert not report.alive
        assert len(calls) == 3  # threshold probes, no more
        assert "ConnectionRefusedError" in report.last_error

    def test_wait_for_death_times_out_on_healthy_node(self):
        clock = FakeClock()
        monitor = HealthMonitor(
            {"n": dict}, interval=1.0, clock=clock, sleep=clock.sleep,
        )
        with pytest.raises(TimeoutError):
            monitor.wait_for_death("n", timeout=5.0)


# ----------------------------------------------------------------------
# Failover choice
# ----------------------------------------------------------------------
class TestFailoverChoice:
    @staticmethod
    def fake(applied, cursor):
        return SimpleNamespace(applied_seq=applied, durable_cursor=cursor)

    def test_most_caught_up_wins(self):
        replicas = {
            "a": self.fake(5, (1, 100)),
            "b": self.fake(9, (1, 200)),
            "c": self.fake(7, (1, 150)),
        }
        assert FailoverCoordinator.choose(replicas) == "b"

    def test_cursor_breaks_applied_ties(self):
        replicas = {
            "a": self.fake(9, (2, 50)),
            "b": self.fake(9, (1, 900)),
        }
        assert FailoverCoordinator.choose(replicas) == "a"

    def test_full_tie_prefers_smallest_id(self):
        replicas = {
            "r2": self.fake(9, (1, 100)),
            "r1": self.fake(9, (1, 100)),
            "r10": self.fake(9, (1, 100)),
        }
        assert FailoverCoordinator.choose(replicas) == "r1"

    def test_no_candidates_raises(self):
        with pytest.raises(ReplicationError):
            FailoverCoordinator.choose({})


# ----------------------------------------------------------------------
# In-process promotion end to end
# ----------------------------------------------------------------------
class TestPromotion:
    def test_promote_fences_deposed_primary_and_keeps_answers(
        self, tmp_path
    ):
        store = EpochStore(tmp_path / "epoch.json")
        primary = make_primary(tmp_path, name="p1", store=store)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 8)
        shipper.catch_up()
        reference = primary.query_topk("t1")

        coordinator = FailoverCoordinator(store)
        winner, promoted = coordinator.promote(
            {"r1": replica}, fsync="always"
        )
        try:
            assert winner == "r1"
            assert promoted.epoch == 2
            assert reference.same_answer(promoted.query_topk("t1"))
            # The deposed primary's late append is provably dead.
            with pytest.raises(FencedError):
                primary.submit_and_sync(
                    "t1", SelfRiskUpdate(0, 0.123)
                )
            # The promoted node accepts writes immediately.
            assert promoted.submit_and_sync(
                "t1", SelfRiskUpdate(0, 0.9)
            ) > 0
            event = coordinator.events[-1]
            assert event.winner == "r1" and event.epoch == 2
        finally:
            promoted.close()
            primary.close()

    def test_promoted_mirror_restarts_as_plain_durable_service(
        self, tmp_path
    ):
        store = EpochStore(tmp_path / "epoch.json")
        primary = make_primary(tmp_path, name="p1", store=store)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        WalShipper(LocalSource(hub), replica).catch_up()
        drive(primary, "t1", 6)
        WalShipper(LocalSource(hub), replica).catch_up()
        _, promoted = FailoverCoordinator(store).promote(
            {"r1": replica}, fsync="always"
        )
        promoted.submit_and_sync("t1", SelfRiskUpdate(1, 0.42))
        expected = promoted.query_topk("t1")
        promoted.close()
        primary.close()
        # The promoted lineage's WAL dir is a normal durable service
        # dir: a cold restart recovers the same answers.
        restarted = RiskService(
            make_graph(), mode="serial", wal_dir=tmp_path / "r1",
            fsync="always", monitor_defaults=DEFAULTS,
        )
        try:
            assert expected.same_answer(restarted.query_topk("t1"))
        finally:
            restarted.close()


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class FakeNode:
    def __init__(self, node_id, *, role="replica", epoch=1, lag=0,
                 alive=True, submit_error=None, read_delay=0.0,
                 result=None):
        self.node_id = node_id
        self.role = role
        self.epoch = epoch
        self.lag = lag
        self.alive = alive
        self.submit_error = submit_error
        self.read_delay = read_delay
        self.result = result if result is not None else f"answer-{node_id}"
        self.submits = 0
        self.reads = 0

    def health(self):
        if not self.alive:
            raise ConnectionRefusedError("dead")
        return {"node": self.node_id, "role": self.role,
                "epoch": self.epoch, "lag": self.lag}

    def submit(self, tenant, event, *, ack="window", timeout=5.0):
        self.submits += 1
        if self.submit_error is not None:
            raise self.submit_error
        return {"accepted": True, "seq": self.submits}

    def query_topk(self, tenant, *, max_lag=None):
        self.reads += 1
        if self.read_delay:
            time.sleep(self.read_delay)
        return self.result


class TestRouter:
    def test_highest_epoch_primary_wins_the_election(self):
        deposed = FakeNode("old", role="primary", epoch=1)
        promoted = FakeNode("new", role="primary", epoch=2)
        router = ReplicatedClient([deposed, promoted])
        router.refresh_topology()
        assert router.primary_id == "new"
        reply = router.submit("t", object())
        assert reply["node"] == "new"
        assert deposed.submits == 0
        router.close()

    def test_write_retries_across_failover(self):
        failing = FakeNode(
            "p1", role="primary", epoch=1,
            submit_error=NodeUnavailable("fenced", retry_after=0.0),
        )
        standby = FakeNode("p2", role="replica", epoch=1)
        router = ReplicatedClient(
            [failing, standby], sleep=lambda _: None,
            refresh_interval=0.0,
        )

        original = failing.submit

        def failing_submit(*args, **kwargs):
            # The dying primary rejects once, then the standby is
            # promoted (role flip) and the old one stops answering.
            try:
                return original(*args, **kwargs)
            finally:
                failing.alive = False
                standby.role = "primary"
                standby.epoch = 2

        failing.submit = failing_submit
        reply = router.submit("t", object(), deadline=5.0)
        assert reply["node"] == "p2"
        assert router.stats["write_failovers"] >= 1
        router.close()

    def test_write_deadline_budget_is_honoured(self):
        clock = FakeClock()
        dead = FakeNode(
            "p1", role="primary",
            submit_error=NodeUnavailable("down", retry_after=0.2),
        )
        router = ReplicatedClient(
            [dead], clock=clock, sleep=clock.sleep,
            refresh_interval=0.0,
        )
        with pytest.raises(ReplicationError, match="no accepting"):
            router.submit("t", object(), deadline=1.0)
        assert clock.now <= 1.0  # never slept past the budget
        router.close()

    def test_reads_skip_replicas_past_the_staleness_bound(self):
        primary = FakeNode("p", role="primary", epoch=1)
        laggy = FakeNode("r", role="replica", lag=50)
        router = ReplicatedClient([primary, laggy], max_lag=5)
        router.refresh_topology()
        result = router.query_topk("t")
        assert result == "answer-p"
        assert laggy.reads == 0
        assert router.stats["primary_reads"] == 1
        router.close()

    def test_in_bound_replica_serves_reads(self):
        primary = FakeNode("p", role="primary", epoch=1)
        fresh = FakeNode("r", role="replica", lag=2)
        router = ReplicatedClient([primary, fresh], max_lag=5)
        result = router.query_topk("t")
        assert result == "answer-r"
        assert primary.reads == 0
        router.close()

    def test_slow_replica_read_is_hedged(self):
        primary = FakeNode("p", role="primary", epoch=1)
        slow = FakeNode("r1", role="replica", read_delay=0.25)
        fast = FakeNode("r2", role="replica")
        router = ReplicatedClient(
            [primary, slow, fast], hedge_floor=0.01,
        )
        router.refresh_topology()
        # Teach the estimator r1 is normally fast, so 250 ms reads as
        # an outlier well past the estimated p99.
        for _ in range(8):
            router._latency["r1"].observe(0.002)
        started = time.monotonic()
        result = router.query_topk("t")
        elapsed = time.monotonic() - started
        assert result == "answer-r2"  # the hedge won
        assert router.stats["hedged_reads"] == 1
        assert router.stats["hedge_wins"] == 1
        assert elapsed < 0.25  # did not wait out the slow replica
        router.close()

    def test_local_handles_route_against_real_services(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.register_tenant("t1", 5)
        hub = ReplicationHub(primary)
        replica = make_replica(tmp_path)
        shipper = WalShipper(LocalSource(hub), replica)
        drive(primary, "t1", 5)
        shipper.catch_up()
        router = ReplicatedClient(
            [LocalPrimaryHandle(primary, hub), LocalReplicaHandle(replica)],
            max_lag=0,
        )
        reply = router.submit(
            "t1", SelfRiskUpdate(2, 0.5), ack="durable"
        )
        assert reply["accepted"] and reply["seq"] > 0
        shipper.catch_up()
        answer = router.query_topk("t1")
        assert primary.query_topk("t1").same_answer(answer)
        router.close()
        primary.close()
        replica.close()


class TestEwmaLatency:
    def test_tracks_mean_and_deviation(self):
        ewma = EwmaLatency(alpha=0.5)
        assert ewma.p99() is None
        ewma.observe(0.1)
        assert ewma.p99() == pytest.approx(0.1)
        for _ in range(20):
            ewma.observe(0.1)
        assert ewma.p99() == pytest.approx(0.1, abs=0.01)
        ewma.observe(1.0)  # an outlier lifts both mean and deviation
        assert ewma.p99() > 0.5
