"""Tests for the experiment harness (config, ground truth, all runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.datasets.registry import load_dataset
from repro.datasets.temporal import build_guarantee_panel
from repro.experiments import fig4_bk, fig5_bounds, fig6_efficiency, fig7_effectiveness
from repro.experiments import table2_datasets, table3_prediction
from repro.experiments.config import PRESETS, ExperimentConfig, get_config
from repro.experiments.ground_truth import (
    clear_ground_truth_cache,
    ground_truth_for,
)
from repro.experiments.reporting import ExperimentReport, ReportSection
from repro.experiments.scoring import bsr_scores, bsrbk_scores

# These end-to-end runs dominate suite runtime; deselect with -m "not slow".
pytestmark = pytest.mark.slow

# A deliberately tiny configuration so harness tests run in seconds.
MICRO = ExperimentConfig(
    name="micro",
    seed=3,
    k_percents=(5.0, 10.0),
    ground_truth_samples=400,
    naive_samples=400,
    scale_override=0.02,
    efficiency_datasets=("citation", "guarantee"),
    effectiveness_datasets=("citation", "guarantee"),
    panel_nodes=220,
    panel_edges=253,
)


class TestConfig:
    def test_presets_exist(self):
        assert {"quick", "default", "paper"} <= set(PRESETS)

    def test_get_config(self):
        assert get_config("quick").name == "quick"
        assert get_config("paper").ground_truth_samples == 20_000

    def test_unknown_preset(self):
        with pytest.raises(ExperimentError):
            get_config("turbo")

    def test_with_overrides(self):
        config = get_config("quick").with_overrides(seed=99)
        assert config.seed == 99
        assert get_config("quick").seed != 99 or True  # original untouched


class TestGroundTruth:
    def test_cache_hit(self):
        clear_ground_truth_cache()
        loaded = load_dataset("citation", scale=0.02, seed=1)
        first = ground_truth_for(loaded, samples=200)
        second = ground_truth_for(loaded, samples=200)
        assert first is second

    def test_cache_respects_settings(self):
        clear_ground_truth_cache()
        loaded = load_dataset("citation", scale=0.02, seed=1)
        a = ground_truth_for(loaded, samples=200)
        b = ground_truth_for(loaded, samples=300)
        assert a is not b

    def test_top_k_labels(self):
        loaded = load_dataset("citation", scale=0.02, seed=1)
        truth = ground_truth_for(loaded, samples=200)
        top = truth.top_k_labels(loaded.graph, 5)
        assert len(top) == 5

    def test_probabilities_shape(self):
        loaded = load_dataset("citation", scale=0.02, seed=2)
        truth = ground_truth_for(loaded, samples=150)
        assert truth.probabilities.shape == (loaded.graph.num_nodes,)
        assert truth.samples == 150

    def test_chunked_streaming_is_deterministic(self):
        clear_ground_truth_cache()
        loaded = load_dataset("citation", scale=0.02, seed=1)
        first = ground_truth_for(loaded, samples=300, chunk_size=64)
        clear_ground_truth_cache()
        second = ground_truth_for(loaded, samples=300, chunk_size=64)
        assert np.array_equal(first.probabilities, second.probabilities)
        # chunk_size shapes the random stream, so it is part of the key.
        other = ground_truth_for(loaded, samples=300, chunk_size=32)
        assert other is not second

    def test_disk_cache_round_trip(self, tmp_path):
        clear_ground_truth_cache()
        loaded = load_dataset("citation", scale=0.02, seed=1)
        first = ground_truth_for(loaded, samples=200, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        # A fresh process is simulated by clearing the in-process cache:
        # the second call must load from disk, not resample.
        clear_ground_truth_cache()
        second = ground_truth_for(loaded, samples=200, cache_dir=tmp_path)
        assert second is not first
        assert np.array_equal(first.probabilities, second.probabilities)
        assert second.samples == 200

    def test_disk_cache_distinguishes_settings(self, tmp_path):
        clear_ground_truth_cache()
        loaded = load_dataset("citation", scale=0.02, seed=1)
        ground_truth_for(loaded, samples=200, cache_dir=tmp_path)
        ground_truth_for(loaded, samples=300, cache_dir=tmp_path)
        ground_truth_for(loaded, samples=200, seed=5, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 3

    def test_corrupt_disk_cache_falls_back_to_resampling(self, tmp_path):
        clear_ground_truth_cache()
        loaded = load_dataset("citation", scale=0.02, seed=1)
        first = ground_truth_for(loaded, samples=120, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.npz")
        for corruption in (b"not a npz archive", path.read_bytes()[:40]):
            path.write_bytes(corruption)  # garbage, then a truncated zip
            clear_ground_truth_cache()
            second = ground_truth_for(loaded, samples=120, cache_dir=tmp_path)
            assert np.array_equal(first.probabilities, second.probabilities)

    def test_rejects_bad_arguments(self):
        loaded = load_dataset("citation", scale=0.02, seed=1)
        with pytest.raises(ValueError):
            ground_truth_for(loaded, samples=0)
        with pytest.raises(ValueError):
            ground_truth_for(loaded, samples=10, chunk_size=0)


class TestFigureRuns:
    def test_fig4_rows(self):
        config = MICRO.with_overrides(k_percents=(10.0,))
        rows = fig4_bk.run(config)
        assert len(rows) == len(fig4_bk.FIG4_DATASETS) * len(fig4_bk.BK_GRID)
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0

    def test_fig5_rows_and_shape(self):
        rows = fig5_bounds.run(MICRO)
        assert len(rows) == 4 * 25
        by_dataset: dict = {}
        for row in rows:
            by_dataset.setdefault(row["dataset"], {})[
                (row["lower_order"], row["upper_order"])
            ] = row["candidates"]
        # The paper's shape: order (2,2) never has more candidates than (1,1).
        for cells in by_dataset.values():
            assert cells[(2, 2)] <= cells[(1, 1)]

    def test_fig6_rows_and_telemetry(self):
        rows = fig6_efficiency.run(MICRO)
        assert len(rows) == 2 * 2 * 5  # datasets * k values * methods
        for row in rows:
            assert row["seconds"] >= 0
            assert row["samples"] >= 0

    def test_fig6_speedup_summary(self):
        rows = fig6_efficiency.run(MICRO)
        summary = fig6_efficiency.speedup_summary(rows)
        assert {entry["dataset"] for entry in summary} == {
            "citation",
            "guarantee",
        }
        for entry in summary:
            assert "BSRBK_speedup" in entry

    def test_fig7_rows(self):
        rows = fig7_effectiveness.run(MICRO)
        assert len(rows) == 2 * 2 * 5
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0

    def test_table2_rows(self):
        rows = table2_datasets.run(MICRO)
        assert len(rows) == 8


class TestScoring:
    @pytest.fixture(scope="class")
    def loaded(self):
        return load_dataset("guarantee", scale=0.02, seed=5)

    def test_bsr_scores_shape_and_range(self, loaded):
        scores = bsr_scores(loaded.graph, k=10, seed=1)
        assert scores.shape == (loaded.graph.num_nodes,)
        assert np.all(scores >= 0)
        assert np.all(scores <= 1)

    def test_bsrbk_scores_shape_and_range(self, loaded):
        scores = bsrbk_scores(loaded.graph, k=10, seed=1)
        assert scores.shape == (loaded.graph.num_nodes,)
        assert np.all(scores >= 0)
        assert np.all(scores <= 1)

    def test_scores_correlate_with_ground_truth(self, loaded):
        truth = ground_truth_for(loaded, samples=1500)
        scores = bsr_scores(loaded.graph, k=10, seed=2)
        correlation = np.corrcoef(scores, truth.probabilities)[0, 1]
        assert correlation > 0.8

    def test_invalid_k(self, loaded):
        with pytest.raises(ExperimentError):
            bsr_scores(loaded.graph, k=0)
        with pytest.raises(ExperimentError):
            bsrbk_scores(loaded.graph, k=10**9)


class TestTable3:
    def test_full_run_shape_and_ranges(self):
        panel = build_guarantee_panel(num_nodes=220, num_edges=253, seed=4)
        rows = table3_prediction.run(MICRO, panel=panel)
        assert [row["method"] for row in rows] == list(
            table3_prediction.METHOD_ORDER
        )
        for row in rows:
            for year in (2014, 2015, 2016):
                assert 0.0 <= row[f"AUC({year})"] <= 1.0

    def test_our_methods_beat_structural(self):
        panel = build_guarantee_panel(num_nodes=300, num_edges=345, seed=6)
        rows = table3_prediction.run(MICRO, panel=panel)
        by_method = {row["method"]: row["AUC(2015)"] for row in rows}
        structural_best = max(
            by_method["Betweenness"],
            by_method["PageRank"],
            by_method["K-core"],
            by_method["InfMax"],
        )
        assert by_method["BSR"] > structural_best
        assert by_method["BSRBK"] > structural_best

    def test_graph_restored_after_run(self):
        panel = build_guarantee_panel(num_nodes=220, num_edges=253, seed=4)
        before = panel.graph.self_risk_array.copy()
        table3_prediction.run(MICRO, panel=panel)
        assert np.array_equal(panel.graph.self_risk_array, before)


class TestReporting:
    def test_section_markdown(self):
        section = ReportSection(
            title="T", rows=[{"a": 1}], commentary="note"
        )
        markdown = section.to_markdown()
        assert "## T" in markdown
        assert "note" in markdown
        assert "| a |" in markdown

    def test_report_write(self, tmp_path):
        report = ExperimentReport(heading="H", preamble="P")
        report.add(ReportSection(title="S", rows=[{"x": 2}]))
        path = tmp_path / "report.md"
        report.write(path)
        content = path.read_text()
        assert content.startswith("# H")
        assert "## S" in content
