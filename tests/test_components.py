"""Tests for connectivity analysis (components, circles, reachability)."""

from __future__ import annotations

import pytest

from repro.core.components import (
    guarantee_circles,
    reachable_from,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.core.graph import UncertainGraph


def two_islands():
    graph = UncertainGraph()
    for name in ("a", "b", "c", "x", "y"):
        graph.add_node(name, 0.1)
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("b", "c", 0.5)
    graph.add_edge("x", "y", 0.5)
    return graph


def circle_and_tail():
    graph = UncertainGraph()
    for name in ("p", "q", "r", "tail"):
        graph.add_node(name, 0.1)
    graph.add_edge("p", "q", 0.5)
    graph.add_edge("q", "r", 0.5)
    graph.add_edge("r", "p", 0.5)  # 3-circle
    graph.add_edge("r", "tail", 0.5)
    return graph


class TestWeakComponents:
    def test_two_islands(self):
        components = weakly_connected_components(two_islands())
        sizes = sorted(len(c) for c in components)
        assert sizes == [2, 3]

    def test_largest_first(self):
        components = weakly_connected_components(two_islands())
        assert len(components[0]) >= len(components[1])

    def test_direction_ignored(self):
        graph = UncertainGraph()
        graph.add_node("u", 0.1)
        graph.add_node("v", 0.1)
        graph.add_edge("v", "u", 0.5)  # only an in-edge for u
        components = weakly_connected_components(graph)
        assert len(components) == 1

    def test_empty_graph(self):
        assert weakly_connected_components(UncertainGraph()) == []

    def test_every_node_in_exactly_one_component(self, paper_graph):
        components = weakly_connected_components(paper_graph)
        all_members = [node for component in components for node in component]
        assert sorted(all_members) == sorted(paper_graph.labels())


class TestStrongComponents:
    def test_dag_has_singletons_only(self, paper_graph):
        components = strongly_connected_components(paper_graph)
        assert all(len(c) == 1 for c in components)
        assert len(components) == paper_graph.num_nodes

    def test_circle_detected(self):
        components = strongly_connected_components(circle_and_tail())
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]
        largest = max(components, key=len)
        assert set(largest) == {"p", "q", "r"}

    def test_two_circles(self):
        graph = UncertainGraph()
        for name in ("a", "b", "c", "d"):
            graph.add_node(name, 0.1)
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("b", "a", 0.5)
        graph.add_edge("c", "d", 0.5)
        graph.add_edge("d", "c", 0.5)
        circles = guarantee_circles(graph)
        assert len(circles) == 2
        assert all(len(c) == 2 for c in circles)

    def test_deep_chain_does_not_recurse(self):
        """Iterative Tarjan must survive graphs deeper than the Python
        recursion limit."""
        graph = UncertainGraph()
        depth = 3000
        for i in range(depth):
            graph.add_node(i, 0.0)
        for i in range(depth - 1):
            graph.add_edge(i, i + 1, 0.5)
        components = strongly_connected_components(graph)
        assert len(components) == depth

    def test_matches_networkx(self):
        import networkx as nx

        from repro.datasets.registry import load_dataset

        graph = load_dataset("bitcoin", scale=0.03, seed=3).graph
        ours = {
            frozenset(component)
            for component in strongly_connected_components(graph)
        }
        theirs = {
            frozenset(component)
            for component in nx.strongly_connected_components(
                graph.to_networkx()
            )
        }
        assert ours == theirs


class TestGuaranteeCircles:
    def test_no_circles_in_dag(self, paper_graph):
        assert guarantee_circles(paper_graph) == []

    def test_circle_found(self):
        circles = guarantee_circles(circle_and_tail())
        assert len(circles) == 1
        assert set(circles[0]) == {"p", "q", "r"}


class TestReachability:
    def test_chain(self, chain_graph):
        assert reachable_from(chain_graph, "a") == {"a", "b", "c", "d"}
        assert reachable_from(chain_graph, "c") == {"c", "d"}
        assert reachable_from(chain_graph, "d") == {"d"}

    def test_unknown_label(self, chain_graph):
        from repro.core.errors import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            reachable_from(chain_graph, "zz")
