"""Tests for the maximum-entropy interbank generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.interbank import (
    draw_balance_sheets,
    interbank_graph,
    ras_matrix,
)
from repro.sampling.rng import make_rng


class TestBalanceSheets:
    def test_marginals_balance(self):
        sheets = draw_balance_sheets(50, make_rng(0))
        assert sheets.interbank_assets.sum() == pytest.approx(
            sheets.interbank_liabilities.sum()
        )

    def test_all_positive(self):
        sheets = draw_balance_sheets(50, make_rng(1))
        assert np.all(sheets.total_assets > 0)
        assert np.all(sheets.interbank_assets >= 0)

    def test_minimum_banks(self):
        with pytest.raises(DatasetError):
            draw_balance_sheets(1, make_rng(0))


class TestRASMatrix:
    def test_marginals_satisfied(self):
        rng = make_rng(2)
        rows = rng.uniform(1, 10, 30)
        cols = rng.uniform(1, 10, 30)
        cols *= rows.sum() / cols.sum()
        matrix = ras_matrix(rows, cols)
        assert np.allclose(matrix.sum(axis=1), rows, rtol=1e-6)
        assert np.allclose(matrix.sum(axis=0), cols, rtol=1e-6)

    def test_zero_diagonal(self):
        rng = make_rng(3)
        rows = rng.uniform(1, 10, 20)
        cols = rows.copy()
        matrix = ras_matrix(rows, cols)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_nonnegative(self):
        rng = make_rng(4)
        rows = rng.uniform(0.1, 5, 15)
        cols = rows[::-1].copy()
        matrix = ras_matrix(rows, cols)
        assert np.all(matrix >= 0)

    def test_inconsistent_totals_rejected(self):
        with pytest.raises(DatasetError, match="disagree"):
            ras_matrix(np.array([1.0, 2.0]), np.array([1.0, 5.0]))

    def test_negative_marginals_rejected(self):
        with pytest.raises(DatasetError):
            ras_matrix(np.array([-1.0, 2.0]), np.array([0.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            ras_matrix(np.array([1.0]), np.array([0.5, 0.5]))


class TestInterbankGraph:
    def test_paper_dimensions(self):
        graph = interbank_graph(n=125, m=249, seed=0)
        assert graph.num_nodes == 125
        assert graph.num_edges <= 249  # zero exposures may drop a few
        assert graph.num_edges >= 200

    def test_probabilities_in_range(self):
        graph = interbank_graph(n=60, m=120, seed=1)
        for label in graph.labels():
            assert 0 < graph.self_risk(label) <= 0.95
        for _, _, prob in graph.edges():
            assert 0.01 <= prob <= 0.95

    def test_smaller_banks_riskier(self):
        graph = interbank_graph(n=80, m=160, seed=2)
        risks = graph.self_risk_array
        # Spread should exist (size-dependent risks).
        assert risks.max() > risks.min() * 1.5

    def test_deterministic(self):
        a = interbank_graph(n=40, m=80, seed=5)
        b = interbank_graph(n=40, m=80, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_impossible_edge_count_rejected(self):
        with pytest.raises(DatasetError):
            interbank_graph(n=5, m=25, seed=0)
