"""Topology events in the streaming stack: transactional batches,
interleaved coalesced-vs-serial lockstep, and WAL'd crawl replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DuplicateEdgeError, GraphError
from repro.core.graph import UncertainGraph
from repro.crawling import ObservedGraphSession
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.streaming.events import (
    EdgeAdd,
    EdgeProbabilityUpdate,
    NodeAdd,
    SelfRiskUpdate,
    apply_events,
    validate_events,
)
from repro.streaming.monitor import TopKMonitor


def powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, 3 * n, seed=rng)
    return UncertainGraph.from_arrays(
        rng.random(n) * 0.3,
        src,
        dst,
        np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def two_node_graph() -> UncertainGraph:
    graph = UncertainGraph()
    graph.add_node("a", 0.1)
    graph.add_node("b", 0.2)
    graph.add_edge("a", "b", 0.5)
    return graph


def snapshot(graph: UncertainGraph):
    src, dst, probs = graph.edge_array
    return (
        graph.labels(),
        graph.self_risk_array.copy(),
        src.copy(),
        dst.copy(),
        probs.copy(),
    )


def assert_unchanged(graph: UncertainGraph, before) -> None:
    labels, risks, src, dst, probs = before
    assert graph.labels() == labels
    assert np.array_equal(graph.self_risk_array, risks)
    now_src, now_dst, now_probs = graph.edge_array
    assert np.array_equal(now_src, src)
    assert np.array_equal(now_dst, dst)
    assert np.array_equal(now_probs, probs)


class TestTransactionalTopologyBatches:
    """``apply_events`` is all-or-nothing: a mid-batch invalid event
    must leave the graph exactly as it was."""

    def test_batch_referencing_its_own_additions_validates(self):
        graph = two_node_graph()
        batch = [
            NodeAdd("c", 0.3),
            EdgeAdd("c", "a", 0.4),  # c exists only within the batch
            EdgeAdd("b", "c", 0.6),
            SelfRiskUpdate("c", 0.9),  # patching the in-batch node works
        ]
        assert validate_events(graph, batch) == batch
        assert apply_events(graph, batch) == 4
        assert graph.num_nodes == 3 and graph.num_edges == 3
        assert graph.self_risk_array[graph.index("c")] == pytest.approx(0.9)

    def test_mid_batch_duplicate_node_applies_nothing(self):
        graph = two_node_graph()
        before = snapshot(graph)
        with pytest.raises(GraphError):
            apply_events(
                graph,
                [
                    NodeAdd("c", 0.3),
                    EdgeAdd("c", "a", 0.4),
                    NodeAdd("a", 0.5),  # duplicate: poisons the batch
                ],
            )
        assert_unchanged(graph, before)

    def test_mid_batch_dangling_edge_applies_nothing(self):
        graph = two_node_graph()
        before = snapshot(graph)
        with pytest.raises(GraphError):
            apply_events(
                graph,
                [
                    NodeAdd("c", 0.3),
                    EdgeAdd("c", "missing", 0.4),  # unknown endpoint
                ],
            )
        assert_unchanged(graph, before)

    def test_mid_batch_duplicate_edge_applies_nothing(self):
        graph = two_node_graph()
        before = snapshot(graph)
        with pytest.raises(DuplicateEdgeError):
            apply_events(
                graph,
                [
                    NodeAdd("c", 0.3),
                    EdgeAdd("a", "b", 0.9),  # already exists
                ],
            )
        assert_unchanged(graph, before)

    def test_duplicate_edge_within_batch_applies_nothing(self):
        graph = two_node_graph()
        before = snapshot(graph)
        with pytest.raises(DuplicateEdgeError):
            apply_events(
                graph,
                [
                    NodeAdd("c", 0.3),
                    EdgeAdd("c", "a", 0.4),
                    EdgeAdd("c", "a", 0.5),  # repeats an in-batch edge
                ],
            )
        assert_unchanged(graph, before)

    def test_out_of_range_probability_applies_nothing(self):
        graph = two_node_graph()
        before = snapshot(graph)
        with pytest.raises(Exception):
            apply_events(
                graph,
                [NodeAdd("c", 0.3), EdgeAdd("c", "a", 1.5)],
            )
        assert_unchanged(graph, before)


def interleaved_stream(graph: UncertainGraph, seed: int):
    """Topology growth braided with probability and self-risk patches.

    Patches target pre-existing entities only, so the stream coalesces
    and re-orders freely; growth events always reference the pre-stream
    label set and stay valid in any interleaving that preserves their
    own relative order (which the coalescer guarantees).
    """
    rng = np.random.default_rng(seed)
    labels = graph.labels()
    src, dst, _ = graph.edge_array
    events = []
    for i in range(8):
        events.append(
            SelfRiskUpdate(
                labels[int(rng.integers(len(labels)))],
                float(rng.random() * 0.5),
            )
        )
        edge = int(rng.integers(src.size))
        events.append(
            EdgeProbabilityUpdate(
                labels[int(src[edge])],
                labels[int(dst[edge])],
                float(rng.random()),
            )
        )
        label = f"new-{i}"
        events.append(NodeAdd(label, float(rng.uniform(0.05, 0.4))))
        events.append(
            EdgeAdd(
                label,
                labels[int(rng.integers(len(labels)))],
                float(rng.uniform(0.1, 0.9)),
            )
        )
    # Re-patch some early entities so coalescing has real collisions.
    for event in events[:6]:
        if isinstance(event, SelfRiskUpdate):
            events.append(SelfRiskUpdate(event.label, 0.25))
        elif isinstance(event, EdgeProbabilityUpdate):
            events.append(EdgeProbabilityUpdate(event.src, event.dst, 0.5))
    return events


class TestInterleavedLockstep:
    """Coalesced-vs-serial bit-identity under mixed topology,
    probability, and self-risk streams (the serving queue's contract
    extended to growth)."""

    @pytest.mark.parametrize("layout", ["packed", "stable"])
    def test_coalesced_flush_matches_serial(self, layout):
        from repro.serving.coalesce import coalesce_events

        base = powerlaw_graph(200, seed=51)
        events = interleaved_stream(base.copy(), seed=8)

        def build(graph):
            return TopKMonitor(
                graph, 5, seed=2, engine="indexed", counter_layout=layout
            )

        serial_graph = base.copy()
        serial = build(serial_graph)
        serial.top_k()
        for event in events:
            serial.apply([event])
            serial.refresh()
        serial_result = serial.top_k()

        coalesced_graph = base.copy()
        coalesced = build(coalesced_graph)
        coalesced.top_k()
        batch = coalesce_events(events)
        assert len(batch) < len(events)
        # Topology events must survive coalescing in order.
        adds = [e for e in batch if isinstance(e, (NodeAdd, EdgeAdd))]
        assert adds == [
            e for e in events if isinstance(e, (NodeAdd, EdgeAdd))
        ]
        coalesced.apply(batch)
        coalesced_result = coalesced.top_k()

        assert serial_graph.labels() == coalesced_graph.labels()
        assert np.array_equal(
            serial_graph.self_risk_array, coalesced_graph.self_risk_array
        )
        assert np.array_equal(
            serial_graph.edge_array[2], coalesced_graph.edge_array[2]
        )
        assert coalesced_result.same_answer(serial_result)
        # Both equal fresh detection on the final grown graph.
        fresh = build(coalesced_graph.copy()).top_k()
        assert coalesced_result.same_answer(fresh)

    def test_stable_layout_takes_incremental_topology_path(self):
        base = powerlaw_graph(200, seed=52)
        events = interleaved_stream(base.copy(), seed=9)
        monitor = TopKMonitor(
            base, 5, seed=2, engine="indexed", counter_layout="stable"
        )
        monitor.top_k()
        fulls_after_build = monitor.stats["full"]
        for event in events:
            monitor.apply([event])
            monitor.refresh()
        # Every NodeAdd/EdgeAdd step must have refreshed through the
        # incremental topology path, never the full fallback.
        assert monitor.stats["topology"] == 16
        assert monitor.stats["full"] == fulls_after_build

    def test_packed_layout_topology_falls_back_to_full(self):
        base = powerlaw_graph(120, seed=53)
        monitor = TopKMonitor(base, 4, seed=3, engine="indexed")
        monitor.top_k()
        monitor.apply([NodeAdd("n", 0.2), EdgeAdd("n", base.label(0), 0.5)])
        report = monitor.refresh()
        assert report.mode == "full"
        assert monitor.top_k().same_answer(
            TopKMonitor(base.copy(), 4, seed=3, engine="indexed").top_k()
        )

    def test_stable_layout_requires_indexed_engine(self):
        with pytest.raises(GraphError, match="indexed"):
            TopKMonitor(
                powerlaw_graph(30, seed=1),
                3,
                engine="batched",
                counter_layout="stable",
            )

    def test_unknown_layout_rejected(self):
        with pytest.raises(GraphError, match="counter_layout"):
            TopKMonitor(
                powerlaw_graph(30, seed=1), 3, counter_layout="wavy"
            )


class TestWalCrawlReplay:
    """A WAL'd crawl session recovers to the same answers: durable
    partial observation."""

    def test_replayed_crawl_matches_live_monitor(self, tmp_path):
        from repro.persistence.wal import WriteAheadLog

        hidden = powerlaw_graph(100, seed=61)
        seeds = [hidden.label(i) for i in (0, 2, 5)]
        k = 3
        session = ObservedGraphSession(
            hidden, seeds, strategy="degree", budget=12, seed=7
        )

        def build(graph):
            return TopKMonitor(
                graph, k, seed=11, engine="indexed", counter_layout="stable"
            )

        live = UncertainGraph()
        monitor = None
        with WriteAheadLog(tmp_path) as wal:
            for batch in session.run():
                wal.append_events("crawler", list(batch.events))
                if monitor is None:
                    apply_events(live, batch.events)
                    if live.num_nodes >= k:
                        monitor = build(live)
                else:
                    monitor.apply(batch.events)
            wal.sync()
            live_result = monitor.top_k()

        # Crash-and-recover: replay the durable log from scratch.
        with WriteAheadLog(tmp_path) as wal:
            batches = wal.read_batches()
        assert len(batches) == session.steps_taken + 1
        recovered_graph = UncertainGraph()
        for batch in batches:
            assert batch.tenant_id == "crawler"
            apply_events(recovered_graph, batch.events)
        # Provenance survives the round-trip.
        all_events = [e for b in batches for e in b.events]
        assert all(e.source.startswith("crawl:") for e in all_events)
        assert recovered_graph.labels() == live.labels()
        recovered_result = build(recovered_graph).top_k()
        assert recovered_result.same_answer(live_result)
