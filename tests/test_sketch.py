"""Tests for repro.sketch.bottom_k — sketches and the BSRBK stopper."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SamplingError
from repro.sketch.bottom_k import (
    BottomKSketch,
    BottomKStopper,
    bottom_k_scan,
    coefficient_of_variation,
    expected_relative_error,
)


class TestErrorFormulas:
    def test_expected_relative_error_formula(self):
        assert expected_relative_error(18) == pytest.approx(
            math.sqrt(2 / (math.pi * 16))
        )

    def test_cv_formula(self):
        assert coefficient_of_variation(18) == pytest.approx(0.25)

    def test_bk_two_is_degenerate(self):
        assert expected_relative_error(2) == math.inf
        assert coefficient_of_variation(2) == math.inf

    def test_bk_below_two_rejected(self):
        with pytest.raises(SamplingError):
            expected_relative_error(1)

    def test_error_shrinks_with_bk(self):
        errors = [expected_relative_error(bk) for bk in (4, 8, 16, 32, 64)]
        assert errors == sorted(errors, reverse=True)


class TestBottomKSketch:
    def test_keeps_k_smallest(self):
        sketch = BottomKSketch(bk=3)
        for value in (0.9, 0.1, 0.4, 0.2, 0.05, 0.7):
            sketch.add(value)
        assert sketch.kth_smallest() == pytest.approx(0.2)

    def test_not_full_reports_exact_count(self):
        sketch = BottomKSketch(bk=10)
        sketch.update([0.1, 0.2, 0.3])
        assert not sketch.is_full
        assert sketch.estimate_distinct() == pytest.approx(3.0)

    def test_kth_smallest_requires_full(self):
        sketch = BottomKSketch(bk=4)
        sketch.add(0.5)
        with pytest.raises(SamplingError):
            sketch.kth_smallest()

    def test_rejects_out_of_range_hash(self):
        sketch = BottomKSketch(bk=2)
        with pytest.raises(SamplingError):
            sketch.add(0.0)
        with pytest.raises(SamplingError):
            sketch.add(1.0)

    def test_rejects_small_bk(self):
        with pytest.raises(SamplingError):
            BottomKSketch(bk=1)

    def test_distinct_count_estimate_statistical(self):
        """Estimate of n distinct uniform hashes is within 3 CVs of n."""
        rng = np.random.default_rng(0)
        n, bk = 5000, 64
        sketch = BottomKSketch(bk=bk)
        sketch.update(rng.random(n))
        estimate = sketch.estimate_distinct()
        cv = coefficient_of_variation(bk)
        assert abs(estimate - n) < 4 * cv * n

    @given(st.lists(st.floats(0.001, 0.999), min_size=5, max_size=50))
    def test_kth_smallest_matches_sorted(self, values):
        bk = 5
        sketch = BottomKSketch(bk=bk)
        sketch.update(values)
        assert sketch.kth_smallest() == pytest.approx(sorted(values)[bk - 1])


class TestBottomKStopper:
    def test_finishes_after_bk_hits(self):
        stopper = BottomKStopper(
            num_candidates=2, bk=3, total_samples=100, stop_after=1
        )
        outcome_hit = np.array([True, False])
        finished = []
        for i in range(3):
            finished += stopper.offer(0.01 * (i + 1), outcome_hit)
        assert finished == [0]
        assert stopper.should_stop

    def test_requires_ascending_hashes(self):
        stopper = BottomKStopper(2, 2, 10, 1)
        stopper.offer(0.5, np.array([False, False]))
        with pytest.raises(SamplingError, match="ascending"):
            stopper.offer(0.4, np.array([False, False]))

    def test_outcome_shape_checked(self):
        stopper = BottomKStopper(2, 2, 10, 1)
        with pytest.raises(SamplingError):
            stopper.offer(0.1, np.array([True]))

    def test_estimates_before_processing_rejected(self):
        stopper = BottomKStopper(2, 2, 10, 1)
        with pytest.raises(SamplingError):
            stopper.estimates()

    def test_finished_estimate_formula(self):
        """Theorem 6: p(u) estimated as (bk-1)/(L(A,bk) * t)."""
        bk, t = 3, 100
        stopper = BottomKStopper(1, bk, t, 1)
        hashes = [0.01, 0.02, 0.05]
        for h in hashes:
            stopper.offer(h, np.array([True]))
        estimate = stopper.estimates()[0]
        assert estimate == pytest.approx((bk - 1) / (0.05 * t))

    def test_unfinished_estimate_is_empirical(self):
        stopper = BottomKStopper(1, bk=5, total_samples=100, stop_after=1)
        stopper.offer(0.1, np.array([True]))
        stopper.offer(0.2, np.array([False]))
        assert stopper.estimates()[0] == pytest.approx(0.5)

    def test_counter_freezes_after_finish(self):
        stopper = BottomKStopper(1, bk=2, total_samples=10, stop_after=1)
        stopper.offer(0.1, np.array([True]))
        stopper.offer(0.2, np.array([True]))  # finishes here
        stopper.offer(0.3, np.array([True]))  # must not count further
        assert stopper.counts[0] == 2

    def test_first_finisher_has_largest_estimate(self):
        """Theorem 6's ordering: earlier finishers estimate higher."""
        stopper = BottomKStopper(2, bk=2, total_samples=50, stop_after=2)
        stopper.offer(0.05, np.array([True, False]))
        stopper.offer(0.10, np.array([True, True]))
        stopper.offer(0.20, np.array([False, True]))
        estimates = stopper.estimates()
        assert stopper.finished == [0, 1]
        assert estimates[0] > estimates[1]

    def test_stop_after_many(self):
        stopper = BottomKStopper(3, bk=2, total_samples=50, stop_after=2)
        stopper.offer(0.1, np.array([True, True, False]))
        assert not stopper.should_stop
        stopper.offer(0.2, np.array([True, True, False]))
        assert stopper.should_stop
        assert set(stopper.finished) == {0, 1}

    def test_invalid_construction(self):
        with pytest.raises(SamplingError):
            BottomKStopper(0, 2, 10, 1)
        with pytest.raises(SamplingError):
            BottomKStopper(1, 2, 0, 1)
        with pytest.raises(SamplingError):
            BottomKStopper(1, 2, 10, 0)
        with pytest.raises(SamplingError):
            BottomKStopper(1, 1, 10, 1)

    def test_statistical_estimate_quality(self):
        """Stopper estimates track the true Bernoulli rate."""
        rng = np.random.default_rng(42)
        true_p = 0.4
        t = 2000
        hashes = np.sort(rng.random(t))
        stopper = BottomKStopper(1, bk=32, total_samples=t, stop_after=1)
        for h in hashes:
            stopper.offer(float(h), rng.random(1) <= true_p)
            if stopper.should_stop:
                break
        estimate = stopper.estimates()[0]
        assert estimate == pytest.approx(true_p, abs=0.15)


def _replay_stopper(outcomes, hashes, bk, stop_after, total_samples):
    """Feed the rows through a scalar BottomKStopper exactly as BSRBK's
    stream loop does, returning the fields the scan mirrors."""
    stopper = BottomKStopper(
        num_candidates=outcomes.shape[1],
        bk=bk,
        total_samples=total_samples,
        stop_after=stop_after,
    )
    stopped_early = False
    for sample_hash, outcome in zip(hashes, outcomes):
        stopper.offer(float(sample_hash), outcome)
        if stopper.should_stop:
            stopped_early = True
            break
    return (
        stopper.processed,
        stopped_early,
        stopper.counts.copy(),
        stopper.estimates(),
    )


class TestBottomKScan:
    """The vectorised scan is field-for-field the scalar stopper."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_stopper_on_random_streams(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 60))
        candidates = int(rng.integers(1, 12))
        bk = int(rng.integers(2, 6))
        stop_after = int(rng.integers(1, candidates + 1))
        total = rows + int(rng.integers(0, 20))
        outcomes = rng.random((rows, candidates)) < rng.random(candidates)
        hashes = np.sort(rng.random(rows)) * 0.98 + 0.01
        scan = bottom_k_scan(outcomes, hashes, bk, stop_after, total)
        processed, stopped, counts, estimates = _replay_stopper(
            outcomes, hashes, bk, stop_after, total
        )
        assert scan.processed == processed
        assert scan.stopped_early == stopped
        assert np.array_equal(scan.counts, counts)
        assert np.array_equal(scan.estimates, estimates)

    def test_prefix_stability(self):
        """Once the scan stops within a prefix, every longer prefix
        stops at the same position with the same estimates — the
        property that makes BSRBK's result chunk-schedule independent."""
        rng = np.random.default_rng(3)
        rows, candidates = 80, 6
        outcomes = rng.random((rows, candidates)) < 0.35
        hashes = np.sort(rng.random(rows))
        base = bottom_k_scan(outcomes, hashes, 3, 2, rows)
        assert base.stopped_early
        for extra in (1, 5, rows - base.processed):
            prefix = base.processed + extra
            again = bottom_k_scan(
                outcomes[:prefix], hashes[:prefix], 3, 2, rows
            )
            assert again.processed == base.processed
            assert np.array_equal(again.estimates, base.estimates)

    def test_never_stopping_consumes_all_rows(self):
        outcomes = np.zeros((10, 3), dtype=bool)
        hashes = np.linspace(0.1, 0.9, 10)
        scan = bottom_k_scan(outcomes, hashes, 2, 1, 10)
        assert not scan.stopped_early
        assert scan.processed == 10
        assert (scan.finish_positions == -1).all()
        assert (scan.estimates == 0.0).all()

    def test_validation(self):
        outcomes = np.zeros((4, 2), dtype=bool)
        hashes = np.linspace(0.1, 0.4, 4)
        with pytest.raises(SamplingError):
            bottom_k_scan(np.zeros((0, 2), dtype=bool), hashes[:0], 2, 1, 4)
        with pytest.raises(SamplingError):
            bottom_k_scan(outcomes, hashes[:2], 2, 1, 4)
        with pytest.raises(SamplingError):
            bottom_k_scan(outcomes, hashes, 1, 1, 4)
        with pytest.raises(SamplingError):
            bottom_k_scan(outcomes, hashes, 2, 0, 4)
        with pytest.raises(SamplingError):
            bottom_k_scan(outcomes, hashes, 2, 1, 0)
