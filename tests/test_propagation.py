"""Tests for repro.core.propagation — the shared multi-world engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph
from repro.core.propagation import (
    propagate_defaults_block,
    propagate_edge_list,
    ragged_positions,
)
from repro.core.worlds import PossibleWorld, propagate_defaults


def random_graph(n: int, m: int, seed: int, pinned: bool = False) -> UncertainGraph:
    """Random simple digraph; *pinned* mixes in 0.0/1.0 probabilities."""
    rng = np.random.default_rng(seed)
    pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    m = min(m, len(pairs))
    chosen = rng.choice(len(pairs), size=m, replace=False)
    src = np.fromiter((pairs[i][0] for i in chosen), dtype=np.int64, count=m)
    dst = np.fromiter((pairs[i][1] for i in chosen), dtype=np.int64, count=m)
    risks = rng.uniform(0.0, 1.0, n)
    probs = rng.uniform(0.0, 1.0, m)
    if pinned:
        risks[rng.random(n) < 0.3] = 0.0
        risks[rng.random(n) < 0.2] = 1.0
        probs[rng.random(m) < 0.3] = 0.0
        probs[rng.random(m) < 0.2] = 1.0
    return UncertainGraph.from_arrays(risks, src, dst, probs)


class TestRaggedPositions:
    def test_concatenates_segments_in_order(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        positions, counts = ragged_positions(indptr, np.array([2, 0, 1]))
        assert positions.tolist() == [2, 3, 4, 0, 1]
        assert counts.tolist() == [3, 2, 0]

    def test_repeats_allowed(self):
        indptr = np.array([0, 2, 3], dtype=np.int64)
        positions, _ = ragged_positions(indptr, np.array([0, 0]))
        assert positions.tolist() == [0, 1, 0, 1]

    def test_all_empty_segments(self):
        indptr = np.array([0, 0, 0], dtype=np.int64)
        positions, counts = ragged_positions(indptr, np.array([0, 1]))
        assert positions.size == 0
        assert counts.tolist() == [0, 0]


class TestPropagateEdgeList:
    def test_chain_closure(self):
        defaulted = np.array([True, False, False, False])
        propagate_edge_list(
            defaulted, np.array([0, 1, 2]), np.array([1, 2, 3])
        )
        assert defaulted.all()

    def test_disconnected_stays_clear(self):
        defaulted = np.array([True, False, False])
        propagate_edge_list(defaulted, np.array([1]), np.array([2]))
        assert defaulted.tolist() == [True, False, False]

    def test_no_edges(self):
        defaulted = np.array([False, True])
        propagate_edge_list(
            defaulted, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert defaulted.tolist() == [False, True]

    def test_epoch_stamped_matches_boolean(self):
        """The kernel runs identically on bool marks and int64 stamps."""
        rng = np.random.default_rng(3)
        for _ in range(20):
            size = int(rng.integers(2, 30))
            edges = int(rng.integers(0, 3 * size))
            src = rng.integers(0, size, edges)
            dst = rng.integers(0, size, edges)
            seeds = rng.random(size) < 0.2
            as_bool = seeds.copy()
            propagate_edge_list(as_bool, src, dst)
            epoch = 7
            stamps = np.where(seeds, epoch, 0).astype(np.int64)
            propagate_edge_list(stamps, src, dst, epoch)
            assert np.array_equal(as_bool, stamps == epoch)


class TestPropagateDefaultsBlock:
    def test_matches_scalar_reference_exactly(self):
        """Every block row must equal the scalar BFS bit for bit."""
        rng = np.random.default_rng(11)
        for trial in range(15):
            graph = random_graph(
                int(rng.integers(2, 12)),
                int(rng.integers(0, 20)),
                int(rng.integers(0, 2**31)),
                pinned=trial % 2 == 0,
            )
            worlds = 32
            self_default = rng.random((worlds, graph.num_nodes)) < 0.3
            edge_survives = rng.random((worlds, graph.num_edges)) < 0.5
            block = propagate_defaults_block(graph, self_default, edge_survives)
            for w in range(worlds):
                scalar = propagate_defaults(
                    graph,
                    PossibleWorld(
                        self_default=self_default[w].copy(),
                        edge_survives=edge_survives[w].copy(),
                    ),
                )
                assert np.array_equal(block[w], scalar)

    def test_inputs_not_modified(self):
        graph = random_graph(5, 8, 1)
        self_default = np.zeros((4, 5), dtype=bool)
        self_default[:, 0] = True
        edge_survives = np.ones((4, 8), dtype=bool)
        before = self_default.copy()
        propagate_defaults_block(graph, self_default, edge_survives)
        assert np.array_equal(self_default, before)

    def test_empty_block(self):
        graph = random_graph(4, 5, 2)
        result = propagate_defaults_block(
            graph, np.zeros((0, 4), dtype=bool), np.zeros((0, 5), dtype=bool)
        )
        assert result.shape == (0, 4)

    def test_isolated_nodes_default_only_by_themselves(self):
        graph = UncertainGraph()
        for i in range(3):
            graph.add_node(i, 0.5)
        self_default = np.array([[True, False, False], [False, False, True]])
        result = propagate_defaults_block(
            graph, self_default, np.zeros((2, 0), dtype=bool)
        )
        assert np.array_equal(result, self_default)

    def test_shape_validation(self):
        graph = random_graph(4, 5, 3)
        with pytest.raises(GraphError):
            propagate_defaults_block(
                graph, np.zeros((2, 3), dtype=bool), np.zeros((2, 5), dtype=bool)
            )
        with pytest.raises(GraphError):
            propagate_defaults_block(
                graph, np.zeros((2, 4), dtype=bool), np.zeros((3, 5), dtype=bool)
            )

    def test_dtype_validation(self):
        graph = random_graph(4, 5, 4)
        with pytest.raises(GraphError):
            propagate_defaults_block(
                graph, np.zeros((2, 4), dtype=float), np.zeros((2, 5), dtype=bool)
            )
