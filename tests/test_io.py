"""Tests for repro.io — edge-list and JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.algorithms.naive import NaiveDetector
from repro.core.errors import GraphError
from repro.io.edgelist import (
    dumps_edgelist,
    loads_edgelist,
    read_edgelist,
    write_edgelist,
)
from repro.io.jsonio import (
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    result_to_dict,
    save_graph_json,
    save_results_json,
)


class TestEdgelist:
    def test_string_round_trip(self, paper_graph):
        text = dumps_edgelist(paper_graph)
        back = loads_edgelist(text)
        assert back.num_nodes == 5
        assert back.num_edges == 6
        assert back.self_risk("E") == pytest.approx(0.2)
        assert back.edge_probability("A", "B") == pytest.approx(0.2)

    def test_file_round_trip(self, paper_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edgelist(paper_graph, path)
        back = read_edgelist(path)
        assert sorted(str(s) for s, _, _ in back.edges()) == sorted(
            str(s) for s, _, _ in paper_graph.edges()
        )

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\nN a 0.5\nN b 0.25\n# another\nE a b 0.75\n"
        graph = loads_edgelist(text)
        assert graph.num_nodes == 2
        assert graph.edge_probability("a", "b") == pytest.approx(0.75)

    def test_bad_record_type(self):
        with pytest.raises(GraphError, match="unknown record"):
            loads_edgelist("X a b\n")

    def test_bad_field_counts(self):
        with pytest.raises(GraphError):
            loads_edgelist("N a\n")
        with pytest.raises(GraphError):
            loads_edgelist("N a 0.5\nN b 0.5\nE a b\n")

    def test_probability_precision_preserved(self):
        from repro.core.graph import UncertainGraph

        graph = UncertainGraph()
        graph.add_node("x", 0.123456789012)
        assert loads_edgelist(dumps_edgelist(graph)).self_risk(
            "x"
        ) == pytest.approx(0.123456789012, abs=1e-12)


class TestGraphJson:
    def test_dict_round_trip(self, paper_graph):
        payload = graph_to_dict(paper_graph)
        back = graph_from_dict(payload)
        assert sorted(back.edges()) == sorted(paper_graph.edges())

    def test_payload_is_json_serialisable(self, paper_graph):
        json.dumps(graph_to_dict(paper_graph))

    def test_file_round_trip(self, paper_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph_json(paper_graph, path)
        back = load_graph_json(path)
        assert back.num_nodes == paper_graph.num_nodes

    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "something-else"})

    def test_integer_labels_survive(self):
        from repro.core.graph import UncertainGraph

        graph = UncertainGraph()
        graph.add_node(0, 0.5)
        graph.add_node(1, 0.5)
        graph.add_edge(0, 1, 0.5)
        back = graph_from_dict(graph_to_dict(graph))
        assert back.has_edge(0, 1)


class TestResultsJson:
    def test_result_round_trip(self, paper_graph, tmp_path):
        result = NaiveDetector(samples=100, seed=0).detect(paper_graph, 2)
        payload = result_to_dict(result)
        json.dumps(payload)  # must be serialisable
        assert payload["method"] == "N"
        assert len(payload["nodes"]) == 2
        path = tmp_path / "results.json"
        save_results_json([result], path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded[0]["k"] == 2

    def test_numpy_values_jsonified(self, paper_graph):
        import numpy as np

        result = NaiveDetector(samples=50, seed=0).detect(paper_graph, 1)
        tampered = result.details
        tampered["np_value"] = np.float64(1.5)
        tampered["array"] = [np.int64(3)]
        payload = result_to_dict(result)
        json.dumps(payload)
        assert payload["details"]["np_value"] == 1.5
