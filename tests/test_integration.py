"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.core.exact import exact_top_k
from repro.datasets.registry import load_dataset
from repro.experiments.ground_truth import ground_truth_for
from repro.io.jsonio import graph_from_dict, graph_to_dict, result_to_dict
from repro.metrics.ranking import jaccard, precision_at_k


# Once dominated by exact world enumeration, these end-to-end runs now
# finish in well under a second on the bit-parallel oracle and stay in
# the smoke tier.


class TestDatasetToDetectionPipeline:
    """Generate a dataset, compute ground truth, run every method."""

    @pytest.fixture(scope="class")
    def loaded(self):
        return load_dataset("citation", scale=0.05, seed=11)

    @pytest.fixture(scope="class")
    def truth(self, loaded):
        return ground_truth_for(loaded, samples=3000)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_method_reaches_reasonable_precision(self, loaded, truth, method):
        k = loaded.k_for_percent(5.0)
        detector = make_detector(
            method, samples=3000, epsilon=0.3, delta=0.1, seed=1
        )
        result = detector.detect(loaded.graph, k)
        truth_set = truth.top_k_labels(loaded.graph, k)
        precision = precision_at_k(result.nodes, truth_set)
        # The paper's Figure 7 sits in 0.70-0.96 at these settings.
        assert precision >= 0.6, f"{method} precision {precision:.2f}"

    def test_methods_agree_with_each_other(self, loaded):
        k = loaded.k_for_percent(5.0)
        answers = {}
        for method in ALL_METHODS:
            detector = make_detector(
                method, samples=2000, epsilon=0.3, delta=0.1, seed=2
            )
            answers[method] = set(detector.detect(loaded.graph, k).nodes)
        for method, answer in answers.items():
            if method == "N":
                continue
            assert jaccard(answer, answers["N"]) >= 0.4, method

    def test_pruned_methods_sample_less(self, loaded):
        k = loaded.k_for_percent(5.0)
        sn = make_detector("SN", epsilon=0.3, delta=0.1, seed=0).detect(
            loaded.graph, k
        )
        bsr = make_detector("BSR", epsilon=0.3, delta=0.1, seed=0).detect(
            loaded.graph, k
        )
        bsrbk = make_detector("BSRBK", epsilon=0.3, delta=0.1, seed=0).detect(
            loaded.graph, k
        )
        assert bsr.samples_used <= sn.samples_used
        assert bsrbk.samples_used <= bsr.samples_used

    def test_serialisation_round_trip_preserves_detection(self, loaded):
        k = 3
        graph_copy = graph_from_dict(graph_to_dict(loaded.graph))
        original = make_detector("BSR", seed=5).detect(loaded.graph, k)
        replayed = make_detector("BSR", seed=5).detect(graph_copy, k)
        assert original.nodes == replayed.nodes
        payload = result_to_dict(original)
        assert payload["k"] == k


class TestSmallGraphConsensus:
    """On an exactly solvable graph, all methods converge to the truth
    when the probability gaps exceed epsilon."""

    @pytest.fixture(scope="class")
    def gapped_graph(self):
        from repro.core.graph import UncertainGraph

        graph = UncertainGraph()
        risks = [0.85, 0.55, 0.25, 0.1, 0.05, 0.02]
        for i, risk in enumerate(risks):
            graph.add_node(f"v{i}", risk)
        graph.add_edge("v0", "v3", 0.4)
        graph.add_edge("v1", "v4", 0.4)
        graph.add_edge("v2", "v5", 0.4)
        return graph

    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exact_agreement(self, gapped_graph, method, k):
        truth = set(exact_top_k(gapped_graph, k))
        detector = make_detector(
            method, samples=4000, epsilon=0.15, delta=0.05, seed=3
        )
        result = detector.detect(gapped_graph, k)
        assert set(result.nodes) == truth


class TestFinancialPipeline:
    def test_guarantee_detection_hits_high_risk_nodes(self):
        """Top-k on the guarantee network should be enriched with nodes
        whose latent risk is high (the financial model's ground truth)."""
        loaded = load_dataset("guarantee", scale=0.03, seed=13)
        assert loaded.features is not None
        k = loaded.k_for_percent(10.0)
        result = make_detector("BSRBK", seed=4).detect(loaded.graph, k)
        latent = loaded.features.latent_risk
        chosen = [loaded.graph.index(label) for label in result.nodes]
        assert latent[chosen].mean() > latent.mean()

    def test_interbank_contagion_raises_probabilities(self):
        """Monte-Carlo default probabilities must exceed self-risks for
        exposed banks (contagion adds risk)."""
        loaded = load_dataset("interbank", seed=14)
        truth = ground_truth_for(loaded, samples=3000)
        ps = loaded.graph.self_risk_array
        in_degree = loaded.graph.in_csr().degrees
        exposed = in_degree > 0
        lift = truth.probabilities[exposed] - ps[exposed]
        assert lift.mean() > 0
