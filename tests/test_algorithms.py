"""Tests for the five detection algorithms (N, SN, SR, BSR, BSRBK)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import DetectionResult
from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.algorithms.naive import NaiveDetector
from repro.algorithms.registry import ALL_METHODS, detector_class, make_detector
from repro.algorithms.sn import SampledNaiveDetector
from repro.algorithms.sr import SampleReverseDetector
from repro.core.errors import ExperimentError, GraphError, SamplingError
from repro.core.exact import exact_default_probabilities, exact_top_k
from repro.metrics.ranking import precision_at_k

ALL_DETECTORS = [
    lambda seed: NaiveDetector(samples=2000, seed=seed),
    lambda seed: SampledNaiveDetector(epsilon=0.2, delta=0.1, seed=seed),
    lambda seed: SampleReverseDetector(epsilon=0.2, delta=0.1, seed=seed),
    lambda seed: BoundedSampleReverseDetector(epsilon=0.2, delta=0.1, seed=seed),
    lambda seed: BottomKDetector(bk=16, epsilon=0.2, delta=0.1, seed=seed),
]


class TestResultInvariants:
    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_result_shape(self, paper_graph, factory):
        result = factory(0).detect(paper_graph, 2)
        assert isinstance(result, DetectionResult)
        assert result.k == 2
        assert len(result.nodes) == 2
        assert len(set(result.nodes)) == 2
        assert set(result.scores) >= set(result.nodes)
        assert result.samples_used >= 0
        assert result.elapsed_seconds >= 0.0
        assert 0 <= result.k_verified <= 2
        assert result.candidate_size <= paper_graph.num_nodes

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_k_equals_n(self, paper_graph, factory):
        result = factory(0).detect(paper_graph, 5)
        assert sorted(result.nodes) == ["A", "B", "C", "D", "E"]

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_invalid_k_rejected(self, paper_graph, factory):
        detector = factory(0)
        with pytest.raises(GraphError):
            detector.detect(paper_graph, 0)
        with pytest.raises(GraphError):
            detector.detect(paper_graph, 6)

    def test_top_set_and_summary(self, paper_graph):
        result = NaiveDetector(samples=500, seed=0).detect(paper_graph, 2)
        assert result.top_set() == frozenset(result.nodes)
        summary = result.summary()
        assert summary["method"] == "N"
        assert summary["k"] == 2


class TestAccuracy:
    """With a tolerant epsilon, every method should find well-separated
    top nodes; the fixtures are built so the top-2 gap exceeds epsilon."""

    @pytest.fixture
    def separated_graph(self):
        from repro.core.graph import UncertainGraph

        graph = UncertainGraph()
        risks = [0.9, 0.85, 0.2, 0.15, 0.1, 0.05, 0.12, 0.08]
        for i, risk in enumerate(risks):
            graph.add_node(i, risk)
        edges = [(0, 2), (1, 3), (2, 4), (3, 5), (0, 6), (1, 7)]
        for src, dst in edges:
            graph.add_edge(src, dst, 0.3)
        return graph

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_finds_separated_top2(self, separated_graph, factory):
        truth = set(exact_top_k(separated_graph, 2))
        result = factory(1).detect(separated_graph, 2)
        assert precision_at_k(result.nodes, truth) == 1.0

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_average_precision_on_paper_graph(self, paper_graph, factory):
        """Across seeds, mean top-2 precision must clear 0.5 (epsilon-level
        misses between D (0.237) and B/C (0.232) are legitimate)."""
        truth = set(exact_top_k(paper_graph, 2))
        hits = [
            precision_at_k(factory(seed).detect(paper_graph, 2).nodes, truth)
            for seed in range(10)
        ]
        assert float(np.mean(hits)) >= 0.5

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_scores_are_probabilities(self, paper_graph, factory):
        result = factory(2).detect(paper_graph, 3)
        for score in result.scores.values():
            assert -1e-9 <= score <= 1.0 + 1e-9


class TestDeterminism:
    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_same_seed_same_answer(self, paper_graph, factory):
        first = factory(7).detect(paper_graph, 2)
        second = factory(7).detect(paper_graph, 2)
        assert first.nodes == second.nodes
        assert first.samples_used == second.samples_used


class TestMethodSpecifics:
    def test_naive_uses_fixed_budget(self, paper_graph):
        result = NaiveDetector(samples=777, seed=0).detect(paper_graph, 1)
        assert result.samples_used == 777

    def test_naive_rejects_bad_budget(self):
        with pytest.raises(SamplingError):
            NaiveDetector(samples=0)

    def test_sn_budget_matches_equation3(self, paper_graph):
        from repro.sampling.sample_size import basic_sample_size

        result = SampledNaiveDetector(
            epsilon=0.3, delta=0.1, seed=0
        ).detect(paper_graph, 2)
        assert result.samples_used == basic_sample_size(5, 2, 0.3, 0.1)

    def test_sr_candidate_size_recorded(self, paper_graph):
        result = SampleReverseDetector(seed=0).detect(paper_graph, 1)
        assert 1 <= result.candidate_size <= 5
        assert result.details["Tl"] > 0

    def test_bsr_verifies_on_paper_graph(self, paper_graph):
        """With order-2 bounds, E verifies for k=2 (pl(E) > all other pu)."""
        result = BoundedSampleReverseDetector(seed=0).detect(paper_graph, 2)
        assert result.k_verified == 1
        assert result.nodes[0] == "E"

    def test_bsr_budget_never_exceeds_sn(self, paper_graph):
        sn = SampledNaiveDetector(seed=0).detect(paper_graph, 2)
        bsr = BoundedSampleReverseDetector(seed=0).detect(paper_graph, 2)
        assert bsr.samples_used <= sn.samples_used

    def test_bsrbk_never_exceeds_bsr_budget(self, paper_graph):
        bsr = BoundedSampleReverseDetector(seed=0).detect(paper_graph, 2)
        bsrbk = BottomKDetector(bk=4, seed=0).detect(paper_graph, 2)
        assert bsrbk.samples_used <= bsr.samples_used

    def test_bsrbk_small_bk_stops_early(self, paper_graph):
        result = BottomKDetector(bk=2, epsilon=0.3, seed=0).detect(
            paper_graph, 2
        )
        assert result.details["stopped_early"] or result.samples_used > 0

    def test_bsrbk_rejects_bad_bk(self):
        with pytest.raises(SamplingError):
            BottomKDetector(bk=1)

    def test_detection_result_details_carry_configuration(self, paper_graph):
        result = BottomKDetector(bk=8, seed=0).detect(paper_graph, 2)
        assert result.details["bk"] == 8
        assert "Tl" in result.details
        assert "Tu" in result.details


class TestRegistry:
    def test_all_methods_listed(self):
        assert ALL_METHODS == ("N", "SN", "SR", "BSR", "BSRBK")

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_make_detector_round_trip(self, name, paper_graph):
        detector = make_detector(name, seed=0, samples=200)
        result = detector.detect(paper_graph, 1)
        assert result.method == name

    def test_unknown_method_rejected(self):
        with pytest.raises(ExperimentError):
            make_detector("nope")
        with pytest.raises(ExperimentError):
            detector_class("nope")

    def test_irrelevant_kwargs_filtered(self):
        detector = make_detector("N", samples=100, bk=4, epsilon=0.2)
        assert isinstance(detector, NaiveDetector)

    def test_strict_mode_rejects_unknown_kwargs(self):
        with pytest.raises(ExperimentError):
            make_detector("N", strict=True, bk=4)
