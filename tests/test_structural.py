"""Tests for the structural baselines (betweenness, PageRank, k-core, InfMax)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.structural import (
    STRUCTURAL_SCORERS,
    betweenness_scores,
    influence_scores,
    kcore_scores,
    pagerank_scores,
)
from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph


def star_graph(points=6):
    """Centre broadcasts to all points (contagion hub)."""
    graph = UncertainGraph()
    graph.add_node("centre", 0.2)
    for i in range(points):
        graph.add_node(f"p{i}", 0.2)
        graph.add_edge("centre", f"p{i}", 0.8)
    return graph


def path_graph(n=5):
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, 0.1)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, 0.9)
    return graph


class TestBetweenness:
    def test_path_midpoint_highest(self):
        graph = path_graph(5)
        scores = betweenness_scores(graph, sample_sources=None)
        assert int(np.argmax(scores)) == 2

    def test_star_points_zero(self):
        scores = betweenness_scores(star_graph(), sample_sources=None)
        assert np.allclose(scores[1:], 0.0)

    def test_sampled_close_to_exact(self):
        graph = path_graph(9)
        exact = betweenness_scores(graph, sample_sources=None)
        sampled = betweenness_scores(graph, sample_sources=9, seed=0)
        assert int(np.argmax(sampled)) == int(np.argmax(exact))


class TestPageRank:
    def test_sink_accumulates_rank(self):
        graph = path_graph(4)
        scores = pagerank_scores(graph)
        assert int(np.argmax(scores)) == 3

    def test_scores_sum_to_one(self):
        scores = pagerank_scores(star_graph())
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)


class TestKCore:
    def test_clique_beats_pendant(self):
        graph = UncertainGraph()
        for i in range(5):
            graph.add_node(i, 0.1)
        # Triangle 0-1-2 plus pendant path 2->3->4.
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 0, 0.5)
        graph.add_edge(2, 3, 0.5)
        graph.add_edge(3, 4, 0.5)
        scores = kcore_scores(graph)
        assert scores[0] == scores[1] == scores[2] == 2.0
        assert scores[4] == 1.0


class TestInfluence:
    def test_star_centre_most_influential(self):
        scores = influence_scores(star_graph(), num_rr_sets=3000, seed=0)
        assert int(np.argmax(scores)) == 0

    def test_chain_head_most_influential(self):
        graph = path_graph(4)
        scores = influence_scores(graph, num_rr_sets=3000, seed=1)
        assert int(np.argmax(scores)) == 0

    def test_scores_bounded_by_membership_rate(self):
        scores = influence_scores(path_graph(3), num_rr_sets=500, seed=2)
        assert np.all(scores >= 0)
        assert np.all(scores <= 1)

    def test_zero_probability_edges_isolate(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.5)
        graph.add_node("b", 0.5)
        graph.add_edge("a", "b", 0.0)
        scores = influence_scores(graph, num_rr_sets=1000, seed=3)
        # Each node appears only in its own RR sets: rate ≈ 1/n each.
        assert scores[0] == pytest.approx(0.5, abs=0.1)
        assert scores[1] == pytest.approx(0.5, abs=0.1)

    def test_invalid_rr_count(self):
        with pytest.raises(ReproError):
            influence_scores(path_graph(3), num_rr_sets=0)

    def test_matches_expected_influence_on_deterministic_chain(self):
        """With certain edges, influence(v) = #descendants + 1 (scaled)."""
        graph = path_graph(4)  # edges at 0.9 -> near-deterministic
        scores = influence_scores(graph, num_rr_sets=8000, seed=4)
        # node 0 reaches everything: appears in ~ (1 + .9 + .81 + .729)/4
        expected = (1 + 0.9 + 0.81 + 0.729) / 4
        assert scores[0] == pytest.approx(expected, abs=0.05)


class TestScorerRegistry:
    def test_labels_match_table3(self):
        assert set(STRUCTURAL_SCORERS) == {
            "Betweenness",
            "PageRank",
            "K-core",
            "InfMax",
        }

    @pytest.mark.parametrize("name", sorted(STRUCTURAL_SCORERS))
    def test_all_scorers_return_full_vectors(self, name):
        graph = star_graph()
        scores = STRUCTURAL_SCORERS[name](graph, seed=0)
        assert scores.shape == (graph.num_nodes,)
        assert np.all(np.isfinite(scores))
