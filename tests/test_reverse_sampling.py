"""Tests for repro.sampling.reverse — Algorithm 5."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SamplingError
from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph
from repro.sampling.forward import ForwardSampler
from repro.sampling.reverse import ReverseSampler, ReverseWorld
from repro.sampling.rng import make_rng


class TestReverseWorld:
    def test_source_node_depends_only_on_self(self):
        graph = UncertainGraph()
        graph.add_node("src", 1.0)
        graph.add_node("dst", 0.0)
        graph.add_edge("src", "dst", 0.0)
        world = ReverseWorld(graph, make_rng(0))
        assert world.candidate_defaults(graph.index("src"))

    def test_certain_contagion_chain(self):
        graph = UncertainGraph()
        graph.add_node("a", 1.0)
        graph.add_node("b", 0.0)
        graph.add_node("c", 0.0)
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("b", "c", 1.0)
        world = ReverseWorld(graph, make_rng(0))
        assert world.candidate_defaults(graph.index("c"))

    def test_no_risk_no_default(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.0)
        graph.add_node("b", 0.0)
        graph.add_edge("a", "b", 1.0)
        world = ReverseWorld(graph, make_rng(0))
        assert not world.candidate_defaults(graph.index("b"))

    def test_memoisation_is_consistent_within_world(self, paper_graph):
        """Asking the same candidate twice gives the same answer."""
        for seed in range(20):
            world = ReverseWorld(paper_graph, make_rng(seed))
            e = paper_graph.index("E")
            first = world.candidate_defaults(e)
            second = world.candidate_defaults(e)
            assert first == second

    def test_hv_memo_propagates_to_later_candidates(self):
        """Once a node is known to default, dependants see it immediately."""
        graph = UncertainGraph()
        graph.add_node("root", 1.0)
        graph.add_node("mid", 0.0)
        graph.add_node("leaf", 0.0)
        graph.add_edge("root", "mid", 1.0)
        graph.add_edge("mid", "leaf", 1.0)
        world = ReverseWorld(graph, make_rng(0))
        assert world.candidate_defaults(graph.index("mid"))
        nodes_before = world.nodes_touched
        assert world.candidate_defaults(graph.index("leaf"))
        # leaf's search draws for leaf itself, then must stop at mid
        # (hv=1) without re-drawing mid or root.
        assert world.nodes_touched == nodes_before + 1

    def test_world_draws_each_choice_once(self, paper_graph):
        world = ReverseWorld(paper_graph, make_rng(1))
        for label in "EDCBA":
            world.candidate_defaults(paper_graph.index(label))
        assert world.nodes_touched <= paper_graph.num_nodes
        assert world.edges_touched <= paper_graph.num_edges


class TestReverseSampler:
    def test_validates_candidates(self, paper_graph):
        with pytest.raises(SamplingError):
            ReverseSampler(paper_graph, [])
        with pytest.raises(SamplingError):
            ReverseSampler(paper_graph, [99])
        with pytest.raises(SamplingError):
            ReverseSampler(paper_graph, [-1])

    def test_run_shape(self, paper_graph):
        candidates = [paper_graph.index("E"), paper_graph.index("D")]
        estimate = ReverseSampler(paper_graph, candidates, seed=0).run(100)
        assert estimate.counts.shape == (2,)
        assert estimate.samples == 100

    def test_samples_must_be_positive(self, paper_graph):
        sampler = ReverseSampler(paper_graph, [0], seed=0)
        with pytest.raises(SamplingError):
            sampler.run(0)

    def test_matches_exact_probabilities(self, paper_graph):
        exact = exact_default_probabilities(paper_graph)
        candidates = np.arange(paper_graph.num_nodes)
        t = 6000
        estimate = ReverseSampler(
            paper_graph, candidates, seed=3
        ).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)

    def test_matches_exact_on_random_graph(self, small_random_graph):
        exact = exact_default_probabilities(small_random_graph)
        candidates = np.arange(small_random_graph.num_nodes)
        t = 6000
        estimate = ReverseSampler(
            small_random_graph, candidates, seed=5
        ).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)

    def test_agrees_with_forward_sampler(self, small_random_graph):
        """The two sampling frameworks estimate the same quantities."""
        t = 6000
        forward = ForwardSampler(
            small_random_graph, seed=21
        ).estimate_probabilities(t)
        reverse = ReverseSampler(
            small_random_graph, np.arange(small_random_graph.num_nodes), seed=22
        ).estimate_probabilities(t)
        sigma = np.sqrt(2 * 0.25 / t)
        assert np.all(np.abs(forward - reverse) < 5 * sigma)

    def test_iter_samples_streaming(self, paper_graph):
        sampler = ReverseSampler(paper_graph, [paper_graph.index("E")], seed=0)
        outcomes = list(sampler.iter_samples(50))
        assert len(outcomes) == 50
        assert all(o.shape == (1,) for o in outcomes)
        assert all(o.dtype == np.bool_ for o in outcomes)

    def test_deterministic_with_seed(self, paper_graph):
        candidates = [paper_graph.index("E")]
        a = ReverseSampler(paper_graph, candidates, seed=8).run(300)
        b = ReverseSampler(paper_graph, candidates, seed=8).run(300)
        assert np.array_equal(a.counts, b.counts)

    def test_touch_counters_accumulate(self, paper_graph):
        sampler = ReverseSampler(
            paper_graph, np.arange(paper_graph.num_nodes), seed=0
        )
        sampler.run(10)
        assert sampler.nodes_touched > 0
