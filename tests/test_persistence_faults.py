"""Crash tests: SIGKILL mid-stream, dead shard workers, CLI shutdown.

The central claim of the durability layer, pinned here end to end: a
process SIGKILLed at an *arbitrary* point of its update stream recovers
from snapshot + WAL replay into the bit-identical state — answers and
work counters — an uninterrupted run reaches.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.graph import UncertainGraph
from repro.persistence.faults import (
    CrashHarness,
    count_durable_batches,
    stream_durably,
)
from repro.serving.service import RiskService
from repro.streaming.events import SelfRiskUpdate

DEFAULTS = {"seed": 42, "epsilon": 0.5}
pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash harness needs the fork start method",
)


def make_graph(n=20, seed=7, density=0.15):
    rng = np.random.default_rng(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, float(rng.uniform(0.05, 0.6)))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < density:
                graph.add_edge(src, dst, float(rng.uniform(0.1, 0.9)))
    return graph


def make_workload(graph, tenants, rounds, events_per_batch=2, seed=3):
    rng = np.random.default_rng(seed)
    return {
        tenant_id: [
            [
                SelfRiskUpdate(
                    int(rng.integers(0, graph.num_nodes)),
                    float(rng.uniform(0, 1)),
                )
                for _ in range(events_per_batch)
            ]
            for _ in range(rounds)
        ]
        for tenant_id in tenants
    }


def resume_and_answer(graph, workload, k, wal_dir):
    """Recover a killed run, finish its remaining workload, answer.

    The recovered monitors' ``refreshes`` counter equals the number of
    batches each tenant durably applied (including the WAL replay), so
    the remaining workload is exactly each tenant's batch-list suffix.
    """
    service = RiskService(
        graph, mode="serial", wal_dir=wal_dir, monitor_defaults=DEFAULTS
    )
    try:
        assert set(service.tenants()) == set(workload)
        stats = service.snapshot().shards[0]["monitor_stats"]
        for tenant_id, batches in workload.items():
            done = stats[tenant_id]["refreshes"]
            for batch in batches[done:]:
                for event in batch:
                    service.submit_update(tenant_id, event)
                service.flush()
        return {
            tenant_id: service.query_topk(tenant_id)
            for tenant_id in workload
        }
    finally:
        service.close()


class TestSigkillRecovery:
    @pytest.mark.parametrize("kill_after_batches", [2, 5, 9])
    def test_recovered_run_is_bit_identical(self, tmp_path, kill_after_batches):
        graph = make_graph()
        workload = make_workload(graph, ["t1", "t2"], rounds=6)
        wal_dir = tmp_path / "wal"

        harness = CrashHarness(
            lambda: stream_durably(
                graph, workload, 3, wal_dir,
                monitor_defaults=DEFAULTS, pause=0.01,
            )
        ).start()
        killed = harness.kill_when(
            lambda: count_durable_batches(wal_dir) >= kill_after_batches
        )
        assert killed, "workload finished before the kill landed"
        durable = count_durable_batches(wal_dir)
        assert durable >= kill_after_batches

        recovered = resume_and_answer(graph, workload, 3, wal_dir)
        reference = stream_durably(
            graph, workload, 3, tmp_path / "reference",
            monitor_defaults=DEFAULTS,
        )
        for tenant_id in workload:
            assert recovered[tenant_id].same_answer(reference[tenant_id])

    def test_kill_between_snapshot_and_more_batches(self, tmp_path):
        graph = make_graph()
        workload = make_workload(graph, ["t1", "t2"], rounds=8)
        wal_dir = tmp_path / "wal"

        harness = CrashHarness(
            lambda: stream_durably(
                graph, workload, 3, wal_dir,
                monitor_defaults=DEFAULTS, pause=0.01, snapshot_every=2,
            )
        ).start()
        killed = harness.kill_when(
            lambda: count_durable_batches(wal_dir) >= 6
        )
        assert killed, "workload finished before the kill landed"

        recovered = resume_and_answer(graph, workload, 3, wal_dir)
        reference = stream_durably(
            graph, workload, 3, tmp_path / "reference",
            monitor_defaults=DEFAULTS,
        )
        for tenant_id in workload:
            assert recovered[tenant_id].same_answer(reference[tenant_id])


class TestDeadShardWorker:
    def test_sigkilled_fork_worker_heals_bit_identically(self, tmp_path):
        graph = make_graph()
        events = [
            SelfRiskUpdate(int(i % graph.num_nodes), float((i % 7) / 7.0))
            for i in range(24)
        ]
        service = RiskService(
            graph, mode="fork", shards=2,
            wal_dir=tmp_path / "wal", monitor_defaults=DEFAULTS,
        )
        try:
            service.register_tenant("t1", 3)
            service.register_tenant("t2", 4)
            for event in events[:12]:
                service.submit_update("t1", event)
                service.submit_update("t2", event)
            service.flush()
            service.snapshot_to_disk()

            victim = service.pool.shard_index("t1")
            os.kill(service.pool.worker_pids()[victim], signal.SIGKILL)
            time.sleep(0.2)

            for event in events[12:]:
                service.submit_update("t1", event)
                service.submit_update("t2", event)
            service.flush()  # heals transparently: respawn + restore
            answers = {t: service.query_topk(t) for t in ("t1", "t2")}
            assert service.pool.shard_alive(victim)
        finally:
            service.close()

        reference = RiskService(
            graph, mode="serial", monitor_defaults=DEFAULTS
        )
        try:
            reference.register_tenant("t1", 3)
            reference.register_tenant("t2", 4)
            for event in events[:12]:
                reference.submit_update("t1", event)
                reference.submit_update("t2", event)
            reference.flush()
            for event in events[12:]:
                reference.submit_update("t1", event)
                reference.submit_update("t2", event)
            reference.flush()
            for tenant_id in ("t1", "t2"):
                assert answers[tenant_id].same_answer(
                    reference.query_topk(tenant_id)
                )
        finally:
            reference.close()

    def test_respawn_without_wal_propagates(self):
        graph = make_graph()
        service = RiskService(graph, mode="fork", shards=1)
        try:
            service.register_tenant("t1", 3)
            os.kill(service.pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.2)
            service.submit_update("t1", SelfRiskUpdate(0, 0.5))
            from concurrent.futures import BrokenExecutor

            with pytest.raises(BrokenExecutor):
                service.flush()
        finally:
            service._pool.shutdown()
            service._closed = True


class TestCliGracefulShutdown:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        wal_dir = tmp_path / "wal"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dataset", "guarantee", "--scale", "0.02",
                "--tenants", "2", "--k", "3", "--events", "1000000",
                "--mode", "serial", "--flush-interval", "0.01",
                "--wal-dir", str(wal_dir), "--fsync", "never",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).parent.parent,
        )
        # Let it register tenants and start streaming, then interrupt.
        deadline = time.monotonic() + 30
        while count_durable_batches(wal_dir) < 2:
            assert process.poll() is None, process.communicate()[1]
            assert time.monotonic() < deadline, "serve never made progress"
            time.sleep(0.05)
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr
        assert "serving top-3" in stdout  # reporting path still ran
        # The durable state it left behind is recoverable.
        assert count_durable_batches(wal_dir) >= 2


class TestDiskFullAppend:
    """ENOSPC on ``WriteAheadLog.append``: shed, stay clean, resume."""

    def make_wal(self, tmp_path, plan):
        from repro.persistence.faults import FaultyFile
        from repro.persistence.wal import WriteAheadLog

        return WriteAheadLog(
            tmp_path / "wal",
            fsync="always",
            io_wrapper=lambda raw: FaultyFile(raw, plan),
        )

    def test_enospc_keeps_segment_clean_and_resumes(self, tmp_path):
        import errno

        from repro.persistence.faults import WriteFaultPlan
        from repro.persistence.wal import WriteAheadLog

        plan = WriteFaultPlan(
            fail_after_bytes=300,
            partial=True,
            error_errno=errno.ENOSPC,
            message="No space left on device",
        )
        wal = self.make_wal(tmp_path, plan)
        events = [SelfRiskUpdate(1, 0.25), SelfRiskUpdate(2, 0.75)]
        durable = 0
        with pytest.raises(OSError) as failure:
            for _ in range(40):
                wal.append_events("t1", events)
                durable += 1
        assert failure.value.errno == errno.ENOSPC
        assert durable > 0  # the fault landed mid-stream, not at open
        # The torn tail was repaired in place: on-disk bytes hold
        # exactly the batches that were acked, nothing half-written.
        assert count_durable_batches(tmp_path / "wal") == durable

        # The disk is still full: further appends shed with ENOSPC,
        # and each failure leaves the segment no worse.
        for _ in range(3):
            with pytest.raises(OSError):
                wal.append_events("t1", events)
        assert count_durable_batches(tmp_path / "wal") == durable

        # Space frees: the very next append on the same handle lands.
        plan.clear()
        wal.append_events("t1", events)
        wal.append_events("t1", events)
        assert count_durable_batches(tmp_path / "wal") == durable + 2
        wal.close()

        # And a restart sees one continuous, gap-free batch sequence.
        reopened = WriteAheadLog(tmp_path / "wal", fsync="always")
        batches = [
            batch for batch in reopened.read_batches()
            if batch.tenant_id == "t1"
        ]
        assert len(batches) == durable + 2
        seqs = [batch.seq for batch in batches]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        reopened.close()

    def test_whole_write_failure_is_also_clean(self, tmp_path):
        import errno

        from repro.persistence.faults import WriteFaultPlan

        plan = WriteFaultPlan(
            fail_after_bytes=250,
            partial=False,  # the kernel rejected the write outright
            error_errno=errno.ENOSPC,
            sticky=False,
        )
        wal = self.make_wal(tmp_path, plan)
        events = [SelfRiskUpdate(3, 0.5)]
        durable = 0
        with pytest.raises(OSError):
            for _ in range(40):
                wal.append_events("t1", events)
                durable += 1
        assert count_durable_batches(tmp_path / "wal") == durable
        plan.clear()
        wal.append_events("t1", events)
        assert count_durable_batches(tmp_path / "wal") == durable + 1
        wal.close()
