"""Property-based round-trip tests for the serialisation formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.graph import UncertainGraph
from repro.io.dot import to_dot
from repro.io.edgelist import dumps_edgelist, loads_edgelist
from repro.io.jsonio import graph_from_dict, graph_to_dict


@st.composite
def labelled_graphs(draw):
    """Random graphs with string labels (the serialisable kind)."""
    n = draw(st.integers(1, 10))
    labels = [f"node{i}" for i in range(n)]
    graph = UncertainGraph()
    for label in labels:
        graph.add_node(label, draw(st.floats(0.0, 1.0, allow_nan=False)))
    pairs = [(a, b) for a in labels for b in labels if a != b]
    count = draw(st.integers(0, min(len(pairs), 15)))
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=count, max_size=count,
                 unique=True)
    ) if pairs else []
    for src, dst in chosen:
        graph.add_edge(src, dst, draw(st.floats(0.0, 1.0, allow_nan=False)))
    return graph


def graphs_equal(a: UncertainGraph, b: UncertainGraph) -> bool:
    if a.labels() != b.labels():
        return False
    if not np.allclose(a.self_risk_array, b.self_risk_array, atol=1e-9):
        return False
    edges_a = sorted((str(s), str(d), round(p, 9)) for s, d, p in a.edges())
    edges_b = sorted((str(s), str(d), round(p, 9)) for s, d, p in b.edges())
    return edges_a == edges_b


class TestRoundTrips:
    @given(labelled_graphs())
    def test_edgelist_round_trip(self, graph):
        assert graphs_equal(graph, loads_edgelist(dumps_edgelist(graph)))

    @given(labelled_graphs())
    def test_json_round_trip(self, graph):
        assert graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))

    @given(labelled_graphs())
    def test_dot_renders_every_node_and_edge(self, graph):
        dot = to_dot(graph)
        for label in graph.labels():
            assert f'"{label}"' in dot
        assert dot.count("->") == graph.num_edges

    @given(labelled_graphs())
    def test_round_trip_preserves_detection(self, graph):
        """Serialisation must not change what the detectors see."""
        from repro.algorithms.naive import NaiveDetector

        replayed = graph_from_dict(graph_to_dict(graph))
        k = min(2, graph.num_nodes)
        original = NaiveDetector(samples=50, seed=1).detect(graph, k)
        restored = NaiveDetector(samples=50, seed=1).detect(replayed, k)
        assert original.nodes == restored.nodes
