"""Tests for the streaming subsystem: indexed engine, incremental
bounds, and the TopKMonitor equivalence oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.bounds.incremental import IncrementalBoundPair, eq1_values_at
from repro.bounds.iterative import bound_pair
from repro.core.eq1 import apply_eq1
from repro.core.errors import GraphError, SamplingError
from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.datasets.temporal import build_guarantee_panel
from repro.sampling.indexed import (
    IndexedReverseSampler,
    derive_stream_key,
    hashed_uniforms,
)
from repro.sampling.reverse import WorldArena, reverse_engine
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
)
from repro.streaming.monitor import TopKMonitor, ancestor_closure
from repro.streaming.replay import panel_update_stream, random_patch_stream


def powerlaw_graph(n: int, seed: int, beta_probs: bool = True) -> UncertainGraph:
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, 3 * n, seed=rng)
    if beta_probs:
        probs = np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95)
    else:
        probs = rng.random(src.size)
    return UncertainGraph.from_arrays(rng.random(n) * 0.3, src, dst, probs)


class TestHashedUniforms:
    def test_range_and_determinism(self):
        key = derive_stream_key(3)
        u = hashed_uniforms(key, np.arange(10_000))
        assert float(u.min()) >= 0.0
        assert float(u.max()) < 1.0
        assert np.array_equal(u, hashed_uniforms(key, np.arange(10_000)))

    def test_roughly_uniform(self):
        u = hashed_uniforms(derive_stream_key(0), np.arange(50_000))
        histogram, _ = np.histogram(u, bins=10, range=(0.0, 1.0))
        assert histogram.min() > 4500 and histogram.max() < 5500

    def test_keys_decorrelate_streams(self):
        counters = np.arange(1000)
        a = hashed_uniforms(derive_stream_key(1), counters)
        b = hashed_uniforms(derive_stream_key(2), counters)
        assert not np.array_equal(a, b)

    def test_int_seed_key_is_stable(self):
        assert derive_stream_key(5) == derive_stream_key(5)
        assert derive_stream_key(5) != derive_stream_key(6)


class TestIndexedReverseSampler:
    def test_registered_as_engine(self):
        assert reverse_engine("indexed") is IndexedReverseSampler
        with pytest.raises(SamplingError):
            reverse_engine("nope")

    def test_matches_reference_world_per_world(self):
        graph = powerlaw_graph(80, seed=4)
        candidates = np.arange(0, 80, 3)
        sampler = IndexedReverseSampler(graph, candidates, seed=11)
        arena = WorldArena(graph)
        for world in range(25):
            node_u = sampler.node_uniforms(world, np.arange(graph.num_nodes))
            edge_u = sampler.edge_uniforms(world, np.arange(graph.num_edges))
            reference = arena.new_world(
                node_uniforms=node_u, edge_uniforms=edge_u
            )
            expected = np.fromiter(
                (reference.candidate_defaults(int(v)) for v in candidates),
                dtype=bool,
                count=candidates.size,
            )
            got = sampler.outcomes_for_worlds([world]).outcomes[0]
            assert np.array_equal(got, expected)

    def test_outcomes_independent_of_world_batch(self):
        graph = powerlaw_graph(120, seed=5)
        candidates = np.arange(30)
        small = IndexedReverseSampler(
            graph, candidates, seed=3, world_batch=2
        ).run(40)
        large = IndexedReverseSampler(
            graph, candidates, seed=3, world_batch=64
        ).run(40)
        assert np.array_equal(small.counts, large.counts)

    def test_random_access_equals_sequential(self):
        graph = powerlaw_graph(100, seed=6)
        candidates = np.arange(20)
        sampler = IndexedReverseSampler(graph, candidates, seed=9)
        sequential = sampler.run(30)
        fresh = IndexedReverseSampler(graph, candidates, seed=9)
        block = fresh.outcomes_for_worlds(np.arange(30))
        assert np.array_equal(block.outcomes.sum(axis=0), sequential.counts)
        # A shuffled world order evaluates to the same outcomes per world.
        shuffled = np.random.default_rng(0).permutation(30)
        again = fresh.outcomes_for_worlds(shuffled)
        assert np.array_equal(
            again.outcomes[np.argsort(shuffled)], block.outcomes
        )

    def test_iter_samples_matches_run_and_counters(self):
        graph = powerlaw_graph(90, seed=7)
        candidates = np.arange(15)
        runner = IndexedReverseSampler(graph, candidates, seed=2)
        estimate = runner.run(25)
        iterator = IndexedReverseSampler(graph, candidates, seed=2)
        counts = np.zeros(candidates.size, dtype=np.int64)
        for outcome in iterator.iter_samples(25):
            counts += outcome
        assert np.array_equal(counts, estimate.counts)
        assert iterator.nodes_touched == runner.nodes_touched
        assert iterator.edges_touched == runner.edges_touched

    def test_sequential_runs_use_fresh_worlds(self):
        graph = powerlaw_graph(60, seed=8)
        sampler = IndexedReverseSampler(graph, np.arange(10), seed=1)
        first = sampler.run(10)
        second = sampler.run(10)
        reference = IndexedReverseSampler(graph, np.arange(10), seed=1)
        block = reference.outcomes_for_worlds(np.arange(20))
        assert np.array_equal(
            first.counts + second.counts, block.outcomes.sum(axis=0)
        )

    def test_touched_masks_cover_every_outcome_dependency(self):
        graph = powerlaw_graph(70, seed=9)
        sampler = IndexedReverseSampler(graph, np.arange(12), seed=4)
        block = sampler.outcomes_for_worlds(
            np.arange(15), collect_touched=True
        )
        # Candidates are always drawn, hence always touched.
        assert block.touched_nodes[:, :12].all()
        # Draw counters must agree with the touched masks.
        assert np.array_equal(
            block.touched_nodes.sum(axis=1), block.node_draws
        )
        assert np.array_equal(
            block.touched_edges.sum(axis=1), block.edge_draws
        )

    def test_validation(self):
        graph = powerlaw_graph(30, seed=10)
        sampler = IndexedReverseSampler(graph, np.arange(5), seed=0)
        with pytest.raises(SamplingError):
            sampler.run(0)
        with pytest.raises(SamplingError):
            sampler.outcomes_for_worlds(np.empty(0, dtype=np.int64))
        with pytest.raises(SamplingError):
            sampler.outcomes_for_worlds([-1])
        with pytest.raises(SamplingError):
            IndexedReverseSampler(graph, np.empty(0, dtype=np.int64))

    def test_usable_by_bsr_detector(self):
        graph = powerlaw_graph(150, seed=11)
        result = BoundedSampleReverseDetector(seed=3, engine="indexed").detect(
            graph, 5
        )
        assert len(result.nodes) == 5
        again = BoundedSampleReverseDetector(seed=3, engine="indexed").detect(
            graph, 5
        )
        assert result.nodes == again.nodes and result.scores == again.scores


class TestEq1ValuesAt:
    def test_bit_identical_to_full_operator(self):
        graph = powerlaw_graph(200, seed=12)
        rng = np.random.default_rng(0)
        current = rng.random(graph.num_nodes)
        full = apply_eq1(graph, current)
        for _ in range(5):
            subset = np.unique(rng.integers(0, graph.num_nodes, size=37))
            assert np.array_equal(
                eq1_values_at(graph, current, subset), full[subset]
            )

    def test_isolated_nodes(self):
        graph = UncertainGraph([("a", 0.3), ("b", 0.7)], [])
        values = eq1_values_at(
            graph, np.zeros(2), np.arange(2, dtype=np.int64)
        )
        assert np.array_equal(values, apply_eq1(graph, np.zeros(2)))


class TestIncrementalBoundPair:
    @pytest.mark.parametrize("orders", [(2, 2), (1, 3), (3, 1), (4, 4)])
    def test_refresh_bit_identical_to_fresh(self, orders):
        lower_order, upper_order = orders
        graph = powerlaw_graph(150, seed=13)
        cache = IncrementalBoundPair(graph, lower_order, upper_order)
        rng = np.random.default_rng(1)
        for _ in range(15):
            if rng.random() < 0.5:
                index = int(rng.integers(graph.num_nodes))
                graph.set_self_risk(graph.label(index), float(rng.random()))
                delta = cache.refresh(
                    np.array([index]), np.empty(0, dtype=np.int64)
                )
            else:
                edge = int(rng.integers(graph.num_edges))
                src, dst, _ = graph.edge_array
                graph.set_edge_probability(
                    graph.label(int(src[edge])),
                    graph.label(int(dst[edge])),
                    float(rng.random()),
                )
                delta = cache.refresh(
                    np.empty(0, dtype=np.int64), np.array([int(dst[edge])])
                )
            assert delta is not None
            lower, upper = bound_pair(graph, lower_order, upper_order)
            assert np.array_equal(cache.lower, lower)
            assert np.array_equal(cache.upper, upper)

    def test_delta_reports_exact_changes(self):
        graph = powerlaw_graph(100, seed=14)
        cache = IncrementalBoundPair(graph, 2, 2)
        before_lower = cache.lower.copy()
        before_upper = cache.upper.copy()
        index = int(np.argmax(graph.out_csr().degrees))
        graph.set_self_risk(graph.label(index), 0.99)
        delta = cache.refresh(np.array([index]), np.empty(0, dtype=np.int64))
        changed_lower = np.flatnonzero(before_lower != cache.lower)
        changed_upper = np.flatnonzero(before_upper != cache.upper)
        assert np.array_equal(np.sort(delta.lower_changed), changed_lower)
        assert np.array_equal(np.sort(delta.upper_changed), changed_upper)
        assert delta.max_changed_value >= 0.99

    def test_no_op_refresh(self):
        graph = powerlaw_graph(50, seed=15)
        cache = IncrementalBoundPair(graph)
        delta = cache.refresh(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert delta is not None and delta.lower_changed.size == 0
        assert delta.max_changed_value == -np.inf

    def test_limit_aborts_then_rebuild_recovers(self):
        graph = powerlaw_graph(100, seed=16)
        cache = IncrementalBoundPair(graph)
        graph.set_all_self_risks(
            np.clip(graph.self_risk_array + 0.05, 0.0, 1.0)
        )
        assert (
            cache.refresh(
                np.arange(graph.num_nodes),
                np.empty(0, dtype=np.int64),
                limit=5,
            )
            is None
        )
        cache.rebuild()
        lower, upper = bound_pair(graph, 2, 2)
        assert np.array_equal(cache.lower, lower)
        assert np.array_equal(cache.upper, upper)

    def test_rejects_bad_orders(self):
        graph = powerlaw_graph(20, seed=17)
        with pytest.raises(SamplingError):
            IncrementalBoundPair(graph, lower_order=0)


def assert_equivalent(result, fresh):
    """The monitor's bit-identity contract against fresh detection.

    ``same_answer`` is the shared answer contract; the monitor
    additionally reproduces the engine's exact work telemetry.
    """
    assert result.same_answer(fresh)
    assert result.details["nodes_touched"] == fresh.details["nodes_touched"]
    assert result.details["edges_touched"] == fresh.details["edges_touched"]


class TestTopKMonitorOracle:
    @pytest.mark.parametrize("engine", ["indexed", "batched"])
    def test_random_patches_match_fresh_detection(self, engine):
        graph = powerlaw_graph(200, seed=18)
        monitor = TopKMonitor(graph, 6, seed=21, engine=engine)
        detector_args = dict(seed=21, engine=engine)
        assert_equivalent(
            monitor.top_k(),
            BoundedSampleReverseDetector(**detector_args).detect(graph, 6),
        )
        for event in random_patch_stream(graph, 25, seed=1, drift=0.1):
            monitor.apply([event])
            fresh = BoundedSampleReverseDetector(**detector_args).detect(
                graph, 6
            )
            assert_equivalent(monitor.top_k(), fresh)

    def test_large_patches_match_fresh_detection(self):
        graph = powerlaw_graph(150, seed=19)
        monitor = TopKMonitor(graph, 5, seed=8)
        for event in random_patch_stream(graph, 20, seed=2, drift=None):
            monitor.apply([event])
            fresh = BoundedSampleReverseDetector(
                seed=8, engine="indexed"
            ).detect(graph, 5)
            assert_equivalent(monitor.top_k(), fresh)

    @pytest.mark.slow
    def test_temporal_panel_replay_matches_fresh_detection(self):
        panel = build_guarantee_panel(num_nodes=250, num_edges=288, seed=6)
        graph = panel.graph
        monitor = TopKMonitor(graph, 8, seed=13)
        for year, events in panel.update_stream():
            monitor.apply(events)
            fresh = BoundedSampleReverseDetector(
                seed=13, engine="indexed"
            ).detect(graph, 8)
            assert_equivalent(monitor.top_k(), fresh)

    def test_bulk_updates_route_through_full_fallback(self):
        graph = powerlaw_graph(120, seed=20)
        monitor = TopKMonitor(graph, 4, seed=3)
        monitor.top_k()
        rng = np.random.default_rng(4)
        monitor.apply([BulkSelfRiskUpdate(values=rng.random(120) * 0.4)])
        result = monitor.top_k()
        assert monitor.last_report.mode == "full"
        assert monitor.last_report.reason == "dirty region above threshold"
        assert_equivalent(
            result,
            BoundedSampleReverseDetector(seed=3, engine="indexed").detect(
                graph, 4
            ),
        )
        _, _, probs = graph.edge_array
        monitor.apply(
            [BulkEdgeProbabilityUpdate(values=np.clip(probs + 0.2, 0, 1))]
        )
        assert_equivalent(
            monitor.top_k(),
            BoundedSampleReverseDetector(seed=3, engine="indexed").detect(
                graph, 4
            ),
        )

    def test_direct_topology_mutation_without_events_is_detected(self):
        """Regression: top_k() after a *direct* graph mutation (no event
        routed through the monitor) must not serve the stale cache."""
        graph = powerlaw_graph(80, seed=31)
        monitor = TopKMonitor(graph, 4, seed=2)
        monitor.top_k()
        graph.add_node("whale", 0.95)
        graph.add_edge("whale", graph.label(0), 0.9)
        assert monitor.pending_updates == 0  # nothing routed through us
        result = monitor.top_k()
        assert monitor.last_report.reason == "graph topology changed"
        assert_equivalent(
            result,
            BoundedSampleReverseDetector(seed=2, engine="indexed").detect(
                graph, 4
            ),
        )

    def test_structural_mutation_falls_back_to_full(self):
        graph = powerlaw_graph(80, seed=21)
        monitor = TopKMonitor(graph, 4, seed=5)
        monitor.top_k()
        graph.add_node("fresh", 0.6)
        graph.add_edge("fresh", graph.label(0), 0.7)
        monitor.set_self_risk("fresh", 0.65)
        result = monitor.top_k()
        assert monitor.last_report.mode == "full"
        assert monitor.last_report.reason == "graph topology changed"
        assert_equivalent(
            result,
            BoundedSampleReverseDetector(seed=5, engine="indexed").detect(
                graph, 4
            ),
        )


class TestTopKMonitorBehaviour:
    def test_clean_refresh_reuses_everything(self):
        graph = powerlaw_graph(100, seed=22)
        monitor = TopKMonitor(graph, 5, seed=0)
        first = monitor.top_k()
        report = monitor.refresh()
        assert report.mode == "clean"
        assert monitor.top_k() is first

    def test_reverted_patch_is_clean(self):
        graph = powerlaw_graph(100, seed=23)
        monitor = TopKMonitor(graph, 5, seed=0)
        monitor.top_k()
        label = graph.label(0)
        original = graph.self_risk(label)
        monitor.set_self_risk(label, 0.9)
        monitor.set_self_risk(label, original)
        assert monitor.pending_updates == 1
        report = monitor.refresh()
        assert report.mode == "clean"
        assert monitor.pending_updates == 0

    def test_unchanged_writes_do_not_dirty(self):
        graph = powerlaw_graph(60, seed=24)
        monitor = TopKMonitor(graph, 3, seed=0)
        label = graph.label(1)
        monitor.set_self_risk(label, graph.self_risk(label))
        src, dst, _ = graph.edge_array
        s, d = graph.label(int(src[0])), graph.label(int(dst[0]))
        monitor.set_edge_probability(s, d, graph.edge_probability(s, d))
        assert monitor.pending_updates == 0

    def test_apply_dispatch_and_unknown_event(self):
        graph = powerlaw_graph(60, seed=25)
        monitor = TopKMonitor(graph, 3, seed=0)
        src, dst, _ = graph.edge_array
        events = [
            SelfRiskUpdate(label=graph.label(2), value=0.42),
            EdgeProbabilityUpdate(
                src=graph.label(int(src[0])),
                dst=graph.label(int(dst[0])),
                value=0.5,
            ),
        ]
        assert monitor.apply(events) == 2
        assert graph.self_risk(graph.label(2)) == 0.42
        with pytest.raises(GraphError):
            monitor.apply(["not-an-event"])

    def test_telemetry_counts_modes(self):
        graph = powerlaw_graph(150, seed=26)
        monitor = TopKMonitor(graph, 5, seed=7)
        monitor.top_k()
        for event in random_patch_stream(graph, 10, seed=3, drift=0.05):
            monitor.apply([event])
            monitor.top_k()
        stats = monitor.stats
        assert stats["refreshes"] == 11
        assert stats["full"] >= 1
        assert stats["full"] + stats["incremental"] + stats["clean"] == 11

    def test_validates_parameters(self):
        graph = powerlaw_graph(30, seed=27)
        with pytest.raises(GraphError):
            TopKMonitor(graph, 0)
        with pytest.raises(GraphError):
            TopKMonitor(graph, 3, full_rebuild_fraction=0.0)
        with pytest.raises(SamplingError):
            TopKMonitor(graph, 3, engine="bogus")

    def test_ancestor_closure(self):
        graph = UncertainGraph(
            [(name, 0.1) for name in "abcd"],
            [("a", "b", 0.5), ("b", "c", 0.5)],
        )
        mask = ancestor_closure(graph, np.array([graph.index("c")]))
        assert mask[graph.index("a")] and mask[graph.index("b")]
        assert mask[graph.index("c")] and not mask[graph.index("d")]

    def test_world_state_budget_zero_still_exact(self):
        graph = powerlaw_graph(120, seed=28)
        monitor = TopKMonitor(graph, 4, seed=9, world_state_budget=0)
        for event in random_patch_stream(graph, 8, seed=5, drift=0.1):
            monitor.apply([event])
            fresh = BoundedSampleReverseDetector(
                seed=9, engine="indexed"
            ).detect(graph, 4)
            assert_equivalent(monitor.top_k(), fresh)


class TestReplayStreams:
    def test_panel_update_stream_years(self):
        panel = build_guarantee_panel(num_nodes=120, num_edges=138, seed=1)
        batches = list(panel_update_stream(panel))
        assert [year for year, _ in batches] == [2012, 2014, 2015, 2016]
        for year, events in batches:
            assert len(events) == 1
            assert isinstance(events[0], BulkSelfRiskUpdate)
            assert np.array_equal(
                events[0].values, panel.snapshots[year].self_risks
            )

    def test_panel_method_delegates(self):
        panel = build_guarantee_panel(num_nodes=60, num_edges=69, seed=2)
        years = [year for year, _ in panel.update_stream()]
        assert years == [2012, 2014, 2015, 2016]

    def test_random_patch_stream_is_reproducible(self):
        graph = powerlaw_graph(50, seed=29)
        first = list(random_patch_stream(graph, 10, seed=3))
        second = list(random_patch_stream(graph, 10, seed=3))
        assert first == second
        assert len(first) == 10

    def test_random_patch_stream_drift_stays_in_range(self):
        graph = powerlaw_graph(50, seed=30)
        for event in random_patch_stream(graph, 30, seed=4, drift=0.5):
            assert 0.0 <= event.value <= 1.0

    def test_node_only_graph_never_yields_edge_events(self):
        graph = UncertainGraph([(i, 0.2) for i in range(5)], [])
        events = list(random_patch_stream(graph, 10, seed=0))
        assert all(isinstance(event, SelfRiskUpdate) for event in events)


class TestCoalescedIngestion:
    """The queue's last-write-wins contract against the monitor.

    A coalesced bulk flush must be bit-identical to serial application
    of the same events — the guarantee the serving layer's ingestion
    queue leans on — and the refresh must not depend on the order
    events were ingested in.
    """

    def _stream_with_repeats(self, graph, count, seed):
        events = []
        for event in random_patch_stream(graph, count, seed=seed, drift=0.2):
            events.append(event)
        # Re-patch a prefix of the touched entities so coalescing has
        # genuine same-entity collisions to collapse.
        rng = np.random.default_rng(seed + 1)
        for event in list(events[: count // 2]):
            if isinstance(event, SelfRiskUpdate):
                events.append(
                    SelfRiskUpdate(event.label, float(rng.random() * 0.5))
                )
            else:
                events.append(
                    EdgeProbabilityUpdate(
                        event.src, event.dst, float(rng.random())
                    )
                )
        return events

    def test_coalesced_flush_matches_serial_application(self):
        from repro.serving.coalesce import coalesce_events

        base = powerlaw_graph(300, seed=31)
        events = self._stream_with_repeats(base.copy(), 16, seed=8)

        serial_graph = base.copy()
        serial = TopKMonitor(serial_graph, 5, seed=2, engine="indexed")
        serial.top_k()
        for event in events:
            serial.apply([event])
        serial_result = serial.top_k()

        coalesced_graph = base.copy()
        coalesced = TopKMonitor(coalesced_graph, 5, seed=2, engine="indexed")
        coalesced.top_k()
        batch = coalesce_events(events)
        assert len(batch) < len(events)
        coalesced.apply(batch)
        report = coalesced.refresh()
        coalesced_result = coalesced.top_k()

        # Identical final graph state...
        assert np.array_equal(
            serial_graph.self_risk_array, coalesced_graph.self_risk_array
        )
        assert np.array_equal(
            serial_graph.edge_array[2], coalesced_graph.edge_array[2]
        )
        # ...identical answers, bit for bit...
        assert_equivalent(coalesced_result, serial_result)
        # ...and both equal to fresh detection on the patched graph.
        fresh = BoundedSampleReverseDetector(seed=2, engine="indexed").detect(
            coalesced_graph, 5
        )
        assert_equivalent(coalesced_result, fresh)
        assert report.dirty_nodes + report.dirty_edges <= len(batch)

    def test_refresh_is_ingestion_order_deterministic(self):
        from repro.serving.coalesce import event_key

        base = powerlaw_graph(300, seed=32)
        # Keep only the first write per entity: absolute-value patches
        # to DISTINCT entities commute, so forward and reversed
        # ingestion provably leave the same graph — the refresh must
        # then be bit-identical, unconditionally.
        events, seen = [], set()
        for event in random_patch_stream(
            base.copy(), 20, seed=9, drift=None
        ):
            key = event_key(event)
            if key not in seen:
                seen.add(key)
                events.append(event)
        assert len(events) >= 10

        def run(ordered_events):
            graph = base.copy()
            monitor = TopKMonitor(graph, 5, seed=4, engine="indexed")
            monitor.top_k()
            monitor.apply(ordered_events)
            report = monitor.refresh()
            return monitor.top_k(), report, graph

        forward_result, forward_report, forward_graph = run(events)
        reverse_result, reverse_report, reverse_graph = run(events[::-1])
        assert np.array_equal(
            forward_graph.self_risk_array, reverse_graph.self_risk_array
        )
        assert np.array_equal(
            forward_graph.edge_array[2], reverse_graph.edge_array[2]
        )
        assert_equivalent(reverse_result, forward_result)
        assert reverse_report.bounds_recomputed == (
            forward_report.bounds_recomputed
        )
        assert reverse_report.worlds_repaired == (
            forward_report.worlds_repaired
        )


def assert_bsrbk_equivalent(result, fresh):
    """BSRBK's monitor contract: the BSR contract plus the stop point."""
    assert result.method == fresh.method == "BSRBK"
    assert_equivalent(result, fresh)
    assert result.details["stopped_early"] == fresh.details["stopped_early"]
    assert result.details["bk"] == fresh.details["bk"]


class TestTopKMonitorBSRBK:
    """Incremental BSRBK: bit-identity to a fresh BottomKDetector at
    every step (the tentpole's acceptance criterion)."""

    @pytest.mark.parametrize("bk", [4, 8])
    def test_random_patches_match_fresh_bsrbk(self, bk):
        graph = powerlaw_graph(200, seed=18)
        monitor = TopKMonitor(graph, 6, seed=21, algorithm="bsrbk", bk=bk)
        fresh_args = dict(bk=bk, seed=21, engine="indexed")
        assert_bsrbk_equivalent(
            monitor.top_k(),
            BottomKDetector(**fresh_args).detect(graph, 6),
        )
        repaired = 0
        for event in random_patch_stream(graph, 20, seed=1, drift=0.1):
            monitor.apply([event])
            fresh = BottomKDetector(**fresh_args).detect(graph, 6)
            result = monitor.top_k()
            assert_bsrbk_equivalent(result, fresh)
            # The stopping threshold must track k_remaining every
            # refresh, not just on resamples (it can move while the
            # candidate set and budget stay equal).
            assert monitor._stop_after == monitor.k - result.k_verified
            repaired += monitor.last_report.worlds_repaired
        assert monitor.stats["incremental"] > 0

    def test_large_patches_match_fresh_bsrbk(self):
        graph = powerlaw_graph(150, seed=19)
        monitor = TopKMonitor(graph, 5, seed=8, algorithm="bsrbk")
        for event in random_patch_stream(graph, 12, seed=2, drift=None):
            monitor.apply([event])
            fresh = BottomKDetector(bk=16, seed=8, engine="indexed").detect(
                graph, 5
            )
            assert_bsrbk_equivalent(monitor.top_k(), fresh)

    def test_budget_zero_world_state_still_exact(self):
        graph = powerlaw_graph(120, seed=23)
        monitor = TopKMonitor(
            graph, 4, seed=9, algorithm="bsrbk", world_state_budget=0
        )
        for event in random_patch_stream(graph, 8, seed=5, drift=0.1):
            monitor.apply([event])
            fresh = BottomKDetector(bk=16, seed=9, engine="indexed").detect(
                graph, 4
            )
            assert_bsrbk_equivalent(monitor.top_k(), fresh)

    def test_bsrbk_requires_indexed_engine(self):
        graph = powerlaw_graph(30, seed=24)
        with pytest.raises(GraphError, match="indexed"):
            TopKMonitor(graph, 3, algorithm="bsrbk", engine="batched")
        with pytest.raises(GraphError):
            TopKMonitor(graph, 3, algorithm="nope")
        with pytest.raises(SamplingError):
            TopKMonitor(graph, 3, algorithm="bsrbk", bk=1)

    def test_fresh_bsrbk_indexed_is_chunk_schedule_independent(self):
        """The one-shot indexed BSRBK result must not depend on the
        sampler's world_batch (and hence the chunk schedule the early
        stop evaluates in) — worlds and hashes are order-independent."""
        graph = powerlaw_graph(100, seed=25)

        def pinned_engine(world_batch):
            class PinnedBatchSampler(IndexedReverseSampler):
                def __init__(self, graph, candidates, seed=None, **kwargs):
                    kwargs["world_batch"] = world_batch
                    super().__init__(graph, candidates, seed, **kwargs)

            return PinnedBatchSampler

        results = []
        for world_batch in (None, 3, 70, 100_000):
            detector = BottomKDetector(bk=8, seed=3, engine="indexed")
            if world_batch is not None:
                # chunk = max(64, world_batch) and grows geometrically,
                # so these pins produce genuinely different evaluation
                # schedules (including all-at-once).
                detector._engine = pinned_engine(world_batch)
            results.append(detector.detect(graph, 4))
        for other in results[1:]:
            assert results[0].same_answer(other)
            assert results[0].details == other.details


class TestCandidateColumnRepair:
    """Satellite: candidate/budget changes absorbed without resampling,
    with draw-count bookkeeping exactly equal to fresh detection."""

    def _drive(self, world_state):
        graph = powerlaw_graph(300, seed=18)
        monitor = TopKMonitor(graph, 6, seed=21, world_state=world_state)
        monitor.top_k()
        rng = np.random.default_rng(5)
        modes = {}
        for _ in range(25):
            node = graph.label(int(rng.integers(0, 300)))
            current = graph.self_risk(node)
            # Rising self-risks push bound values over Tl: the reduction
            # re-runs and the candidate set grows -> the columned path.
            monitor.set_self_risk(node, min(0.95, current + 0.15))
            result = monitor.top_k()
            fresh = BoundedSampleReverseDetector(
                seed=21, engine="indexed"
            ).detect(graph, 6)
            assert_equivalent(result, fresh)
            report = monitor.last_report
            modes[report.sampling] = modes.get(report.sampling, 0) + 1
        return monitor, modes

    @pytest.mark.parametrize("world_state", ["packed", "dense"])
    def test_growing_candidates_column_in_exactly(self, world_state):
        monitor, modes = self._drive(world_state)
        # The whole point: candidate growth must not resample.
        assert modes.get("columned", 0) > 0
        assert modes.get("resampled", 0) == 0
        assert monitor.stats["worlds_columned"] >= 0

    def test_columned_budget_growth_appends_worlds(self):
        """When the Theorem-5 budget grows with the candidate set, the
        appended worlds are explored fresh and the prefix is kept."""
        graph = powerlaw_graph(300, seed=18)
        monitor = TopKMonitor(graph, 6, seed=21)
        monitor.top_k()
        before = monitor.top_k().samples_used
        rng = np.random.default_rng(5)
        grew = False
        for _ in range(25):
            node = graph.label(int(rng.integers(0, 300)))
            current = graph.self_risk(node)
            monitor.set_self_risk(node, min(0.95, current + 0.15))
            result = monitor.top_k()
            if (
                monitor.last_report.sampling == "columned"
                and result.samples_used > before
            ):
                grew = True
            before = result.samples_used
        assert grew, "stream never grew the sample budget via columning"

    def test_removed_candidates_fall_back_to_resample(self):
        """Candidate removal shrinks every world's closure; only a
        re-exploration reproduces fresh work counters, so the monitor
        must resample — and stay exact."""
        graph = powerlaw_graph(250, seed=30)
        monitor = TopKMonitor(graph, 5, seed=11)
        monitor.top_k()
        rng = np.random.default_rng(7)
        saw_resample = False
        targets = [graph.label(int(i)) for i in rng.integers(0, 250, 12)]
        for node in targets:
            monitor.set_self_risk(node, 0.9)
        monitor.top_k()
        for node in targets:
            # Dropping risks back pulls candidates out of the set.
            monitor.set_self_risk(node, 0.01)
            result = monitor.top_k()
            fresh = BoundedSampleReverseDetector(
                seed=11, engine="indexed"
            ).detect(graph, 5)
            assert_equivalent(result, fresh)
            if monitor.last_report.sampling == "resampled":
                saw_resample = True
        assert saw_resample


class TestBoundsOnlyAnswers:
    """The always-warm Eq-(1) degraded path behind ``bounds_topk()``."""

    def test_flagged_and_bounds_consistent(self):
        graph = powerlaw_graph(150, seed=33)
        monitor = TopKMonitor(graph, 5, seed=4)
        result = monitor.bounds_topk()
        assert result.degraded
        assert result.details["bounds_only"]
        assert result.samples_used == 0
        assert len(result.nodes) == 5
        # details carry the bound pair of each returned node, aligned
        # with ``result.nodes``.
        lower = np.asarray(result.details["bounds_lower"])
        upper = np.asarray(result.details["bounds_upper"])
        assert lower.shape == upper.shape == (5,)
        assert np.all(lower <= upper + 1e-12)
        # Every returned node's upper bound clears the k-th lower bound
        # (the bounds-consistency the degraded contract promises).
        threshold = result.details["threshold_lower"]
        assert np.all(upper >= threshold - 1e-12)
        assert result.scores == dict(zip(result.nodes, lower.tolist()))

    def test_contains_every_certain_winner(self):
        """Any node whose LOWER bound beats the k-th UPPER bound is in
        every consistent top-k, so the degraded answer must keep it."""
        graph = powerlaw_graph(200, seed=34)
        k = 6
        monitor = TopKMonitor(graph, k, seed=4)
        result = monitor.bounds_topk()
        lower, upper = bound_pair(
            graph,
            result.details["lower_order"],
            result.details["upper_order"],
        )
        kth_upper = np.partition(upper, -k)[-k]
        certain = {
            graph.label(int(i))
            for i in np.flatnonzero(lower > kth_upper + 1e-12)
        }
        assert certain <= set(result.nodes)

    def test_read_only_and_cached(self):
        """bounds_topk() never mutates the pipeline: the exact oracle
        still holds afterwards, and repeat calls hit the one-slot
        cache until a setter actually changes something."""
        graph = powerlaw_graph(150, seed=35)
        monitor = TopKMonitor(graph, 5, seed=6)
        first = monitor.bounds_topk()
        assert monitor.bounds_topk() is first  # cached, no recompute
        exact = monitor.top_k()
        assert_equivalent(
            exact,
            BoundedSampleReverseDetector(seed=6, engine="indexed").detect(
                graph, 5
            ),
        )
        # top_k() doesn't advance the mutation counter, so the one-slot
        # cache still serves the cold-path result.
        assert monitor.bounds_topk() is first
        # A real change invalidates the cache; with the dirt still
        # pending the recompute takes the throwaway cold path.
        node = graph.label(0)
        monitor.set_self_risk(node, 0.77)
        cold = monitor.bounds_topk()
        assert cold is not first and not cold.details["bounds_reused"]
        # Fold the dirt in, change again, fold again: now the cache key
        # has moved *and* the pipeline is clean, so the recompute reuses
        # the incremental Eq-(1) iterates.
        monitor.top_k()
        monitor.set_self_risk(node, 0.78)
        monitor.top_k()
        warm = monitor.bounds_topk()
        assert warm.details["bounds_reused"]
        # A no-op write keeps the cache warm.
        monitor.set_self_risk(node, 0.78)
        assert monitor.bounds_topk() is warm
        # And the exact path is still bit-identical after all of it.
        assert_equivalent(
            monitor.top_k(),
            BoundedSampleReverseDetector(seed=6, engine="indexed").detect(
                graph, 5
            ),
        )

    def test_interleaved_with_event_stream_stays_exact(self):
        graph = powerlaw_graph(120, seed=36)
        monitor = TopKMonitor(graph, 4, seed=9)
        for event in random_patch_stream(graph, 10, seed=3, drift=0.1):
            monitor.apply([event])
            degraded = monitor.bounds_topk()
            assert degraded.degraded and len(degraded.nodes) == 4
            assert_equivalent(
                monitor.top_k(),
                BoundedSampleReverseDetector(
                    seed=9, engine="indexed"
                ).detect(graph, 4),
            )
