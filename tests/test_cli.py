"""Tests for the repro-detect command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io.edgelist import write_edgelist
from repro.io.jsonio import save_graph_json


@pytest.fixture
def graph_json(paper_graph, tmp_path):
    path = tmp_path / "graph.json"
    save_graph_json(paper_graph, path)
    return str(path)


@pytest.fixture
def graph_edgelist(paper_graph, tmp_path):
    path = tmp_path / "graph.txt"
    write_edgelist(paper_graph, path)
    return str(path)


class TestParser:
    def test_requires_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--k", "2"])

    def test_requires_size(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "citation"])

    def test_source_and_dataset_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--graph", "x.json", "--dataset", "citation", "--k", "1"]
            )


class TestMain:
    def test_json_graph_table_output(self, graph_json, capsys):
        code = main(["--graph", graph_json, "--k", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 of 5 nodes" in out
        assert "rank" in out

    def test_edgelist_graph(self, graph_edgelist, capsys):
        code = main(
            ["--graph", graph_edgelist, "--format", "edgelist", "--k", "1"]
        )
        assert code == 0
        assert "top-1" in capsys.readouterr().out

    def test_json_output_parses(self, graph_json, capsys):
        code = main(["--graph", graph_json, "--k", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "BSRBK"
        assert len(payload["nodes"]) == 2

    def test_named_dataset_with_percent(self, capsys):
        code = main(
            [
                "--dataset",
                "citation",
                "--scale",
                "0.02",
                "--k-percent",
                "5",
                "--method",
                "SN",
            ]
        )
        assert code == 0
        assert "SN: top-" in capsys.readouterr().out

    def test_method_n_uses_samples_flag(self, graph_json, capsys):
        code = main(
            ["--graph", graph_json, "--k", "1", "--method", "N",
             "--samples", "123", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples_used"] == 123

    def test_missing_file_reports_error(self, capsys):
        code = main(["--graph", "/nonexistent/graph.json", "--k", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_k_reports_error(self, graph_json, capsys):
        code = main(["--graph", graph_json, "--k", "50"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_negative_percent_reports_error(self, graph_json, capsys):
        code = main(["--graph", graph_json, "--k-percent", "-5"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStreamSubcommand:
    def test_random_patch_replay_verifies(self, graph_json, capsys):
        code = main(
            ["stream", "--graph", graph_json, "--k", "2",
             "--events", "4", "--seed", "1", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming top-2" in out
        assert "4/4 steps bit-identical" in out

    def test_json_output_parses(self, graph_json, capsys):
        code = main(
            ["stream", "--graph", graph_json, "--k", "1",
             "--events", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 1
        assert len(payload["steps"]) == 3
        assert {"step", "event", "mode", "sampling"} <= set(
            payload["steps"][0]
        )

    def test_dataset_source(self, capsys):
        code = main(
            ["stream", "--dataset", "guarantee", "--scale", "0.02",
             "--k-percent", "5", "--events", "2"]
        )
        assert code == 0
        assert "streaming top-" in capsys.readouterr().out

    def test_engine_choice(self, graph_json, capsys):
        code = main(
            ["stream", "--graph", graph_json, "--k", "1",
             "--events", "2", "--engine", "batched", "--verify"]
        )
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_requires_source_and_size(self):
        with pytest.raises(SystemExit):
            main(["stream", "--k", "2"])
        with pytest.raises(SystemExit):
            main(["stream", "--dataset", "guarantee"])

    def test_missing_file_reports_error(self, capsys):
        code = main(["stream", "--graph", "/nonexistent.json", "--k", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServeSubcommand:
    def test_serve_verifies_bit_identity(self, graph_json, capsys):
        code = main(
            ["serve", "--graph", graph_json, "--k", "2",
             "--tenants", "3", "--events", "4", "--mode", "serial",
             "--seed", "1", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving top-2 to 3 tenants" in out
        assert "3/3 tenants bit-identical" in out
        assert "updates/s" in out

    def test_serve_json_output_parses(self, graph_json, capsys):
        code = main(
            ["serve", "--graph", graph_json, "--k", "1",
             "--tenants", "2", "--events", "3", "--mode", "serial",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tenants"] == 2
        assert payload["events"] == 6
        assert len(payload["tenants_detail"]) == 2
        assert payload["queue"]["submitted"] == 6
        assert payload["graph_bytes_shared"] > 0

    def test_serve_dataset_source(self, capsys):
        code = main(
            ["serve", "--dataset", "guarantee", "--scale", "0.02",
             "--k-percent", "1", "--tenants", "2", "--events", "2",
             "--mode", "serial"]
        )
        assert code == 0
        assert "serving top-" in capsys.readouterr().out

    def test_serve_rejects_bad_counts(self, graph_json, capsys):
        assert main(
            ["serve", "--graph", graph_json, "--k", "1",
             "--tenants", "0", "--mode", "serial"]
        ) == 1
        assert "tenants" in capsys.readouterr().err
        assert main(
            ["serve", "--graph", graph_json, "--k", "1",
             "--events", "0", "--mode", "serial"]
        ) == 1

    def test_serve_missing_file_reports_error(self, capsys):
        code = main(["serve", "--graph", "/nonexistent.json", "--k", "1",
                     "--mode", "serial"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
