"""Bit-packed world state: packing primitives, state equivalence, and
packed-vs-dense bit-identity of the full streaming pipeline.

The contract under test is strict: the packed representation (two
``n``-bit masks per world plus an entity→worlds inverted index) must be
*indistinguishable* from the dense PR-3 layout through every monitor
behaviour — top-k answers, per-world repair sets, and draw counters —
on the Figure-6 workload datasets as well as synthetic streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.datasets.registry import load_dataset
from repro.sampling.indexed import IndexedReverseSampler
from repro.sampling.worldstate import (
    DenseWorldState,
    PackedWorldState,
    pack_bool_rows,
    popcount,
    unpack_bool_rows,
)
from repro.streaming.monitor import TopKMonitor
from repro.streaming.replay import random_patch_stream


def powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, 3 * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.3,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


class TestPackingPrimitives:
    @pytest.mark.parametrize("cols", [1, 7, 63, 64, 65, 200])
    def test_pack_unpack_roundtrip(self, cols):
        rng = np.random.default_rng(cols)
        dense = rng.random((9, cols)) < 0.3
        words = pack_bool_rows(dense)
        assert words.shape == (9, (cols + 63) // 64)
        assert np.array_equal(unpack_bool_rows(words, cols), dense)

    def test_popcount_matches_dense_sums(self):
        rng = np.random.default_rng(5)
        dense = rng.random((11, 130)) < 0.4
        words = pack_bool_rows(dense)
        assert np.array_equal(
            popcount(words).sum(axis=1), dense.sum(axis=1)
        )

    def test_packed_is_eight_times_smaller(self):
        dense = np.zeros((64, 6400), dtype=bool)
        assert pack_bool_rows(dense).nbytes * 8 == dense.nbytes


def _random_block(rng, worlds, n, m, density=0.3):
    """A WorldBlock-shaped namespace with consistent masks."""

    class Block:
        pass

    block = Block()
    block.touched_nodes = rng.random((worlds, n)) < density
    # Expanded ⊆ touched, as the sampler guarantees.
    block.expanded_nodes = block.touched_nodes & (
        rng.random((worlds, n)) < 0.7
    )
    return block


class TestStateEquivalence:
    """Dense and packed states answer every query identically."""

    def _states(self, worlds, n, heads, in_degrees, rng):
        dense = DenseWorldState(worlds, n, heads.size)
        packed = PackedWorldState(
            worlds, n, heads.size, heads=heads, in_degrees=in_degrees
        )
        return dense, packed

    def _store(self, dense, packed, rows, block, heads):
        # The dense layout stores explicit edge masks; derive them from
        # the expanded nodes exactly as the sampler would have drawn
        # them (edge drawn iff its head is expanded).
        block.touched_edges = block.expanded_nodes[:, heads]
        dense.store_block(rows, block)
        packed.store_block(rows, block)

    def test_pairs_and_draws_agree(self):
        rng = np.random.default_rng(7)
        n, worlds = 90, 40
        heads = rng.integers(0, n, size=220).astype(np.int64)
        in_degrees = np.bincount(heads, minlength=n).astype(np.int64)
        dense, packed = self._states(worlds, n, heads, in_degrees, rng)
        block = _random_block(rng, worlds, n, heads.size)
        self._store(dense, packed, np.arange(worlds), block, heads)
        nodes = np.array([0, 3, 55, 89])
        edges = np.array([0, 17, 219])
        for state_pair in [(dense, packed)]:
            d_rows, d_pos = state_pair[0].node_pairs(nodes)
            p_rows, p_pos = state_pair[1].node_pairs(nodes)
            assert set(zip(d_rows, d_pos)) == set(zip(p_rows, p_pos))
            d_rows, d_pos = state_pair[0].edge_pairs(edges, heads[edges])
            p_rows, p_pos = state_pair[1].edge_pairs(edges, heads[edges])
            assert set(zip(d_rows, d_pos)) == set(zip(p_rows, p_pos))
        assert np.array_equal(dense.node_draws(), packed.node_draws())
        assert np.array_equal(dense.edge_draws(), packed.edge_draws())

    def test_pairs_agree_after_repairs_with_stale_index(self, monkeypatch):
        # The index only builds above INDEX_MIN_WORLDS rows in
        # production (column scans win below); drop the floor so this
        # test exercises the indexed path at unit-test scale.
        monkeypatch.setattr(PackedWorldState, "INDEX_MIN_WORLDS", 1)
        rng = np.random.default_rng(11)
        n, worlds = 600, 30
        heads = rng.integers(0, n, size=1800).astype(np.int64)
        in_degrees = np.bincount(heads, minlength=n).astype(np.int64)
        dense, packed = self._states(worlds, n, heads, in_degrees, rng)
        block = _random_block(rng, worlds, n, heads.size, density=0.01)
        self._store(dense, packed, np.arange(worlds), block, heads)
        nodes = np.arange(n)
        packed.node_pairs(nodes[:5])  # force the index build
        assert packed.has_index
        # Repair a few rows with different masks; index rows go stale.
        repair = np.array([2, 9, 21])
        patch = _random_block(rng, repair.size, n, heads.size, density=0.01)
        self._store(dense, packed, repair, patch, heads)
        d_rows, d_pos = dense.node_pairs(nodes)
        p_rows, p_pos = packed.node_pairs(nodes)
        assert set(zip(d_rows, d_pos)) == set(zip(p_rows, p_pos))

    def test_dense_index_disabled_pairs_still_exact(self, monkeypatch):
        """High touch density disables the index; the column bit-scan
        fallback must stay exact."""
        monkeypatch.setattr(PackedWorldState, "INDEX_MIN_WORLDS", 1)
        rng = np.random.default_rng(19)
        n, worlds = 70, 30
        heads = rng.integers(0, n, size=180).astype(np.int64)
        in_degrees = np.bincount(heads, minlength=n).astype(np.int64)
        dense, packed = self._states(worlds, n, heads, in_degrees, rng)
        block = _random_block(rng, worlds, n, heads.size, density=0.5)
        self._store(dense, packed, np.arange(worlds), block, heads)
        nodes = np.arange(n)
        d_rows, d_pos = dense.node_pairs(nodes)
        p_rows, p_pos = packed.node_pairs(nodes)
        assert not packed.has_index
        assert set(zip(d_rows, d_pos)) == set(zip(p_rows, p_pos))

    def test_merge_block_deltas_are_exact(self):
        rng = np.random.default_rng(13)
        n, worlds = 60, 25
        heads = rng.integers(0, n, size=150).astype(np.int64)
        in_degrees = np.bincount(heads, minlength=n).astype(np.int64)
        dense, packed = self._states(worlds, n, heads, in_degrees, rng)
        base = _random_block(rng, worlds, n, heads.size)
        self._store(dense, packed, np.arange(worlds), base, heads)
        before_nodes = packed.node_draws().copy()
        before_edges = packed.edge_draws().copy()
        extra = _random_block(rng, worlds, n, heads.size)
        extra.touched_edges = extra.expanded_nodes[:, heads]
        d_node, d_edge = dense.merge_block(np.arange(worlds), extra)
        p_node, p_edge = packed.merge_block(np.arange(worlds), extra)
        assert np.array_equal(d_node, p_node)
        assert np.array_equal(d_edge, p_edge)
        assert np.array_equal(packed.node_draws(), before_nodes + p_node)
        assert np.array_equal(packed.edge_draws(), before_edges + p_edge)
        assert np.array_equal(dense.node_draws(), packed.node_draws())
        assert np.array_equal(dense.edge_draws(), packed.edge_draws())

    def test_resize_grow_and_truncate(self):
        rng = np.random.default_rng(17)
        n = 40
        heads = rng.integers(0, n, size=90).astype(np.int64)
        in_degrees = np.bincount(heads, minlength=n).astype(np.int64)
        packed = PackedWorldState(
            10, n, heads.size, heads=heads, in_degrees=in_degrees
        )
        block = _random_block(rng, 10, n, heads.size)
        packed.store_block(np.arange(10), block)
        draws = packed.node_draws()
        packed.resize(16)
        assert packed.worlds == 16
        assert np.array_equal(packed.node_draws()[:10], draws)
        assert (packed.node_draws()[10:] == 0).all()
        packed.resize(4)
        assert np.array_equal(packed.node_draws(), draws[:4])


class TestSamplerDrawCountIdentities:
    """The identities the packed representation is built on."""

    def test_draw_counts_equal_popcounts_of_masks(self):
        graph = powerlaw_graph(150, seed=4)
        candidates = np.arange(0, 150, 3)
        sampler = IndexedReverseSampler(graph, candidates, seed=9)
        block = sampler.outcomes_for_worlds(
            np.arange(25), collect_touched="compact"
        )
        dense_block = IndexedReverseSampler(
            graph, candidates, seed=9
        ).outcomes_for_worlds(np.arange(25), collect_touched=True)
        # node draws == touched popcount
        assert np.array_equal(
            block.node_draws, block.touched_nodes.sum(axis=1)
        )
        # edge draws == in-degree mass of the expanded nodes
        in_degrees = np.diff(graph.in_csr().indptr)
        assert np.array_equal(
            block.edge_draws, block.expanded_nodes @ in_degrees
        )
        # edge mask == expanded head mask (the m-bit -> n-bit collapse)
        heads = graph.edge_array[1]
        assert np.array_equal(
            dense_block.touched_edges, block.expanded_nodes[:, heads]
        )


#: One Figure-6 configuration per dataset family, small enough for CI.
FIG6_WORKLOAD = [("guarantee", 2.0), ("citation", 4.0), ("p2p", 2.0)]


class TestPackedVsDenseBitIdentity:
    """The satellite contract: both representations, driven in lockstep
    over the Figure-6 workload, agree on answers, per-world repair sets
    and draw counters — and on the final fresh-detection oracle."""

    @pytest.mark.parametrize("dataset,percent", FIG6_WORKLOAD)
    def test_fig6_stream_lockstep(self, dataset, percent):
        loaded_a = load_dataset(dataset, scale=0.02, seed=11)
        loaded_b = load_dataset(dataset, scale=0.02, seed=11)
        k = loaded_a.k_for_percent(percent)
        packed = TopKMonitor(
            loaded_a.graph, k, seed=5, world_state="packed"
        )
        dense = TopKMonitor(
            loaded_b.graph, k, seed=5, world_state="dense"
        )
        assert packed.top_k().same_answer(dense.top_k())
        events = list(
            random_patch_stream(loaded_a.graph, 12, seed=2, drift=0.15)
        )
        for event in events:
            packed.apply([event])
            dense.apply([event])
            result_packed = packed.top_k()
            result_dense = dense.top_k()
            # Answers and work telemetry.
            assert result_packed.same_answer(result_dense)
            for key in ("nodes_touched", "edges_touched"):
                assert (
                    result_packed.details[key] == result_dense.details[key]
                )
            # Per-world repair sets.
            assert np.array_equal(
                packed.last_repaired_rows, dense.last_repaired_rows
            )
            assert (
                packed.last_report.sampling == dense.last_report.sampling
            )
            assert (
                packed.last_report.worlds_repaired
                == dense.last_report.worlds_repaired
            )
        assert packed.stats == dense.stats
        # Both end bit-identical to fresh detection on the final graph.
        fresh = BoundedSampleReverseDetector(seed=5).detect(
            loaded_a.graph, k
        )
        assert result_packed.same_answer(fresh)
        assert (
            result_packed.details["nodes_touched"]
            == fresh.details["nodes_touched"]
        )

    def test_packed_state_is_at_least_four_times_smaller(self):
        """On the sparse workload graphs the packed masks are ~8× (and
        with the m-bit collapse typically >8×) below the dense bytes."""
        graph = powerlaw_graph(800, seed=6)
        packed = TopKMonitor(graph, 8, seed=3, world_state="packed")
        dense = TopKMonitor(graph, 8, seed=3, world_state="dense")
        packed.top_k()
        dense.top_k()
        assert packed.world_state_nbytes > 0
        assert (
            dense.world_state_nbytes
            >= 4 * packed.world_state_nbytes
        )
