"""Tests for repro.core.topk — deterministic top-k selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphError
from repro.core.topk import kth_largest, top_k_indices, top_k_labels, validate_k


class TestValidateK:
    def test_accepts_valid(self):
        assert validate_k(3, 10) == 3
        assert validate_k(10, 10) == 10
        assert validate_k(1, 1) == 1

    def test_rejects_zero_and_negative(self):
        with pytest.raises(GraphError):
            validate_k(0, 10)
        with pytest.raises(GraphError):
            validate_k(-1, 10)

    def test_rejects_k_above_n(self):
        with pytest.raises(GraphError):
            validate_k(11, 10)

    def test_rejects_empty_universe(self):
        with pytest.raises(GraphError):
            validate_k(1, 0)


class TestTopKIndices:
    def test_basic_selection(self):
        result = top_k_indices([0.1, 0.9, 0.5], 2)
        assert list(result) == [1, 2]

    def test_ties_broken_by_low_index(self):
        result = top_k_indices([0.5, 0.9, 0.5, 0.5], 3)
        assert list(result) == [1, 0, 2]

    def test_all_equal(self):
        result = top_k_indices([0.3, 0.3, 0.3], 2)
        assert list(result) == [0, 1]

    def test_k_equals_n(self):
        result = top_k_indices([0.2, 0.8, 0.4], 3)
        assert list(result) == [1, 2, 0]

    def test_negative_scores(self):
        result = top_k_indices([-0.5, -0.1, -0.9], 1)
        assert list(result) == [1]


class TestTopKLabels:
    def test_maps_to_labels(self, paper_graph):
        scores = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        assert top_k_labels(paper_graph, scores, 2) == ["E", "D"]

    def test_shape_mismatch(self, paper_graph):
        with pytest.raises(GraphError):
            top_k_labels(paper_graph, np.zeros(3), 2)


class TestKthLargest:
    def test_basic(self):
        assert kth_largest([0.9, 0.1, 0.5], 1) == pytest.approx(0.9)
        assert kth_largest([0.9, 0.1, 0.5], 2) == pytest.approx(0.5)
        assert kth_largest([0.9, 0.1, 0.5], 3) == pytest.approx(0.1)

    def test_with_duplicates(self):
        assert kth_largest([0.5, 0.5, 0.5, 0.2], 3) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            kth_largest([0.5], 2)


class TestNonFiniteRejection:
    """NaN sorts inconsistently between argsort and partition — regression
    tests that every selection entry point refuses non-finite scores
    instead of silently producing a contradictory ranking."""

    def test_top_k_indices_rejects_nan(self):
        with pytest.raises(GraphError, match="finite"):
            top_k_indices([0.1, np.nan, 0.5], 2)

    def test_top_k_indices_rejects_inf(self):
        with pytest.raises(GraphError, match="finite"):
            top_k_indices([0.1, np.inf, 0.5], 2)
        with pytest.raises(GraphError, match="finite"):
            top_k_indices([0.1, -np.inf, 0.5], 2)

    def test_top_k_labels_rejects_nan(self, paper_graph):
        scores = np.array([0.1, 0.2, np.nan, 0.4, 0.5])
        with pytest.raises(GraphError, match="finite"):
            top_k_labels(paper_graph, scores, 2)

    def test_kth_largest_rejects_nan(self):
        with pytest.raises(GraphError, match="finite"):
            kth_largest([0.9, np.nan, 0.5], 2)

    def test_kth_largest_rejects_inf(self):
        with pytest.raises(GraphError, match="finite"):
            kth_largest([0.9, np.inf], 1)

    def test_error_names_offending_index(self):
        with pytest.raises(GraphError, match="index 1"):
            top_k_indices([0.1, np.nan, np.nan], 1)

    def test_finite_vectors_still_pass(self):
        assert list(top_k_indices([0.0, 1.0, 0.5], 2)) == [1, 2]
        assert kth_largest([0.0, 1.0, 0.5], 2) == pytest.approx(0.5)
