"""Tests for the temporal guaranteed-loan panel (Table 3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.temporal import build_guarantee_panel


@pytest.fixture(scope="module")
def panel():
    return build_guarantee_panel(num_nodes=400, num_edges=460, seed=0)


class TestPanelStructure:
    def test_years_present(self, panel):
        assert panel.train_year == 2012
        assert panel.test_years == (2014, 2015, 2016)
        assert set(panel.snapshots) == {2012, 2014, 2015, 2016}

    def test_train_accessor(self, panel):
        assert panel.train.year == 2012

    def test_test_accessor_validates(self, panel):
        assert panel.test(2015).year == 2015
        with pytest.raises(DatasetError):
            panel.test(2012)
        with pytest.raises(DatasetError):
            panel.test(1999)

    def test_graph_shape(self, panel):
        assert panel.graph.num_nodes == 400
        assert panel.graph.num_edges == 460

    def test_duplicate_years_rejected(self):
        with pytest.raises(DatasetError):
            build_guarantee_panel(
                num_nodes=100,
                num_edges=115,
                train_year=2014,
                test_years=(2014,),
            )


class TestSnapshots:
    def test_feature_shapes(self, panel):
        for snapshot in panel.snapshots.values():
            assert snapshot.features.shape[0] == 400
            assert snapshot.labels.shape == (400,)
            assert snapshot.self_risks.shape == (400,)

    def test_labels_binary(self, panel):
        for snapshot in panel.snapshots.values():
            assert set(np.unique(snapshot.labels)) <= {0, 1}

    def test_default_rate_is_bank_like(self, panel):
        """Simulated delinquency rates should be single/low-double digit."""
        for snapshot in panel.snapshots.values():
            rate = snapshot.labels.mean()
            assert 0.01 < rate < 0.45

    def test_self_risks_are_probabilities(self, panel):
        for snapshot in panel.snapshots.values():
            assert np.all(snapshot.self_risks > 0)
            assert np.all(snapshot.self_risks < 1)

    def test_features_drift_across_years(self, panel):
        base = panel.snapshots[2012].features
        later = panel.snapshots[2016].features
        assert not np.allclose(base, later)

    def test_labels_differ_across_years(self, panel):
        a = panel.snapshots[2014].labels
        b = panel.snapshots[2015].labels
        assert not np.array_equal(a, b)

    def test_contagion_present_in_labels(self, panel):
        """Some defaults must come from contagion, not only self-risk.

        Statistically: nodes whose in-neighbour defaulted should default
        more often than baseline.
        """
        graph = panel.graph
        in_csr = graph.in_csr()
        total_exposed = 0
        exposed_defaults = 0
        total = 0
        defaults = 0
        for snapshot in panel.snapshots.values():
            labels = snapshot.labels
            for v in range(graph.num_nodes):
                neighbors = in_csr.neighbors(v)
                exposed = bool(labels[neighbors].any()) if neighbors.size else False
                total += 1
                defaults += labels[v]
                if exposed:
                    total_exposed += 1
                    exposed_defaults += labels[v]
        assert total_exposed > 0
        assert exposed_defaults / total_exposed > defaults / total

    def test_deterministic(self):
        a = build_guarantee_panel(num_nodes=120, num_edges=138, seed=5)
        b = build_guarantee_panel(num_nodes=120, num_edges=138, seed=5)
        assert np.array_equal(
            a.snapshots[2014].labels, b.snapshots[2014].labels
        )
        assert np.array_equal(
            a.snapshots[2016].features, b.snapshots[2016].features
        )

    def test_graph_keeps_training_risks(self, panel):
        assert np.allclose(
            panel.graph.self_risk_array, panel.snapshots[2012].self_risks
        )
