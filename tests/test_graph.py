"""Tests for repro.core.graph — the UncertainGraph container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import (
    DuplicateEdgeError,
    GraphError,
    ProbabilityError,
    UnknownNodeError,
)
from repro.core.graph import GraphStats, UncertainGraph, graph_from_mapping


class TestConstruction:
    def test_empty_graph(self):
        graph = UncertainGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert len(graph) == 0

    def test_add_node_returns_sequential_indices(self):
        graph = UncertainGraph()
        assert graph.add_node("x", 0.1) == 0
        assert graph.add_node("y", 0.2) == 1
        assert graph.add_node("z") == 2

    def test_add_node_default_self_risk_is_zero(self):
        graph = UncertainGraph()
        graph.add_node("x")
        assert graph.self_risk("x") == 0.0

    def test_duplicate_node_rejected(self):
        graph = UncertainGraph()
        graph.add_node("x", 0.1)
        with pytest.raises(GraphError, match="already exists"):
            graph.add_node("x", 0.2)

    def test_self_risk_out_of_range_rejected(self):
        graph = UncertainGraph()
        with pytest.raises(ProbabilityError):
            graph.add_node("x", 1.5)
        with pytest.raises(ProbabilityError):
            graph.add_node("y", -0.01)

    def test_nan_self_risk_rejected(self):
        graph = UncertainGraph()
        with pytest.raises(ProbabilityError):
            graph.add_node("x", float("nan"))

    def test_add_edge_returns_sequential_ids(self):
        graph = UncertainGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_node("c")
        assert graph.add_edge("a", "b", 0.5) == 0
        assert graph.add_edge("b", "c", 0.5) == 1

    def test_edge_to_unknown_node_rejected(self):
        graph = UncertainGraph()
        graph.add_node("a")
        with pytest.raises(UnknownNodeError):
            graph.add_edge("a", "missing", 0.5)
        with pytest.raises(UnknownNodeError):
            graph.add_edge("missing", "a", 0.5)

    def test_self_loop_rejected(self):
        graph = UncertainGraph()
        graph.add_node("a")
        with pytest.raises(GraphError, match="self-loop"):
            graph.add_edge("a", "a", 0.5)

    def test_duplicate_edge_rejected(self):
        graph = UncertainGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("a", "b", 0.5)
        with pytest.raises(DuplicateEdgeError):
            graph.add_edge("a", "b", 0.9)

    def test_reverse_edge_is_not_duplicate(self):
        graph = UncertainGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("b", "a", 0.7)  # must not raise
        assert graph.num_edges == 2

    def test_edge_probability_out_of_range_rejected(self):
        graph = UncertainGraph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(ProbabilityError):
            graph.add_edge("a", "b", 1.2)

    def test_constructor_with_iterables(self):
        graph = UncertainGraph(
            nodes=[("a", 0.1), ("b", 0.2)], edges=[("a", "b", 0.3)]
        )
        assert graph.num_nodes == 2
        assert graph.edge_probability("a", "b") == pytest.approx(0.3)

    def test_graph_from_mapping(self):
        graph = graph_from_mapping(
            {"a": 0.1, "b": 0.2}, {("a", "b"): 0.5}
        )
        assert graph.self_risk("b") == pytest.approx(0.2)
        assert graph.has_edge("a", "b")

    def test_from_arrays(self):
        graph = UncertainGraph.from_arrays(
            self_risks=[0.1, 0.2, 0.3],
            edge_src=[0, 1],
            edge_dst=[1, 2],
            edge_probs=[0.4, 0.5],
        )
        assert graph.num_nodes == 3
        assert graph.edge_probability(0, 1) == pytest.approx(0.4)

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_arrays([0.1], [0], [1], [0.5, 0.6])
        with pytest.raises(GraphError):
            UncertainGraph.from_arrays([0.1, 0.2], [0], [1], [0.5], labels=["a"])

    def test_from_arrays_rejects_bad_probabilities(self):
        with pytest.raises(ProbabilityError):
            UncertainGraph.from_arrays([0.1, 1.2], [0], [1], [0.5])
        with pytest.raises(ProbabilityError):
            UncertainGraph.from_arrays([0.1, 0.2], [0], [1], [1.5])
        with pytest.raises(ProbabilityError):
            UncertainGraph.from_arrays([0.1, 0.2], [0], [1], [float("nan")])

    def test_from_arrays_rejects_bad_topology(self):
        with pytest.raises(GraphError):
            UncertainGraph.from_arrays([0.1, 0.2], [0], [0], [0.5])  # self-loop
        with pytest.raises(GraphError):
            UncertainGraph.from_arrays([0.1, 0.2], [0], [2], [0.5])  # range
        with pytest.raises(GraphError):
            UncertainGraph.from_arrays([0.1, 0.2], [-1], [1], [0.5])
        with pytest.raises(DuplicateEdgeError):
            UncertainGraph.from_arrays(
                [0.1, 0.2], [0, 0], [1, 1], [0.5, 0.6]
            )
        with pytest.raises(GraphError):
            UncertainGraph.from_arrays([0.1, 0.2], [], [], [], labels=["a", "a"])

    def test_from_arrays_does_not_adopt_caller_arrays(self):
        probs = np.array([0.4, 0.5])
        graph = UncertainGraph.from_arrays([0.1, 0.2, 0.3], [0, 1], [1, 2], probs)
        probs[0] = 0.99  # caller mutation must not leak into the graph
        assert graph.edge_probability(0, 1) == pytest.approx(0.4)

    def test_from_arrays_matches_incremental_construction(self):
        rng = np.random.default_rng(17)
        n, m = 30, 80
        risks = rng.random(n)
        seen: set[tuple[int, int]] = set()
        while len(seen) < m:
            s, d = rng.integers(n), rng.integers(n)
            if s != d:
                seen.add((int(s), int(d)))
        src, dst = map(np.array, zip(*sorted(seen)))
        probs = rng.random(m)
        bulk = UncertainGraph.from_arrays(risks, src, dst, probs)
        incremental = UncertainGraph()
        for i in range(n):
            incremental.add_node(i, risks[i])
        for s, d, p in zip(src, dst, probs):
            incremental.add_edge(int(s), int(d), p)
        assert list(bulk.edges()) == list(incremental.edges())
        assert bulk.labels() == incremental.labels()
        assert np.array_equal(bulk.self_risk_array, incremental.self_risk_array)
        out_bulk, out_inc = bulk.out_csr(), incremental.out_csr()
        assert np.array_equal(out_bulk.indptr, out_inc.indptr)
        assert np.array_equal(out_bulk.indices, out_inc.indices)
        assert np.array_equal(out_bulk.edge_ids, out_inc.edge_ids)
        bulk.validate()


class TestLookups:
    def test_membership(self, paper_graph):
        assert "A" in paper_graph
        assert "Z" not in paper_graph

    def test_index_label_round_trip(self, paper_graph):
        for label in "ABCDE":
            assert paper_graph.label(paper_graph.index(label)) == label

    def test_index_unknown_raises(self, paper_graph):
        with pytest.raises(UnknownNodeError):
            paper_graph.index("Z")

    def test_label_out_of_range_raises(self, paper_graph):
        with pytest.raises(UnknownNodeError):
            paper_graph.label(99)
        with pytest.raises(UnknownNodeError):
            paper_graph.label(-1)

    def test_labels_returns_copy(self, paper_graph):
        labels = paper_graph.labels()
        labels.append("tampered")
        assert "tampered" not in paper_graph.labels()

    def test_edges_iteration(self, paper_graph):
        edges = list(paper_graph.edges())
        assert len(edges) == 6
        assert ("A", "B", 0.2) in edges

    def test_has_edge(self, paper_graph):
        assert paper_graph.has_edge("A", "B")
        assert not paper_graph.has_edge("B", "A")
        assert not paper_graph.has_edge("Z", "A")

    def test_edge_probability_unknown_edge(self, paper_graph):
        with pytest.raises(UnknownNodeError):
            paper_graph.edge_probability("A", "D")

    def test_neighbors(self, paper_graph):
        assert sorted(paper_graph.out_neighbors("A")) == ["B", "C"]
        assert sorted(paper_graph.in_neighbors("E")) == ["B", "C", "D"]
        assert paper_graph.in_neighbors("A") == []

    def test_degrees(self, paper_graph):
        assert paper_graph.out_degree("A") == 2
        assert paper_graph.in_degree("A") == 0
        assert paper_graph.in_degree("E") == 3
        assert paper_graph.out_degree("E") == 0

    def test_repr_mentions_sizes(self, paper_graph):
        assert "nodes=5" in repr(paper_graph)
        assert "edges=6" in repr(paper_graph)


class TestMutation:
    def test_set_self_risk(self, paper_graph):
        paper_graph.set_self_risk("A", 0.9)
        assert paper_graph.self_risk("A") == pytest.approx(0.9)

    def test_set_self_risk_validates(self, paper_graph):
        with pytest.raises(ProbabilityError):
            paper_graph.set_self_risk("A", 2.0)

    def test_set_edge_probability(self, paper_graph):
        paper_graph.set_edge_probability("A", "B", 0.75)
        assert paper_graph.edge_probability("A", "B") == pytest.approx(0.75)

    def test_set_edge_probability_unknown_edge(self, paper_graph):
        with pytest.raises(UnknownNodeError):
            paper_graph.set_edge_probability("E", "A", 0.5)

    def test_set_all_self_risks(self, paper_graph):
        paper_graph.set_all_self_risks(np.full(5, 0.4))
        assert paper_graph.self_risk("C") == pytest.approx(0.4)

    def test_set_all_self_risks_validates_shape(self, paper_graph):
        with pytest.raises(GraphError):
            paper_graph.set_all_self_risks(np.full(3, 0.4))

    def test_set_all_self_risks_validates_range(self, paper_graph):
        before = paper_graph.self_risk_array.copy()
        with pytest.raises(ProbabilityError):
            paper_graph.set_all_self_risks(np.full(5, 1.4))
        # failed call must leave the graph unchanged
        assert np.array_equal(paper_graph.self_risk_array, before)

    def test_set_all_edge_probabilities(self, paper_graph):
        paper_graph.set_all_edge_probabilities(np.full(6, 0.6))
        assert paper_graph.edge_probability("D", "E") == pytest.approx(0.6)

    def test_set_all_edge_probabilities_validates(self, paper_graph):
        with pytest.raises(GraphError):
            paper_graph.set_all_edge_probabilities(np.full(2, 0.6))
        with pytest.raises(ProbabilityError):
            paper_graph.set_all_edge_probabilities(np.full(6, -0.1))

    def test_bulk_probability_update_patches_csr_in_place(self, paper_graph):
        before = paper_graph.out_csr()
        paper_graph.set_all_edge_probabilities(np.full(6, 0.9))
        after = paper_graph.out_csr()
        # Probability-only updates must not rebuild the CSR views; the
        # cached objects survive and observe the new values.
        assert after is before
        assert np.allclose(after.probs, 0.9)

    def test_topology_mutation_invalidates_csr_cache(self, paper_graph):
        before = paper_graph.out_csr()
        paper_graph.add_node("F", 0.1)
        paper_graph.add_edge("E", "F", 0.5)
        after = paper_graph.out_csr()
        assert after is not before
        assert after.indptr.size == before.indptr.size + 1

    def test_set_edge_probability_does_not_rebuild_csr(self, paper_graph):
        """Regression: a one-float patch must not invalidate either view."""
        out_before = paper_graph.out_csr()
        in_before = paper_graph.in_csr()
        paper_graph.set_edge_probability("A", "B", 0.81)
        assert paper_graph.out_csr() is out_before
        assert paper_graph.in_csr() is in_before
        # Both views share canonical edge ids, so both see the patch.
        a, b = paper_graph.index("A"), paper_graph.index("B")
        out_pos = list(out_before.neighbors(a)).index(b)
        in_pos = list(in_before.neighbors(b)).index(a)
        assert out_before.edge_probs(a)[out_pos] == pytest.approx(0.81)
        assert in_before.edge_probs(b)[in_pos] == pytest.approx(0.81)
        assert paper_graph.edge_probability("A", "B") == pytest.approx(0.81)

    def test_in_place_patching_coherent_across_structural_mutation(
        self, paper_graph
    ):
        """Regression: patch → mutate topology → patch must stay coherent.

        ``add_edge`` after a cached CSR pair must invalidate both views
        (their inverse permutations are stale), and a subsequent
        ``set_edge_probability`` must patch the *rebuilt* views — never
        write through a stale permutation into a dead array.
        """
        stale_out = paper_graph.out_csr()
        stale_in = paper_graph.in_csr()
        paper_graph.set_edge_probability("A", "B", 0.33)
        paper_graph.add_edge("E", "A", 0.5)  # structural: invalidates CSR
        rebuilt_out = paper_graph.out_csr()
        rebuilt_in = paper_graph.in_csr()
        assert rebuilt_out is not stale_out
        assert rebuilt_in is not stale_in
        paper_graph.set_edge_probability("A", "B", 0.44)
        # The rebuilt views observe the post-mutation patch in place...
        assert paper_graph.out_csr() is rebuilt_out
        a, b = paper_graph.index("A"), paper_graph.index("B")
        out_pos = list(rebuilt_out.neighbors(a)).index(b)
        in_pos = list(rebuilt_in.neighbors(b)).index(a)
        assert rebuilt_out.edge_probs(a)[out_pos] == pytest.approx(0.44)
        assert rebuilt_in.edge_probs(b)[in_pos] == pytest.approx(0.44)
        # ...and every edge's probability agrees between canonical
        # storage and both CSR views (full coherence check).
        src, dst, probs = paper_graph.edge_array
        for eid in range(paper_graph.num_edges):
            expected = probs[eid]
            out_slot = np.flatnonzero(rebuilt_out.edge_ids == eid)[0]
            in_slot = np.flatnonzero(rebuilt_in.edge_ids == eid)[0]
            assert rebuilt_out.probs[out_slot] == expected
            assert rebuilt_in.probs[in_slot] == expected

    def test_bulk_patch_after_structural_mutation(self, paper_graph):
        paper_graph.out_csr(), paper_graph.in_csr()
        paper_graph.add_node("F", 0.1)
        paper_graph.add_edge("F", "A", 0.9)
        view = paper_graph.out_csr()
        values = np.linspace(0.1, 0.7, paper_graph.num_edges)
        paper_graph.set_all_edge_probabilities(values)
        assert paper_graph.out_csr() is view
        assert np.array_equal(np.sort(view.probs), np.sort(values))
        paper_graph.validate()

    def test_edge_id_is_canonical_and_stable_under_patches(self, paper_graph):
        eid = paper_graph.edge_id("A", "B")
        _, _, probs = paper_graph.edge_array
        assert probs[eid] == pytest.approx(0.2)
        paper_graph.set_edge_probability("A", "B", 0.66)
        assert paper_graph.edge_id("A", "B") == eid
        with pytest.raises(UnknownNodeError):
            paper_graph.edge_id("E", "A")


class TestCSR:
    def test_out_csr_consistent_with_edges(self, paper_graph):
        csr = paper_graph.out_csr()
        a = paper_graph.index("A")
        neighbors = {paper_graph.label(int(i)) for i in csr.neighbors(a)}
        assert neighbors == {"B", "C"}

    def test_in_csr_consistent_with_edges(self, paper_graph):
        csr = paper_graph.in_csr()
        e = paper_graph.index("E")
        neighbors = {paper_graph.label(int(i)) for i in csr.neighbors(e)}
        assert neighbors == {"B", "C", "D"}

    def test_csr_cached(self, paper_graph):
        assert paper_graph.out_csr() is paper_graph.out_csr()
        assert paper_graph.in_csr() is paper_graph.in_csr()

    def test_csr_edge_ids_shared_between_directions(self, paper_graph):
        src, dst, prob = paper_graph.edge_array
        out = paper_graph.out_csr()
        in_ = paper_graph.in_csr()
        # Each direction must map its slots back to canonical edge ids.
        for node in range(paper_graph.num_nodes):
            for pos in range(out.indptr[node], out.indptr[node + 1]):
                eid = out.edge_ids[pos]
                assert src[eid] == node
                assert dst[eid] == out.indices[pos]
            for pos in range(in_.indptr[node], in_.indptr[node + 1]):
                eid = in_.edge_ids[pos]
                assert dst[eid] == node
                assert src[eid] == in_.indices[pos]

    def test_degrees_vector(self, paper_graph):
        assert paper_graph.out_csr().degrees.sum() == paper_graph.num_edges
        assert paper_graph.in_csr().degrees.sum() == paper_graph.num_edges

    def test_csr_probs_aligned(self, paper_graph):
        paper_graph.set_edge_probability("A", "B", 0.77)
        out = paper_graph.out_csr()
        a = paper_graph.index("A")
        b = paper_graph.index("B")
        position = list(out.neighbors(a)).index(b)
        assert out.edge_probs(a)[position] == pytest.approx(0.77)


class TestDerivedGraphs:
    def test_reverse_flips_edges(self, paper_graph):
        rev = paper_graph.reverse()
        assert rev.has_edge("B", "A")
        assert not rev.has_edge("A", "B")
        assert rev.num_edges == paper_graph.num_edges

    def test_reverse_preserves_probabilities(self, paper_graph):
        rev = paper_graph.reverse()
        assert rev.edge_probability("E", "D") == pytest.approx(0.2)
        assert rev.self_risk("A") == pytest.approx(0.2)

    def test_double_reverse_is_identity(self, paper_graph):
        twice = paper_graph.reverse().reverse()
        assert sorted(twice.edges()) == sorted(paper_graph.edges())
        assert twice.labels() == paper_graph.labels()

    def test_subgraph(self, paper_graph):
        sub = paper_graph.subgraph(["A", "B", "D"])
        assert sub.num_nodes == 3
        assert sub.has_edge("A", "B")
        assert sub.has_edge("B", "D")
        assert sub.num_edges == 2

    def test_copy_is_independent(self, paper_graph):
        clone = paper_graph.copy()
        clone.set_self_risk("A", 0.99)
        assert paper_graph.self_risk("A") == pytest.approx(0.2)

    def test_networkx_round_trip(self, paper_graph):
        nx_graph = paper_graph.to_networkx()
        back = UncertainGraph.from_networkx(nx_graph)
        assert sorted(back.edges()) == sorted(paper_graph.edges())
        assert back.self_risk("E") == pytest.approx(0.2)

    def test_from_networkx_defaults(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("u", "v")
        graph = UncertainGraph.from_networkx(
            g, default_self_risk=0.1, default_probability=0.9
        )
        assert graph.self_risk("u") == pytest.approx(0.1)
        assert graph.edge_probability("u", "v") == pytest.approx(0.9)


class TestStatsAndValidate:
    def test_stats_counts(self, paper_graph):
        stats = paper_graph.stats()
        assert stats.num_nodes == 5
        assert stats.num_edges == 6
        assert stats.avg_degree == pytest.approx(6 / 5)
        assert stats.max_degree == 3  # E has in-degree 3

    def test_stats_probabilities(self, paper_graph):
        stats = paper_graph.stats()
        assert stats.mean_self_risk == pytest.approx(0.2)
        assert stats.mean_diffusion == pytest.approx(0.2)

    def test_stats_empty(self):
        stats = UncertainGraph().stats()
        assert stats == GraphStats(0, 0, 0.0, 0, 0.0, 0.0)

    def test_stats_as_row(self, paper_graph):
        row = paper_graph.stats().as_row()
        assert row["nodes"] == 5
        assert row["edges"] == 6

    def test_validate_passes_on_good_graph(self, paper_graph):
        paper_graph.validate()  # must not raise

    def test_validate_detects_corruption(self, paper_graph):
        paper_graph._self_risk.append(0.5)  # corrupt deliberately
        with pytest.raises(GraphError):
            paper_graph.validate()

    def test_self_risk_array(self, paper_graph):
        array = paper_graph.self_risk_array
        assert array.shape == (5,)
        assert np.allclose(array, 0.2)

    def test_edge_array(self, paper_graph):
        src, dst, prob = paper_graph.edge_array
        assert src.shape == dst.shape == prob.shape == (6,)
        assert np.allclose(prob, 0.2)


@st.composite
def array_graph_inputs(draw, max_nodes=8):
    """Parallel-array graph descriptions for the bulk constructor."""
    n = draw(st.integers(1, max_nodes))
    risks = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    possible = [(s, d) for s in range(n) for d in range(n) if s != d]
    pairs = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=min(12, len(possible)))
    ) if possible else []
    probs = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    src = [s for s, _ in pairs]
    dst = [d for _, d in pairs]
    return risks, src, dst, probs


class TestFromArraysProperties:
    @given(array_graph_inputs())
    def test_round_trips_edges(self, inputs):
        risks, src, dst, probs = inputs
        graph = UncertainGraph.from_arrays(risks, src, dst, probs)
        graph.validate()
        assert graph.num_nodes == len(risks)
        assert graph.num_edges == len(src)
        assert list(graph.edges()) == [
            (s, d, pytest.approx(p)) for s, d, p in zip(src, dst, probs)
        ]
        assert np.array_equal(graph.self_risk_array, np.asarray(risks))
        for s, d in zip(src, dst):
            assert graph.has_edge(s, d)

    @given(array_graph_inputs(), st.integers(0, 100))
    def test_rejects_bad_probabilities_atomically(self, inputs, seed):
        risks, src, dst, probs = inputs
        if not probs:
            return
        rng = np.random.default_rng(seed)
        bad = list(probs)
        bad[rng.integers(len(bad))] = 1.0 + float(rng.random()) + 1e-9
        with pytest.raises(ProbabilityError):
            UncertainGraph.from_arrays(risks, src, dst, bad)

    @given(array_graph_inputs())
    def test_reverse_round_trip(self, inputs):
        risks, src, dst, probs = inputs
        graph = UncertainGraph.from_arrays(risks, src, dst, probs)
        twice = graph.reverse().reverse()
        assert list(twice.edges()) == list(graph.edges())
        assert twice.labels() == graph.labels()
        graph.reverse().validate()


class TestShareView:
    """Copy-on-write buffer sharing (the serving layer's graph hook)."""

    def _graph(self):
        return UncertainGraph.from_arrays(
            self_risks=[0.1, 0.2, 0.3, 0.4],
            edge_src=[0, 1, 2],
            edge_dst=[1, 2, 3],
            edge_probs=[0.5, 0.6, 0.7],
            labels=["a", "b", "c", "d"],
        )

    def test_view_answers_identically(self):
        graph = self._graph()
        view = graph.share_view()
        assert view.labels() == graph.labels()
        assert list(view.edges()) == list(graph.edges())
        assert np.array_equal(view.self_risk_array, graph.self_risk_array)
        view.validate()

    def test_probability_patches_do_not_leak_either_way(self):
        graph = self._graph()
        view = graph.share_view()
        view.set_self_risk("a", 0.9)
        view.set_edge_probability("a", "b", 0.11)
        assert graph.self_risk("a") == 0.1
        assert graph.edge_probability("a", "b") == 0.5
        graph.set_self_risk("b", 0.8)
        graph.set_edge_probability("b", "c", 0.22)
        assert view.self_risk("b") == 0.2
        assert view.edge_probability("b", "c") == 0.6
        # Patches land in each holder's cached CSR views in place.
        in_csr = view.in_csr()
        eid = view.edge_id("a", "b")
        position = np.flatnonzero(in_csr.edge_ids == eid)[0]
        assert in_csr.probs[position] == 0.11

    def test_bulk_setters_fork(self):
        graph = self._graph()
        view = graph.share_view()
        view.set_all_self_risks([0.5, 0.5, 0.5, 0.5])
        view.set_all_edge_probabilities([0.9, 0.9, 0.9])
        assert graph.self_risk("a") == 0.1
        assert graph.edge_probability("a", "b") == 0.5

    def test_structural_mutations_fork_maps(self):
        graph = self._graph()
        view = graph.share_view()
        view.add_node("e", 0.5)
        view.add_edge("d", "e", 0.3)
        assert "e" not in graph
        assert graph.num_edges == 3
        graph.add_node("f", 0.6)
        assert "f" not in view
        view.validate()
        graph.validate()

    def test_share_view_of_forked_view(self):
        graph = self._graph()
        view = graph.share_view()
        view.set_self_risk("a", 0.7)  # forks the self-risk column
        second = view.share_view()
        assert second.self_risk("a") == 0.7
        second.set_self_risk("a", 0.2)
        assert view.self_risk("a") == 0.7

    def test_storage_arrays_shared_between_holders(self):
        graph = self._graph()
        view = graph.share_view()
        shared = {id(a) for a in graph.storage_arrays()} & {
            id(a) for a in view.storage_arrays()
        }
        # Attribute columns + CSR topology are shared objects; only the
        # two CSR probability columns are private per holder.
        assert len(shared) >= 8

    def test_detection_equivalent_on_view(self):
        from repro.algorithms.bsr import BoundedSampleReverseDetector

        rng = np.random.default_rng(5)
        n = 200
        src = rng.integers(0, n, 600)
        dst = rng.integers(0, n, 600)
        keep = src != dst
        pairs = {(int(s), int(d)) for s, d in zip(src[keep], dst[keep])}
        src = np.array([p[0] for p in pairs])
        dst = np.array([p[1] for p in pairs])
        graph = UncertainGraph.from_arrays(
            rng.random(n) * 0.3, src, dst, rng.random(src.size)
        )
        view = graph.share_view()
        detector = BoundedSampleReverseDetector(seed=3, engine="indexed")
        a = detector.detect(graph, 5)
        b = detector.detect(view, 5)
        assert a.nodes == b.nodes
        assert a.scores == b.scores
        assert a.samples_used == b.samples_used
