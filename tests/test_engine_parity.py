"""Work-count parity: ``engine="indexed"`` vs ``engine="batched"``.

Groundwork for promoting the indexed engine to the detector default
(ROADMAP).  Both engines explore the same union closure over the same
candidate sets with the same Theorem-5 budgets; their uniforms differ
(sequential stream vs counter-based PRF), so per-world exploration sizes
differ only statistically.  On the Figure-6 workload the measured
aggregate gap is under 2% (per-configuration within ±4%); these tests
pin that, plus the exact invariants that must hold regardless of
randomness: identical sample budgets, identical candidate reductions,
identical verified counts.
"""

from __future__ import annotations

import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.datasets.registry import load_dataset
from repro.experiments.config import get_config

#: A cut of the Figure-6 grid small enough for the smoke tier: one
#: financial network, one near-tree, one sparse SNAP shape.
WORKLOAD = [
    ("guarantee", (2.0, 6.0)),
    ("citation", (4.0, 10.0)),
    ("p2p", (2.0,)),
]


def _detect(graph, k, engine):
    config = get_config()
    detector = BoundedSampleReverseDetector(
        epsilon=config.epsilon,
        delta=config.delta,
        lower_order=config.bound_order,
        upper_order=config.bound_order,
        seed=config.seed,
        engine=engine,
    )
    result = detector.detect(graph, k)
    work = int(result.details["nodes_touched"]) + int(
        result.details["edges_touched"]
    )
    return result, work


@pytest.mark.parametrize("dataset,percents", WORKLOAD)
def test_indexed_matches_batched_on_fig6_workload(dataset, percents):
    config = get_config()
    loaded = load_dataset(dataset, scale=config.scale_override, seed=config.seed)
    total_indexed = total_batched = 0
    for percent in percents:
        k = loaded.k_for_percent(percent)
        indexed, indexed_work = _detect(loaded.graph, k, "indexed")
        batched, batched_work = _detect(loaded.graph, k, "batched")
        # Deterministic pipeline stages must agree exactly: the bounds,
        # reduction, and Theorem-5 budget do not depend on the engine.
        assert indexed.samples_used == batched.samples_used
        assert indexed.candidate_size == batched.candidate_size
        assert indexed.k_verified == batched.k_verified
        # Sampling work differs only through the uniforms; per
        # configuration the engines stay within a few percent.
        if batched_work:
            assert 0.85 <= indexed_work / batched_work <= 1.15, (
                f"{dataset} k={k}: indexed={indexed_work} "
                f"batched={batched_work}"
            )
        else:
            assert indexed_work == 0
        total_indexed += indexed_work
        total_batched += batched_work
    if total_batched:
        assert 0.95 <= total_indexed / total_batched <= 1.05
