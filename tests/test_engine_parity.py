"""Work-count parity: ``engine="indexed"`` vs ``engine="batched"``.

The indexed engine is the detector default since PR 5; the batched
engine remains the stream-based alternative these tests measure against.
Both engines explore the same union closure over the same candidate
sets with the same Theorem-5 budgets; their uniforms differ (sequential
stream vs counter-based PRF), so per-world exploration sizes differ only
statistically.  These tests pin the statistical parity, plus the exact
invariants that must hold regardless of randomness: identical sample
budgets, identical candidate reductions, identical verified counts.

The parity band is derived from the configured sample budget rather
than hard-coded: each configuration's total work is a mean over
``samples`` i.i.d. per-world draws whose relative standard deviation is
at most ~1, so the ratio of two independent such means fluctuates by
roughly ``sqrt(2)/sqrt(samples)``; a 3-sigma band is
``3 * sqrt(2) / sqrt(samples)``, floored at 2% for float/shape noise.
The aggregate band pools every configuration's budget.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.datasets.registry import load_dataset
from repro.experiments.config import get_config


def parity_band(samples: int) -> float:
    """±band for the indexed/batched work ratio at this sample budget."""
    if samples <= 0:
        return 0.0
    return max(0.02, 3.0 * math.sqrt(2.0) / math.sqrt(samples))

#: A cut of the Figure-6 grid small enough for the smoke tier: one
#: financial network, one near-tree, one sparse SNAP shape.
WORKLOAD = [
    ("guarantee", (2.0, 6.0)),
    ("citation", (4.0, 10.0)),
    ("p2p", (2.0,)),
]


def _detect(graph, k, engine):
    config = get_config()
    detector = BoundedSampleReverseDetector(
        epsilon=config.epsilon,
        delta=config.delta,
        lower_order=config.bound_order,
        upper_order=config.bound_order,
        seed=config.seed,
        engine=engine,
    )
    result = detector.detect(graph, k)
    work = int(result.details["nodes_touched"]) + int(
        result.details["edges_touched"]
    )
    return result, work


@pytest.mark.parametrize("dataset,percents", WORKLOAD)
def test_indexed_matches_batched_on_fig6_workload(dataset, percents):
    config = get_config()
    loaded = load_dataset(dataset, scale=config.scale_override, seed=config.seed)
    total_indexed = total_batched = total_samples = 0
    for percent in percents:
        k = loaded.k_for_percent(percent)
        indexed, indexed_work = _detect(loaded.graph, k, "indexed")
        batched, batched_work = _detect(loaded.graph, k, "batched")
        # Deterministic pipeline stages must agree exactly: the bounds,
        # reduction, and Theorem-5 budget do not depend on the engine.
        assert indexed.samples_used == batched.samples_used
        assert indexed.candidate_size == batched.candidate_size
        assert indexed.k_verified == batched.k_verified
        # Sampling work differs only through the uniforms; the allowed
        # gap shrinks with the configured budget (3-sigma of a ratio of
        # means over `samples` per-world draws).
        band = parity_band(indexed.samples_used)
        if batched_work:
            assert 1 - band <= indexed_work / batched_work <= 1 + band, (
                f"{dataset} k={k}: indexed={indexed_work} "
                f"batched={batched_work} band=±{band:.3f} "
                f"(samples={indexed.samples_used})"
            )
        else:
            assert indexed_work == 0
        total_indexed += indexed_work
        total_batched += batched_work
        total_samples += indexed.samples_used
    if total_batched:
        band = parity_band(total_samples)
        assert 1 - band <= total_indexed / total_batched <= 1 + band, (
            f"{dataset}: aggregate indexed={total_indexed} "
            f"batched={total_batched} band=±{band:.3f} "
            f"(samples={total_samples})"
        )
