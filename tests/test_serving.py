"""Tests for the multi-tenant serving layer.

Covers the COW graph store, event coalescing, the ingestion queue (sync
core and async pump), the sharded serving pool — including the 8-tenant
interleaved bit-identity oracle against a single-threaded reference —
and the RiskService façade plus its RiskControlCenter integration.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.errors import GraphError, ReproError
from repro.core.graph import UncertainGraph
from repro.datasets.registry import load_dataset
from repro.serving import (
    GraphStore,
    IngestionQueue,
    RiskService,
    ServingPool,
    available_modes,
    coalesce_events,
    unique_buffer_bytes,
)
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
    apply_event,
)
from repro.streaming.monitor import TopKMonitor
from repro.streaming.replay import random_patch_stream


@pytest.fixture(scope="module")
def base_graph() -> UncertainGraph:
    """A mid-sized guarantee network shared by the serving tests."""
    return load_dataset("guarantee", scale=0.02, seed=3).graph


def tenant_events(graph, count, seed, drift=0.15):
    """A materialised per-tenant patch stream plus its final shadow."""
    shadow = graph.copy()
    events = []
    for event in random_patch_stream(shadow, count, seed=seed, drift=drift):
        apply_event(shadow, event)
        events.append(event)
    return events, shadow


class TestCoalesce:
    def test_last_write_wins_per_entity(self):
        events = [
            SelfRiskUpdate("a", 0.1),
            EdgeProbabilityUpdate("a", "b", 0.4),
            SelfRiskUpdate("a", 0.3),
            EdgeProbabilityUpdate("a", "b", 0.9),
            SelfRiskUpdate("b", 0.2),
        ]
        out = coalesce_events(events)
        assert len(out) == 3
        assert {e.value for e in out} == {0.3, 0.9, 0.2}

    def test_bulk_absorbs_earlier_singles_of_its_type(self):
        bulk = BulkSelfRiskUpdate(values=np.zeros(3))
        events = [
            SelfRiskUpdate("a", 0.1),
            EdgeProbabilityUpdate("a", "b", 0.4),
            bulk,
            SelfRiskUpdate("b", 0.2),
        ]
        out = coalesce_events(events)
        # Edge update survives (different type); node single before the
        # bulk is absorbed; the one after stays after.
        assert out[0].src == "a" or isinstance(out[0], BulkSelfRiskUpdate)
        kinds = [type(e) for e in out]
        assert kinds.count(BulkSelfRiskUpdate) == 1
        assert out.index(bulk) < out.index(events[3])
        assert len(out) == 3

    def test_repeated_bulks_keep_last(self):
        first = BulkEdgeProbabilityUpdate(values=np.zeros(2))
        second = BulkEdgeProbabilityUpdate(values=np.ones(2))
        out = coalesce_events([first, second])
        assert out == [second]

    def test_unknown_event_rejected(self):
        with pytest.raises(GraphError):
            coalesce_events([object()])

    def test_state_equivalence_on_real_stream(self, base_graph):
        events, _ = tenant_events(base_graph, 30, seed=11)
        # Inject same-entity repeats so coalescing actually collapses.
        events = events + events[:10]
        serial = base_graph.copy()
        for event in events:
            apply_event(serial, event)
        coalesced_graph = base_graph.copy()
        coalesced = coalesce_events(events)
        assert len(coalesced) < len(events)
        for event in coalesced:
            apply_event(coalesced_graph, event)
        assert np.array_equal(
            serial.self_risk_array, coalesced_graph.self_risk_array
        )
        assert np.array_equal(
            serial.edge_array[2], coalesced_graph.edge_array[2]
        )


class TestGraphStore:
    def test_checkout_shares_buffers(self, base_graph):
        store = GraphStore()
        store.put("loans", base_graph.copy())
        views = [store.checkout("loans") for _ in range(20)]
        report = store.memory_report("loans")
        assert report.checkouts == 20
        # 21 graphs but far less than 21 graphs' worth of bytes: the
        # only per-checkout cost is the in-place-patchable CSR probs.
        assert report.dedup_ratio > 3.0
        # Views answer identically and mutate independently.
        label = views[0].labels()[0]
        views[0].set_self_risk(label, 0.987)
        assert views[1].self_risk(label) != 0.987
        assert store.base("loans").self_risk(label) != 0.987

    def test_duplicate_and_unknown_names(self, base_graph):
        store = GraphStore()
        store.put("x", base_graph.copy())
        with pytest.raises(GraphError):
            store.put("x", base_graph.copy())
        with pytest.raises(GraphError):
            store.checkout("y")
        with pytest.raises(GraphError):
            store.base("y")
        assert store.names() == ["x"]
        assert store.checkout_count("x") == 0

    def test_unique_buffer_bytes_dedupes(self, base_graph):
        graph = base_graph.copy()
        graph.out_csr(), graph.in_csr()
        one = unique_buffer_bytes([graph])
        view = graph.share_view()
        both = unique_buffer_bytes([graph, view])
        assert one < both < 2 * one


class TestIngestionQueue:
    def test_submit_drain_coalesces(self):
        queue = IngestionQueue()
        queue.submit("t1", SelfRiskUpdate("a", 0.1))
        queue.submit("t1", SelfRiskUpdate("a", 0.2))
        queue.submit("t2", SelfRiskUpdate("b", 0.3))
        assert queue.pending() == 3
        assert queue.pending("t1") == 2
        batches = queue.drain()
        assert list(batches) == ["t1", "t2"]
        assert len(batches["t1"]) == 1
        assert batches["t1"][0].value == 0.2
        assert queue.pending() == 0
        stats = queue.stats.as_dict()
        assert stats["submitted"] == 3
        assert stats["flushed"] == 2
        assert stats["coalesced_away"] == 1
        assert stats["flushes"] == 1
        assert stats["batches"] == 2

    def test_empty_drain_counts_no_flush(self):
        queue = IngestionQueue()
        assert queue.drain() == {}
        assert queue.stats.flushes == 0

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            IngestionQueue(max_pending=0)

    def test_pump_flushes_on_timer_and_stop(self):
        queue = IngestionQueue()
        seen: list[tuple] = []

        async def scenario():
            stop = asyncio.Event()
            task = asyncio.create_task(
                queue.pump(
                    lambda t, evs: seen.append((t, len(evs))),
                    flush_interval=0.01,
                    stop=stop,
                )
            )
            queue.submit("t", SelfRiskUpdate("a", 0.1))
            await asyncio.sleep(0.05)
            assert seen == [("t", 1)]
            queue.submit("t", SelfRiskUpdate("a", 0.2))
            stop.set()
            await task  # final drain flushes the straggler

        asyncio.run(scenario())
        assert seen == [("t", 1), ("t", 1)]

    def test_pump_wakes_early_at_max_pending(self):
        queue = IngestionQueue(max_pending=3)
        seen: list[int] = []

        async def scenario():
            stop = asyncio.Event()
            task = asyncio.create_task(
                queue.pump(
                    lambda t, evs: seen.append(len(evs)),
                    flush_interval=30.0,  # timer alone would never fire
                    stop=stop,
                )
            )
            await asyncio.sleep(0)
            for i in range(3):
                queue.submit("t", SelfRiskUpdate("a", 0.1 * (i + 1)))
            await asyncio.sleep(0.05)
            assert seen, "backlog at max_pending must wake the pump"
            stop.set()
            await task

        asyncio.run(scenario())


def _reference_answers(graph, streams, k, seed):
    """Single-threaded reference: one monitor per tenant, serial."""
    answers = {}
    for tenant_id, events in streams.items():
        monitor = TopKMonitor(graph.copy(), k, seed=seed, engine="indexed")
        monitor.top_k()
        for batch in events:
            monitor.apply(batch)
        answers[tenant_id] = monitor.top_k()
    return answers


class TestServingPool:
    @pytest.mark.parametrize("mode", available_modes())
    def test_eight_tenants_interleaved_bit_identical(self, base_graph, mode):
        """Interleaved updates/queries across 8 tenants == serial runs."""
        k, seed, tenants = 5, 0, 8
        streams = {
            f"t{i}": [
                batch
                for batch in np.array_split(
                    tenant_events(base_graph, 12, seed=40 + i)[0], 3
                )
            ]
            for i in range(tenants)
        }
        streams = {
            tid: [list(batch) for batch in batches if len(batch)]
            for tid, batches in streams.items()
        }
        reference = _reference_answers(base_graph, streams, k, seed)
        with ServingPool(
            base_graph.copy() if mode != "fork" else base_graph.copy(),
            mode=mode,
            shards=3,
            monitor_defaults={"seed": seed, "engine": "indexed"},
        ) as pool:
            for tid in streams:
                pool.register(tid, k)
            # Interleave: round r of every tenant, queries mixed in.
            mid_queries = {}
            for round_index in range(3):
                futures = [
                    pool.apply(tid, streams[tid][round_index])
                    for tid in streams
                ]
                for future in futures:
                    future.result()
                if round_index == 1:
                    mid_queries = pool.query_all()
            final = pool.query_all()
        for tid in streams:
            assert final[tid].same_answer(reference[tid])
        # Mid-run queries must also match a reference cut mid-stream.
        mid_reference = _reference_answers(
            base_graph,
            {tid: batches[:2] for tid, batches in streams.items()},
            k,
            seed,
        )
        for tid in streams:
            assert mid_queries[tid].nodes == mid_reference[tid].nodes
            assert mid_queries[tid].scores == mid_reference[tid].scores

    def test_per_tenant_fifo_and_errors(self, base_graph):
        with ServingPool(
            base_graph.copy(), mode="serial",
            monitor_defaults={"seed": 0, "engine": "indexed"},
        ) as pool:
            pool.register("a", 3)
            with pytest.raises(ReproError):
                pool.register("a", 3)
            with pytest.raises(ReproError):
                pool.apply("ghost", []).result()
            with pytest.raises(ReproError):
                pool.query("ghost")
            label = base_graph.labels()[0]
            r1 = pool.apply("a", [SelfRiskUpdate(label, 0.4)]).result()
            r2 = pool.apply("a", [SelfRiskUpdate(label, 0.5)]).result()
            assert r1.mode in ("initial", "incremental", "full")
            assert r2.dirty_nodes == 1
            stats = pool.stats()
            assert stats[0]["tenants"] == 1
            assert stats[0]["graph_bytes"] > 0

    def test_bad_mode_and_shards(self, base_graph):
        with pytest.raises(ReproError):
            ServingPool(base_graph.copy(), mode="quantum")
        with pytest.raises(ReproError):
            ServingPool(base_graph.copy(), mode="serial", shards=0)


class TestRiskService:
    def test_read_your_writes_and_bit_identity(self, base_graph):
        events, shadow = tenant_events(base_graph, 10, seed=77)
        with RiskService(
            base_graph.copy(),
            mode="serial",
            monitor_defaults={"seed": 0, "engine": "indexed"},
        ) as service:
            service.register_tenant("p", 5)
            for event in events:
                service.submit_update("p", event)
            assert service.queue.pending("p") == len(events)
            result = service.query_topk("p")  # flushes first
            assert service.queue.pending("p") == 0
            fresh = BoundedSampleReverseDetector(
                seed=0, engine="indexed"
            ).detect(shadow, 5)
            assert result.same_answer(fresh)

    def test_unknown_tenant_and_closed_service(self, base_graph):
        service = RiskService(base_graph.copy(), mode="serial")
        service.register_tenant("p", 3)
        with pytest.raises(ReproError):
            service.submit_update("ghost", SelfRiskUpdate("x", 0.1))
        service.close()
        with pytest.raises(ReproError):
            service.register_tenant("q", 3)
        with pytest.raises(ReproError):
            service.query_topk("p")
        service.close()  # idempotent

    def test_snapshot_telemetry(self, base_graph):
        with RiskService(
            base_graph.copy(),
            mode="serial",
            monitor_defaults={"seed": 0, "engine": "indexed"},
        ) as service:
            service.register_tenant("a", 3)
            service.register_tenant("b", 3)
            label = base_graph.labels()[1]
            service.submit_update("a", SelfRiskUpdate(label, 0.31))
            snap = service.snapshot()
            assert snap.tenants == ("a", "b")
            assert snap.pending["a"] == 1 and snap.pending["b"] == 0
            assert snap.top_k is None
            full = service.snapshot(include_topk=True)
            assert set(full.top_k) == {"a", "b"}
            assert full.queue["submitted"] == 1

    def test_async_serve_loop(self, base_graph):
        events, shadow = tenant_events(base_graph, 8, seed=5)

        async def scenario():
            with RiskService(
                base_graph.copy(),
                mode="serial",
                monitor_defaults={"seed": 0, "engine": "indexed"},
            ) as service:
                service.register_tenant("p", 4)
                stop = asyncio.Event()
                pump = asyncio.create_task(
                    service.serve(flush_interval=0.01, stop=stop)
                )
                for event in events:
                    service.submit_update("p", event)
                    await asyncio.sleep(0)
                await asyncio.sleep(0.05)
                stop.set()
                await pump
                assert service.queue.pending() == 0
                result = service.query_topk("p", flush=False)
                fresh = BoundedSampleReverseDetector(
                    seed=0, engine="indexed"
                ).detect(shadow, 4)
                assert result.same_answer(fresh)

        asyncio.run(scenario())


class TestPipelineIntegration:
    def test_control_center_serves_through_service(self, base_graph):
        from repro.system.pipeline import RiskControlCenter
        from repro.system.rules import BlacklistRule, RuleEngine
        from repro.system.vulnds import VulnDS

        graph = base_graph.copy()
        events, shadow = tenant_events(graph, 8, seed=21)
        with RiskService(
            graph,
            mode="serial",
            monitor_defaults={"seed": 0, "engine": "indexed"},
        ) as service:
            center = RiskControlCenter(
                rule_engine=RuleEngine([BlacklistRule([])]),
                vulnds=VulnDS(graph),
                watch_fraction=0.02,
            )
            tenant_id = center.attach_serving(service)
            assert tenant_id in service.tenants()
            with pytest.raises(ReproError):
                center.attach_serving(service)
            assessment = center.apply_market_update(events)
            fresh = BoundedSampleReverseDetector(
                seed=0, engine="indexed"
            ).detect(shadow, center.watch_k)
            assert assessment.watch_list == tuple(
                str(node) for node in fresh.nodes
            )
            assert center.vulnds.last_assessment is assessment
            kinds = [record.event for record in center.audit_log]
            assert "serving-attached" in kinds
            assert "market-update" in kinds


class TestReviewHardening:
    """Pins the behaviours added by review: weakref checkouts, per-tenant
    drains, base-graph attachment guard, O(1) membership."""

    def test_store_releases_dead_checkouts(self, base_graph):
        import gc

        store = GraphStore()
        store.put("s", base_graph.copy())
        keep = store.checkout("s")
        drop = store.checkout("s")
        assert store.checkout_count("s") == 2
        del drop
        gc.collect()
        assert store.checkout_count("s") == 1
        assert store.memory_report("s").checkouts == 1
        assert keep.num_nodes == base_graph.num_nodes

    def test_drain_tenant_leaves_others_buffered(self):
        queue = IngestionQueue()
        queue.submit("a", SelfRiskUpdate("x", 0.1))
        queue.submit("a", SelfRiskUpdate("x", 0.2))
        queue.submit("b", SelfRiskUpdate("y", 0.3))
        batch = queue.drain_tenant("a")
        assert len(batch) == 1 and batch[0].value == 0.2
        assert queue.pending("a") == 0
        assert queue.pending("b") == 1
        assert queue.drain_tenant("ghost") == []

    def test_query_topk_flushes_only_queried_tenant(self, base_graph):
        with RiskService(
            base_graph.copy(),
            mode="serial",
            monitor_defaults={"seed": 0, "engine": "indexed"},
        ) as service:
            service.register_tenant("a", 3)
            service.register_tenant("b", 3)
            label = base_graph.labels()[0]
            service.submit_update("a", SelfRiskUpdate(label, 0.41))
            service.submit_update("b", SelfRiskUpdate(label, 0.42))
            service.query_topk("a")
            assert service.queue.pending("a") == 0
            assert service.queue.pending("b") == 1

    def test_attach_serving_rejects_mismatched_graph(self, base_graph):
        from repro.system.pipeline import RiskControlCenter
        from repro.system.rules import BlacklistRule, RuleEngine
        from repro.system.vulnds import VulnDS

        other = load_dataset("guarantee", scale=0.01, seed=9).graph
        with RiskService(base_graph.copy(), mode="serial") as service:
            center = RiskControlCenter(
                rule_engine=RuleEngine([BlacklistRule([])]),
                vulnds=VulnDS(other),
                watch_fraction=0.05,
            )
            with pytest.raises(ReproError):
                center.attach_serving(service)
            assert service.tenants() == []

    def test_pool_has_tenant(self, base_graph):
        with ServingPool(base_graph.copy(), mode="serial") as pool:
            assert not pool.has_tenant("t")
            pool.register("t", 2, seed=0, engine="indexed")
            assert pool.has_tenant("t")

    def test_threaded_submit_racing_pump_loses_nothing(self, base_graph):
        """Events submitted from a foreign thread during pump drains all
        arrive (the documented never-drop guarantee)."""
        import threading

        queue = IngestionQueue(max_pending=8)
        received: list = []
        total = 400

        async def scenario():
            stop = asyncio.Event()
            pump = asyncio.create_task(
                queue.pump(
                    lambda t, evs: received.extend(evs),
                    flush_interval=0.001,
                    stop=stop,
                )
            )
            await asyncio.sleep(0)
            worker = threading.Thread(
                target=lambda: [
                    queue.submit("t", SelfRiskUpdate(i, float(i % 7) / 10))
                    for i in range(total)
                ]
            )
            worker.start()
            while worker.is_alive():
                await asyncio.sleep(0.001)
            worker.join()
            await asyncio.sleep(0.02)
            stop.set()
            await pump

        asyncio.run(scenario())
        # Distinct entities coalesce only with themselves; every label
        # must surface exactly once with its final value.
        assert {event.label for event in received} == set(range(total))


class TestCrossTenantResultCache:
    """Identical (graph, params, accepted-history) cohorts share answers."""

    def make_service(self, base_graph, tenants):
        service = RiskService(base_graph, mode="serial")
        for tenant_id in tenants:
            service.register_tenant(tenant_id, 4, seed=0, engine="indexed")
        return service

    def test_cohort_hit_is_bit_identical(self, base_graph):
        service = self.make_service(base_graph, ["a", "b", "c"])
        try:
            first = service.query_topk("a")
            assert service.cache_stats == {"hits": 0, "misses": 1}
            second = service.query_topk("b")
            assert service.cache_stats == {"hits": 1, "misses": 1}
            # The hit IS the cached object — bit-identity is trivial —
            # and it matches what the shard would have computed.
            assert second is first
            fresh = BoundedSampleReverseDetector(
                seed=0, engine="indexed"
            ).detect(base_graph, 4)
            assert second.same_answer(fresh)
        finally:
            service.close()

    def test_update_invalidates_only_the_updated_tenant(self, base_graph):
        service = self.make_service(base_graph, ["a", "b"])
        try:
            baseline = service.query_topk("a")
            assert service.query_topk("b") is baseline
            target = baseline.nodes[0]
            assert service.submit_update(
                "a", SelfRiskUpdate(target, 0.0)
            )
            changed = service.query_topk("a")
            assert not changed.same_answer(baseline)
            assert service.cache_stats["misses"] == 2  # "a" re-computed
            # "b" still serves its original cached answer, bit-identical
            # to a fresh detection over the *unmodified* graph.
            untouched = service.query_topk("b")
            assert untouched is baseline
            # And once "b" accepts the same event, it rejoins the new
            # cohort: same token chain, same cached object as "a".
            assert service.submit_update(
                "b", SelfRiskUpdate(target, 0.0)
            )
            assert service.query_topk("b") is changed
        finally:
            service.close()

    def test_different_params_never_share(self, base_graph):
        service = RiskService(base_graph, mode="serial")
        try:
            service.register_tenant("s0", 4, seed=0, engine="indexed")
            service.register_tenant("s1", 4, seed=1, engine="indexed")
            service.query_topk("s0")
            service.query_topk("s1")
            assert service.cache_stats == {"hits": 0, "misses": 2}
        finally:
            service.close()

    def test_cache_disabled(self, base_graph):
        service = RiskService(base_graph, mode="serial", result_cache_size=0)
        try:
            service.register_tenant("a", 4, seed=0)
            service.register_tenant("b", 4, seed=0)
            service.query_topk("a")
            service.query_topk("b")
            assert service.cache_stats == {"hits": 0, "misses": 0}
        finally:
            service.close()


class TestForkFallback:
    def test_fork_unavailable_falls_back_to_thread(
        self, base_graph, monkeypatch, caplog
    ):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with caplog.at_level("WARNING", logger="repro.serving.pool"):
            pool = ServingPool(base_graph, mode="fork")
        try:
            assert pool.mode == "thread"
            assert any(
                "falling back to 'thread'" in record.message
                for record in caplog.records
            )
            pool.register("t", 3, seed=0)
            assert pool.query("t").result().k == 3
        finally:
            pool.shutdown()

    def test_unknown_mode_still_raises(self, base_graph):
        with pytest.raises(ReproError):
            ServingPool(base_graph, mode="bogus")


class TestStaleQueryNeverBlocks:
    """Regression: ``allow_stale=True`` with *no* snapshot answer used
    to fall through to ``replay.result()`` and block on the WAL replay;
    it must serve the bounds mirror instead."""

    def test_degraded_answer_instead_of_blocking(self, base_graph):
        from concurrent.futures import Future

        service = RiskService(base_graph, mode="serial")
        try:
            service.register_tenant("t", 4, seed=0)
            stuck = Future()  # a replay that never finishes
            service._recovering["t"] = stuck
            assert "t" not in service._stale_results
            started = time.perf_counter()
            result = service.query_topk("t", allow_stale=True)
            assert time.perf_counter() - started < 5.0
            assert result.degraded and result.stale
            assert result.details["bounds_only"]
            assert len(result.nodes) == 4
        finally:
            service._recovering.pop("t", None)
            service.close()

    def test_snapshot_answer_still_preferred(self, base_graph):
        from concurrent.futures import Future

        service = RiskService(base_graph, mode="serial")
        try:
            service.register_tenant("t", 4, seed=0)
            exact = service.query_topk("t")
            service._recovering["t"] = Future()
            service._stale_results["t"] = exact
            result = service.query_topk("t", allow_stale=True)
            assert result.stale and not result.degraded
            assert result.same_answer(exact)
        finally:
            service._recovering.pop("t", None)
            service._stale_results.pop("t", None)
            service.close()


class TestShedOverflowStress:
    """``overflow="shed"`` under concurrent submit/drain: delivered and
    shed events exactly partition the submissions, and each tenant's
    delivered stream stays FIFO."""

    def test_concurrent_submit_drain_partitions_exactly(self):
        import threading

        queue = IngestionQueue(max_pending=16, overflow="shed")
        tenants = [f"t{i}" for i in range(4)]
        per_tenant = 500
        accepted: dict[str, list[int]] = {t: [] for t in tenants}
        delivered: dict[str, list[int]] = {t: [] for t in tenants}
        stop_draining = threading.Event()

        def submitter(tenant: str) -> None:
            for seq in range(per_tenant):
                # Unique label per event => coalescing is the identity,
                # so everything accepted must surface downstream.
                event = SelfRiskUpdate(f"{tenant}:{seq}", 0.5)
                if queue.submit(tenant, event):
                    accepted[tenant].append(seq)

        def drainer() -> None:
            while not stop_draining.is_set():
                for tenant, events in queue.drain().items():
                    delivered[tenant].extend(
                        int(event.label.split(":")[1]) for event in events
                    )

        drain_thread = threading.Thread(target=drainer)
        submit_threads = [
            threading.Thread(target=submitter, args=(tenant,))
            for tenant in tenants
        ]
        drain_thread.start()
        for thread in submit_threads:
            thread.start()
        for thread in submit_threads:
            thread.join()
        stop_draining.set()
        drain_thread.join()
        for tenant, events in queue.drain().items():  # final sweep
            delivered[tenant].extend(
                int(event.label.split(":")[1]) for event in events
            )

        total_submitted = len(tenants) * per_tenant
        total_accepted = sum(len(seqs) for seqs in accepted.values())
        total_delivered = sum(len(seqs) for seqs in delivered.values())
        # Accepted + shed account for every submission...
        assert total_accepted + queue.stats.shed == total_submitted
        # ...every accepted event was delivered exactly once...
        assert total_delivered == total_accepted == queue.stats.submitted
        for tenant in tenants:
            assert delivered[tenant] == accepted[tenant]
            # ...and per-tenant FIFO survived the concurrency.
            assert delivered[tenant] == sorted(delivered[tenant])

    def test_sheds_occur_under_pressure(self):
        queue = IngestionQueue(max_pending=4, overflow="shed")
        outcomes = [
            queue.submit("t", SelfRiskUpdate(f"n{i}", 0.5))
            for i in range(10)
        ]
        assert outcomes == [True] * 4 + [False] * 6
        assert queue.stats.shed == 6
        assert len(queue.drain().get("t", [])) == 4
