"""Tests for repro.utils — tables and timing."""

from __future__ import annotations

import time

from repro.utils.tables import format_cell, render_markdown_table, render_table
from repro.utils.timing import Stopwatch, timed


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_regular(self):
        assert format_cell(0.12345) == "0.1235"

    def test_float_zero(self):
        assert format_cell(0.0) == "0"

    def test_float_extreme_uses_scientific(self):
        assert "e" in format_cell(1234567.0)
        assert "e" in format_cell(0.0000001)

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_columns_inferred_in_order(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}]
        text = render_table(rows)
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b") < header.index("c")

    def test_title_prepended(self):
        text = render_table([{"x": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_missing_cells_blank(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert text  # renders without error

    def test_explicit_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_alignment(self):
        rows = [{"name": "x", "value": 1}, {"name": "longer", "value": 22}]
        lines = render_table(rows).splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table([{"a": 1, "b": 2}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestStopwatch:
    def test_laps_accumulate(self):
        watch = Stopwatch()
        with watch.lap("phase"):
            time.sleep(0.01)
        with watch.lap("phase"):
            time.sleep(0.01)
        assert watch.laps["phase"] >= 0.02
        assert watch.total == sum(watch.laps.values())

    def test_multiple_names(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("b"):
            pass
        assert set(watch.laps) == {"a", "b"}

    def test_lap_records_on_exception(self):
        watch = Stopwatch()
        try:
            with watch.lap("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "failing" in watch.laps


class TestTimed:
    def test_measures_elapsed(self):
        with timed() as cell:
            time.sleep(0.01)
        assert cell[0] >= 0.01
