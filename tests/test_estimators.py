"""Tests for the confidence-interval estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SamplingError
from repro.sampling.estimators import (
    ProbabilityInterval,
    hoeffding_interval,
    wilson_interval,
)


class TestProbabilityInterval:
    def test_width_and_contains(self):
        interval = ProbabilityInterval(0.5, 0.4, 0.6, 0.95)
        assert interval.width == pytest.approx(0.2)
        assert interval.contains(0.45)
        assert not interval.contains(0.39)

    def test_inconsistent_interval_rejected(self):
        with pytest.raises(SamplingError):
            ProbabilityInterval(0.7, 0.4, 0.6, 0.95)


class TestHoeffdingInterval:
    def test_centre_is_empirical_rate(self):
        interval = hoeffding_interval(30, 100)
        assert interval.estimate == pytest.approx(0.3)

    def test_clipped_to_unit_interval(self):
        low = hoeffding_interval(0, 10)
        high = hoeffding_interval(10, 10)
        assert low.lower == 0.0
        assert high.upper == 1.0

    def test_width_shrinks_with_samples(self):
        narrow = hoeffding_interval(500, 1000)
        wide = hoeffding_interval(50, 100)
        assert narrow.width < wide.width

    def test_width_grows_with_confidence(self):
        loose = hoeffding_interval(50, 100, confidence=0.8)
        tight = hoeffding_interval(50, 100, confidence=0.99)
        assert tight.width > loose.width

    def test_input_validation(self):
        with pytest.raises(SamplingError):
            hoeffding_interval(5, 0)
        with pytest.raises(SamplingError):
            hoeffding_interval(11, 10)
        with pytest.raises(SamplingError):
            hoeffding_interval(5, 10, confidence=1.0)

    def test_coverage_statistical(self):
        """~95% of intervals must contain the true rate."""
        rng = np.random.default_rng(0)
        true_p, t = 0.3, 200
        covered = 0
        trials = 300
        for _ in range(trials):
            successes = int(rng.binomial(t, true_p))
            if hoeffding_interval(successes, t).contains(true_p):
                covered += 1
        assert covered / trials > 0.9


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        for successes in (0, 1, 17, 99, 100):
            interval = wilson_interval(successes, 100)
            assert interval.contains(successes / 100)

    def test_tighter_than_hoeffding_near_edges(self):
        wilson = wilson_interval(2, 500)
        hoeffding = hoeffding_interval(2, 500)
        assert wilson.width < hoeffding.width

    def test_nonstandard_confidence_accepted(self):
        interval = wilson_interval(40, 100, confidence=0.925)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_coverage_statistical(self):
        rng = np.random.default_rng(1)
        true_p, t = 0.05, 400  # edge-ish rate, Wilson's home turf
        covered = 0
        trials = 300
        for _ in range(trials):
            successes = int(rng.binomial(t, true_p))
            if wilson_interval(successes, t).contains(true_p):
                covered += 1
        assert covered / trials > 0.9

    @given(st.integers(1, 500), st.data())
    def test_always_well_formed(self, samples, data):
        successes = data.draw(st.integers(0, samples))
        interval = wilson_interval(successes, samples)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0
