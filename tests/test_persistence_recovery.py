"""Service-level durability: snapshots, recovery, staleness, shutdown."""

from __future__ import annotations

import dataclasses
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.errors import ProbabilityError
from repro.core.graph import UncertainGraph
from repro.persistence.codec import PersistenceError
from repro.persistence.snapshots import SnapshotStore
from repro.serving.service import RiskService
from repro.streaming.events import SelfRiskUpdate, apply_events
from repro.streaming.monitor import TopKMonitor

DEFAULTS = {"seed": 42, "epsilon": 0.5}


def make_graph(n=24, seed=7, density=0.14):
    rng = np.random.default_rng(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, float(rng.uniform(0.05, 0.6)))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < density:
                graph.add_edge(src, dst, float(rng.uniform(0.1, 0.9)))
    return graph


def patch_stream(graph, count, seed):
    rng = np.random.default_rng(seed)
    return [
        SelfRiskUpdate(
            int(rng.integers(0, graph.num_nodes)), float(rng.uniform(0, 1))
        )
        for _ in range(count)
    ]


def drive(service, tenants, events, *, flush_every=5, snapshot_at=None):
    for position, event in enumerate(events):
        for tenant_id in tenants:
            service.submit_update(tenant_id, event)
        if (position + 1) % flush_every == 0:
            service.flush()
        if snapshot_at is not None and position == snapshot_at:
            service.snapshot_to_disk()
    service.flush()


def abandon(service):
    """Simulate a crash: release resources without the durable close."""
    service._wal.close()
    service._pool.shutdown()
    service._closed = True


@pytest.fixture
def graph():
    return make_graph()


@pytest.fixture
def events(graph):
    return patch_stream(graph, 30, seed=1)


def reference_answers(graph, events, tenants):
    """Uninterrupted, non-durable run — the bit-identity baseline."""
    service = RiskService(graph, mode="serial", monitor_defaults=DEFAULTS)
    for tenant_id, k in tenants.items():
        service.register_tenant(tenant_id, k)
    drive(service, list(tenants), events)
    answers = {t: service.query_topk(t) for t in tenants}
    stats = service.snapshot().shards[0]["monitor_stats"]
    service.close()
    return answers, stats


class TestRecovery:
    def test_snapshot_plus_replay_is_bit_identical(
        self, graph, events, tmp_path
    ):
        tenants = {"t1": 3, "t2": 5}
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        for tenant_id, k in tenants.items():
            service.register_tenant(tenant_id, k)
        # Snapshot mid-stream: recovery restores it, then replays the
        # WAL suffix past each tenant's watermark.
        drive(service, list(tenants), events, snapshot_at=14)
        abandon(service)

        recovered = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        assert set(recovered.tenants()) == set(tenants)
        baseline, baseline_stats = reference_answers(graph, events, tenants)
        stats = recovered.snapshot().shards[0]["monitor_stats"]
        for tenant_id in tenants:
            answer = recovered.query_topk(tenant_id)
            assert answer.same_answer(baseline[tenant_id])
            assert not answer.stale
            # Work counters match too: the recovered monitor is the
            # same state, not merely the same ranking.
            assert stats[tenant_id] == baseline_stats[tenant_id]
        recovered.close()

    def test_wal_only_recovery_without_any_snapshot(
        self, graph, events, tmp_path
    ):
        tenants = {"solo": 4}
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("solo", 4)
        drive(service, ["solo"], events)
        abandon(service)

        recovered = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        # The tenant came back from its durable registration record.
        assert recovered.tenants() == ["solo"]
        baseline, _ = reference_answers(graph, events, tenants)
        assert recovered.query_topk("solo").same_answer(baseline["solo"])
        recovered.close()

    def test_registration_kwargs_survive(self, graph, tmp_path):
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("picky", 2, epsilon=0.4, bk=8)
        abandon(service)
        recovered = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        answer = recovered.query_topk("picky")
        fresh = TopKMonitor(
            graph.share_view(), 2, seed=42, epsilon=0.4, bk=8
        ).top_k()
        assert answer.same_answer(fresh)
        recovered.close()

    def test_non_json_monitor_kwargs_refused_up_front(self, graph, tmp_path):
        service = RiskService(graph, mode="serial", wal_dir=tmp_path)
        with pytest.raises(PersistenceError, match="JSON"):
            service.register_tenant("t", 2, seed=np.int64(3))
        assert service.tenants() == []  # nothing half-registered
        service.close()

    def test_fingerprint_mismatch_refused(self, graph, events, tmp_path):
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("t1", 3)
        drive(service, ["t1"], events[:10])
        service.snapshot_to_disk()
        abandon(service)
        other = make_graph(seed=99)
        with pytest.raises(PersistenceError, match="fingerprint"):
            RiskService(
                other, mode="serial", wal_dir=tmp_path,
                monitor_defaults=DEFAULTS,
            )


class TestSnapshotRotation:
    def test_keep_bound_and_wal_truncation(self, graph, events, tmp_path):
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path,
            monitor_defaults=DEFAULTS, snapshot_keep=2,
            snapshot_on_close=False,
        )
        service.register_tenant("t1", 3)
        for start in range(0, 30, 10):
            drive(service, ["t1"], events[start:start + 10])
            service.snapshot_to_disk()
        store = SnapshotStore(tmp_path, keep=2)
        snapshot = store.latest()
        assert snapshot is not None and snapshot.index == 3
        snapshots_dir = tmp_path / "snapshots"
        assert len(list(snapshots_dir.glob("snap-*"))) == 2  # rotated
        # Sealed segments behind the watermark were deleted; what's left
        # on disk still recovers to the exact live state.
        baseline, _ = reference_answers(graph, events, {"t1": 3})
        live = service.query_topk("t1")
        assert live.same_answer(baseline["t1"])
        abandon(service)
        recovered = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        assert recovered.query_topk("t1").same_answer(live)
        recovered.close()

    def test_snapshot_requires_durable_service(self, graph):
        service = RiskService(graph, mode="serial")
        with pytest.raises(PersistenceError, match="wal_dir"):
            service.snapshot_to_disk()
        service.close()


class TestStaleServing:
    def test_stale_answer_while_replaying(self, graph, events, tmp_path):
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("t1", 3)
        drive(service, ["t1"], events[:10])
        snapshot_answer = service.query_topk("t1")
        # Freeze a replay in flight: serial mode resolves futures
        # inline, so pin an unresolved one to exercise the stale path.
        replay: Future = Future()
        service._recovering["t1"] = replay
        service._stale_results["t1"] = snapshot_answer

        stale = service.query_topk("t1", flush=False, allow_stale=True)
        assert stale.stale
        assert stale.nodes == snapshot_answer.nodes
        assert dataclasses.replace(stale, stale=False) == snapshot_answer

        # Replay completes -> fresh, non-stale answers again.
        replay.set_result(None)
        fresh = service.query_topk("t1", allow_stale=True)
        assert not fresh.stale
        assert "t1" not in service.recovering_tenants()
        service.close()

    def test_stale_never_leaks_into_fresh_results(self, graph, tmp_path):
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("t1", 3)
        assert service.query_topk("t1").stale is False
        service.close()


class TestGracefulShutdown:
    def test_durable_close_keeps_unflushed_events(
        self, graph, events, tmp_path
    ):
        tenants = {"t1": 3}
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("t1", 3)
        drive(service, ["t1"], events[:25])
        for event in events[25:]:
            service.submit_update("t1", event)
        assert service.queue.pending("t1") == 5
        service.close()  # must flush + apply, not drop

        recovered = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        baseline, _ = reference_answers(graph, events, tenants)
        assert recovered.query_topk("t1").same_answer(baseline["t1"])
        recovered.close()

    def test_close_is_idempotent_and_final(self, graph, tmp_path):
        service = RiskService(graph, mode="serial", wal_dir=tmp_path)
        service.register_tenant("t1", 2)
        service.close()
        service.close()
        from repro.core.errors import ReproError

        with pytest.raises(ReproError, match="closed"):
            service.query_topk("t1")

    def test_snapshot_on_close_makes_recovery_replay_free(
        self, graph, events, tmp_path
    ):
        service = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        service.register_tenant("t1", 3)
        drive(service, ["t1"], events)
        service.close()
        store = SnapshotStore(tmp_path)
        assert store.latest() is not None
        recovered = RiskService(
            graph, mode="serial", wal_dir=tmp_path, monitor_defaults=DEFAULTS
        )
        # Everything was folded into the final snapshot: no suffix left.
        assert recovered.recovering_tenants() == []
        baseline, _ = reference_answers(graph, events, {"t1": 3})
        assert recovered.query_topk("t1").same_answer(baseline["t1"])
        recovered.close()


class TestTransactionalBatches:
    """Satellite regression: a mid-batch invalid event applies nothing."""

    def test_apply_events_is_all_or_nothing(self, graph):
        before = graph.self_risk_array.copy()
        batch = [
            SelfRiskUpdate(0, 0.9),
            SelfRiskUpdate(1, 1.7),  # invalid: > 1
            SelfRiskUpdate(2, 0.1),
        ]
        with pytest.raises(ProbabilityError):
            apply_events(graph, batch)
        assert np.array_equal(graph.self_risk_array, before)

    def test_monitor_apply_is_all_or_nothing(self, graph):
        monitor = TopKMonitor(graph.share_view(), 3, **DEFAULTS)
        untouched = TopKMonitor(graph.share_view(), 3, **DEFAULTS)
        with pytest.raises(ProbabilityError):
            monitor.apply([
                SelfRiskUpdate(0, 0.9),
                SelfRiskUpdate(1, float("nan")),
            ])
        # The failed batch left no partial state: answers and work
        # counters match a monitor that never saw it.
        assert monitor.top_k().same_answer(untouched.top_k())
        assert monitor.stats == untouched.stats
        # And the monitor still works for good batches afterwards.
        monitor.apply([SelfRiskUpdate(0, 0.9)])
        untouched.apply([SelfRiskUpdate(0, 0.9)])
        assert monitor.top_k().same_answer(untouched.top_k())


class TestSnapshotRotationRace:
    """Rotation sweeping must never delete a pinned recovery read."""

    @staticmethod
    def write_snapshot(store, stamp):
        return store.write(
            {"t1": (f"blob-{stamp}".encode(), {"stamp": stamp}, stamp)},
            wal_seq=stamp,
        )

    def test_pinned_snapshot_survives_rotation_past_keep(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        self.write_snapshot(store, 1)
        with store.pin_latest() as pinned:
            assert pinned is not None and pinned.index == 1
            # Two rotations put the pinned snapshot well outside the
            # keep window; the sweep must skip it while we hold the pin.
            self.write_snapshot(store, 2)
            self.write_snapshot(store, 3)
            state = pinned.tenants["t1"]
            assert state.state_path.read_bytes() == b"blob-1"
            assert state.result_path.exists()
        # Unpinned now: the next rotation reclaims it.
        self.write_snapshot(store, 4)
        assert not pinned.path.exists()
        latest = store.latest()
        assert latest is not None and latest.index == 4

    def test_concurrent_rotate_and_recover_never_lose_a_read(
        self, tmp_path
    ):
        import threading

        store = SnapshotStore(tmp_path, keep=1)
        self.write_snapshot(store, 0)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    with store.pin_latest() as snapshot:
                        assert snapshot is not None
                        blob = snapshot.tenants["t1"].state_path.read_bytes()
                        stamp = int(blob.decode().split("-")[1])
                        assert stamp == snapshot.wal_seq
                except Exception as error:  # noqa: BLE001
                    failures.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for stamp in range(1, 40):
                self.write_snapshot(store, stamp)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures
