"""Tests for the SNAP loaders and the checksum-verifying downloader.

No network anywhere: the loader tests run on the fixture files under
``tests/data/snap`` (tiny graphs in the real WikiVote / bitcoin-OTC
schemas) and the downloader tests exercise its hashing/manifest helpers
on temp files.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.registry import load_dataset, table2_rows
from repro.datasets.snap import (
    SNAP_SOURCES,
    degree_stratified_ids,
    find_snap_file,
    load_snap_graph,
    parse_snap_edges,
    snap_data_dir,
)

FIXTURES = Path(__file__).parent / "data" / "snap"
REPO_ROOT = Path(__file__).parent.parent


def _powerlaw_snap_lines(seed: int, n: int = 400, m: int = 1600) -> list[str]:
    """A SNAP-format edge list with power-law degrees and *adversarial*
    id numbering: preferential targets get the highest raw ids, so a
    lowest-id cut loses exactly the hubs."""
    rng = np.random.default_rng(seed)
    # Preferential attachment-ish: destination picked proportional to
    # (index + 1), source uniform; then hubs renumbered to the top.
    dst = rng.choice(n, size=m, p=(np.arange(n) + 1) / (n * (n + 1) / 2))
    src = rng.integers(0, n, size=m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    degree = np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
    renumber = np.empty(n, dtype=np.int64)
    renumber[np.argsort(degree, kind="stable")] = np.arange(n)
    return [f"{renumber[s]}\t{renumber[d]}" for s, d in zip(src, dst)]


def _raw_degrees(
    src: np.ndarray, dst: np.ndarray, raw_ids: np.ndarray
) -> np.ndarray:
    """Total degree of every raw id over the given edges."""
    positions = {int(raw): index for index, raw in enumerate(raw_ids)}
    degrees = np.zeros(raw_ids.size, dtype=np.int64)
    for value in np.concatenate([src, dst]):
        degrees[positions[int(value)]] += 1
    return degrees


def _load_downloader():
    """Import scripts/download_datasets.py as a module."""
    spec = importlib.util.spec_from_file_location(
        "download_datasets", REPO_ROOT / "scripts" / "download_datasets.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("download_datasets", module)
    spec.loader.exec_module(module)
    return module


class TestParser:
    def test_wiki_vote_schema(self):
        with open(FIXTURES / "wiki-Vote.txt", encoding="utf-8") as handle:
            src, dst, report = parse_snap_edges(handle)
        assert report.edges_read == 9
        assert report.self_loops_dropped == 0
        assert report.duplicates_dropped == 0
        assert report.nodes == 7
        assert src.tolist()[:3] == [30, 30, 30]
        assert dst.tolist()[:3] == [1412, 3352, 5254]

    def test_comma_schema_with_extra_columns(self):
        with open(
            FIXTURES / "soc-sign-bitcoinotc.csv", encoding="utf-8"
        ) as handle:
            src, dst, report = parse_snap_edges(handle)
        # One duplicate (13, 16) pair and one self-loop (10, 10) dropped.
        assert report.edges_read == 7
        assert report.self_loops_dropped == 1
        assert report.duplicates_dropped == 1
        assert src.size == dst.size == 5

    def test_comments_and_blank_lines_skipped(self):
        src, dst, report = parse_snap_edges(
            ["# header", "", "1\t2", "  ", "# more", "2 3 extra ignored"]
        )
        assert src.tolist() == [1, 2]
        assert dst.tolist() == [2, 3]
        assert report.nodes == 3

    def test_malformed_lines_rejected(self):
        with pytest.raises(DatasetError):
            parse_snap_edges(["1"])
        with pytest.raises(DatasetError):
            parse_snap_edges(["a b"])


class TestLoader:
    def test_labels_are_sorted_raw_ids(self):
        graph = load_snap_graph(FIXTURES / "wiki-Vote.txt")
        assert graph.labels() == [3, 25, 28, 30, 1412, 3352, 5254]
        assert graph.num_edges == 9
        # Placeholder probabilities until a model assigns them.
        assert np.all(graph.self_risk_array == 0.0)
        assert np.all(graph.edge_array[2] == 1.0)

    def test_max_nodes_induced_subgraph(self):
        graph = load_snap_graph(
            FIXTURES / "wiki-Vote.txt", max_nodes=4, subsample="lowest"
        )
        assert graph.labels() == [3, 25, 28, 30]
        # Only edges among the kept ids survive.
        kept = {(src, dst) for src, dst, _ in graph.edges()}
        assert kept == {(3, 28), (3, 30), (25, 3), (25, 30), (28, 3), (28, 30)}

    def test_max_nodes_unknown_subsample_rejected(self):
        with pytest.raises(DatasetError):
            load_snap_graph(
                FIXTURES / "wiki-Vote.txt", max_nodes=4, subsample="random"
            )

    def test_degree_subsample_is_deterministic(self, tmp_path):
        lines = _powerlaw_snap_lines(seed=3)
        path = tmp_path / "snap.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        first = load_snap_graph(path, max_nodes=120)
        second = load_snap_graph(path, max_nodes=120)
        assert first.labels() == second.labels()
        assert first.num_nodes == 120

    def test_degree_subsample_preserves_degree_distribution(self, tmp_path):
        """Regression for the scaled-loader bias: the degree-stratified
        sample must track the full graph's degree statistics far closer
        than the legacy lowest-raw-id cut.

        The fixture numbers its hubs at *high* raw ids, so the lowest-id
        cut severs them — exactly the failure mode real SNAP numbering
        can produce in either direction.
        """
        lines = _powerlaw_snap_lines(seed=3)
        path = tmp_path / "snap.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with open(path, "r", encoding="utf-8") as handle:
            src, dst, _ = parse_snap_edges(handle)
        raw_ids = np.unique(np.concatenate([src, dst]))
        full_degree = _raw_degrees(src, dst, raw_ids)
        sample = 150

        def sampled_degrees(ids):
            keep = np.isin(src, ids) & np.isin(dst, ids)
            return _raw_degrees(src[keep], dst[keep], ids)

        stratified = degree_stratified_ids(src, dst, raw_ids, sample)
        assert stratified.size == sample
        assert np.isin(stratified, raw_ids).all()
        lowest = raw_ids[:sample]
        full_mean = full_degree.mean()
        stratified_gap = abs(sampled_degrees(stratified).mean() - full_mean)
        lowest_gap = abs(sampled_degrees(lowest).mean() - full_mean)
        assert stratified_gap < lowest_gap
        # The sampled *node* degrees (in the full graph) must mirror the
        # full distribution bucket by bucket: each log2 bucket's share
        # stays within 3 percentage points.
        member_degrees = full_degree[np.searchsorted(raw_ids, stratified)]
        full_buckets = np.floor(np.log2(np.maximum(full_degree, 1)))
        sample_buckets = np.floor(np.log2(np.maximum(member_degrees, 1)))
        for bucket in np.unique(full_buckets):
            full_share = (full_buckets == bucket).mean()
            sample_share = (sample_buckets == bucket).mean()
            assert abs(full_share - sample_share) < 0.03, (
                f"bucket {bucket}: {full_share:.3f} vs {sample_share:.3f}"
            )
        # The hubs live at high raw ids in this fixture; the stratified
        # sample keeps its share of them, the lowest-id cut cannot.
        hub_cut = np.quantile(full_degree, 0.99)
        hubs = raw_ids[full_degree >= hub_cut]
        assert np.isin(hubs, stratified).mean() > np.isin(hubs, lowest).mean()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_snap_graph(tmp_path / "nope.txt")

    def test_edgeless_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_snap_graph(empty)


class TestRegistryIntegration:
    @pytest.fixture(autouse=True)
    def _point_at_fixtures(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(FIXTURES))

    def test_data_dir_override(self):
        assert snap_data_dir() == FIXTURES
        assert find_snap_file("wiki") == FIXTURES / "wiki-Vote.txt"
        assert find_snap_file("p2p") is None  # no fixture for it
        assert find_snap_file("not-a-dataset") is None

    def test_real_file_used_when_present(self):
        loaded = load_dataset("wiki", scale=1.0, seed=0)
        assert loaded.source == "snap"
        assert loaded.graph.num_nodes == 7
        # The uniform probability protocol ran on the real topology.
        assert np.any(loaded.graph.edge_array[2] != 1.0)
        again = load_dataset("wiki", scale=1.0, seed=0)
        assert np.array_equal(
            loaded.graph.edge_array[2], again.graph.edge_array[2]
        )

    def test_synthetic_fallback_when_absent(self):
        loaded = load_dataset("p2p", scale=0.01, seed=0)
        assert loaded.source == "synthetic"

    def test_table2_reports_source(self):
        rows = table2_rows(scale=0.05, seed=0)
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["wiki"]["source"] == "snap"
        assert by_name["guarantee"]["source"] == "synthetic"


class TestDownloader:
    def test_sha256_and_verify(self, tmp_path):
        downloader = _load_downloader()
        path = tmp_path / "blob.txt"
        path.write_bytes(b"hello snap\n")
        digest = downloader.sha256_of(path)
        assert len(digest) == 64
        downloader.verify_file(path, digest)
        with pytest.raises(ValueError):
            downloader.verify_file(path, "0" * 64)

    def test_manifest_round_trip(self, tmp_path):
        downloader = _load_downloader()
        assert downloader.load_manifest(tmp_path) == {}
        downloader.save_manifest(tmp_path, {"b.txt": "2" * 64, "a.txt": "1" * 64})
        manifest = downloader.load_manifest(tmp_path)
        assert list(manifest) == ["a.txt", "b.txt"]

    def test_existing_file_pinned_then_verified(self, tmp_path, capsys):
        downloader = _load_downloader()
        file_name, _ = SNAP_SOURCES["wiki"]
        target = tmp_path / file_name
        target.write_text("# fixture\n1\t2\n", encoding="utf-8")
        manifest = {}
        downloader.download_one("wiki", tmp_path, manifest, force=False)
        assert file_name in manifest  # trust-on-first-use pin
        # Unchanged file passes a re-run...
        downloader.download_one("wiki", tmp_path, manifest, force=False)
        # ...and silent corruption fails loudly.
        target.write_text("tampered\n3\t4\n", encoding="utf-8")
        with pytest.raises(ValueError):
            downloader.download_one("wiki", tmp_path, manifest, force=False)

    def test_verify_only_cli(self, tmp_path):
        downloader = _load_downloader()
        file_name, _ = SNAP_SOURCES["wiki"]
        target = tmp_path / file_name
        target.write_text("# fixture\n1\t2\n", encoding="utf-8")
        downloader.save_manifest(
            tmp_path, {file_name: downloader.sha256_of(target)}
        )
        assert downloader.main(["--verify-only", "--dest", str(tmp_path), "wiki"]) == 0
        target.write_text("tampered\n", encoding="utf-8")
        assert downloader.main(["--verify-only", "--dest", str(tmp_path), "wiki"]) == 1

    def test_unknown_dataset_rejected(self, tmp_path):
        downloader = _load_downloader()
        with pytest.raises(SystemExit):
            downloader.main(["--dest", str(tmp_path), "enron"])
