"""Property-based tests (hypothesis) for cross-module invariants.

These generate random small uncertain graphs and assert the structural
relationships the paper's machinery depends on: Equation-(1) monotonicity,
bound bracketing, candidate-reduction completeness, sampler agreement
with the exact oracle, and top-k determinism.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import bound_pair, lower_bounds, upper_bounds
from repro.core.eq1 import apply_eq1, dag_default_probabilities
from repro.core.exact import exact_default_probabilities, exact_top_k
from repro.core.graph import UncertainGraph
from repro.core.topk import top_k_indices
from repro.core.worlds import enumerate_world_blocks, enumerate_worlds
from repro.sampling.forward import ForwardSampler

# Hypothesis example generation over exact world enumeration used to make
# this the heaviest module in the suite; the bit-parallel oracle collapsed
# it to a couple of seconds, so it runs in the smoke tier again.


@st.composite
def small_uncertain_graphs(draw, max_nodes=6, dag_only=False):
    """Random graphs small enough for exact enumeration."""
    n = draw(st.integers(2, max_nodes))
    risks = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    graph = UncertainGraph()
    for i, risk in enumerate(risks):
        graph.add_node(i, risk)
    possible_edges = [
        (s, d)
        for s in range(n)
        for d in range(n)
        if s != d and (not dag_only or s < d)
    ]
    budget = max(0, 12 - n)  # keep n + m small for enumeration
    count = draw(st.integers(0, min(len(possible_edges), budget)))
    chosen = draw(
        st.lists(
            st.sampled_from(possible_edges),
            min_size=count,
            max_size=count,
            unique=True,
        )
    ) if possible_edges else []
    for s, d in chosen:
        graph.add_edge(s, d, draw(st.floats(0.0, 1.0, allow_nan=False)))
    return graph


@st.composite
def tree_graphs(draw, max_nodes=8):
    """Random out-trees — the regime where Eq.(1) is exact."""
    n = draw(st.integers(2, max_nodes))
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, draw(st.floats(0.01, 0.9)))
    for child in range(1, n):
        parent = draw(st.integers(0, child - 1))
        graph.add_edge(parent, child, draw(st.floats(0.05, 0.95)))
    return graph


class TestWorldSemantics:
    @given(small_uncertain_graphs())
    def test_world_masses_sum_to_one(self, graph):
        total = sum(mass for _, mass in enumerate_worlds(graph))
        assert abs(total - 1.0) < 1e-9

    @given(small_uncertain_graphs())
    def test_exact_probabilities_dominate_self_risk(self, graph):
        exact = exact_default_probabilities(graph)
        assert np.all(exact >= graph.self_risk_array - 1e-12)
        assert np.all(exact <= 1.0 + 1e-12)

    @given(small_uncertain_graphs(), st.integers(0, 4))
    def test_block_enumeration_matches_scalar_bit_for_bit(self, graph, shift):
        """Property form of the engine equivalence: every Gray-code block
        row reproduces the scalar generator's realisation and mass exactly
        (not approximately), for arbitrary block sizes."""
        scalar = list(enumerate_worlds(graph))
        seen = []
        for block in enumerate_world_blocks(graph, block_worlds=1 << shift):
            for j in range(block.num_worlds):
                index = int(block.indices[j])
                seen.append(index)
                world = block.world(j)
                reference_world, reference_mass = scalar[index]
                assert np.array_equal(
                    world.self_default, reference_world.self_default
                )
                assert np.array_equal(
                    world.edge_survives, reference_world.edge_survives
                )
                assert float(block.masses[j]) == reference_mass
        assert sorted(seen) == list(range(len(scalar)))

    @given(small_uncertain_graphs())
    def test_exact_engines_agree(self, graph):
        block = exact_default_probabilities(graph, engine="block")
        reference = exact_default_probabilities(graph, engine="reference")
        assert np.allclose(block, reference, rtol=0.0, atol=1e-12)


class TestEq1Properties:
    @given(small_uncertain_graphs())
    def test_operator_monotone(self, graph):
        n = graph.num_nodes
        low = apply_eq1(graph, np.zeros(n))
        high = apply_eq1(graph, np.ones(n))
        assert np.all(low <= high + 1e-12)

    @given(small_uncertain_graphs())
    def test_operator_bounded(self, graph):
        out = apply_eq1(graph, graph.self_risk_array)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.0 + 1e-12)

    @given(tree_graphs())
    def test_eq1_exact_on_trees(self, graph):
        eq1 = dag_default_probabilities(graph)
        exact = exact_default_probabilities(graph)
        assert np.allclose(eq1, exact, atol=1e-9)


class TestBoundProperties:
    @given(small_uncertain_graphs(), st.integers(1, 4))
    def test_lower_below_upper(self, graph, order):
        lower, upper = bound_pair(graph, order, order)
        assert np.all(lower <= upper + 1e-12)

    @given(small_uncertain_graphs())
    def test_lower_monotone_in_order(self, graph):
        l1 = lower_bounds(graph, 1)
        l2 = lower_bounds(graph, 2)
        l3 = lower_bounds(graph, 3)
        assert np.all(l1 <= l2 + 1e-12)
        assert np.all(l2 <= l3 + 1e-12)

    @given(small_uncertain_graphs())
    def test_upper_monotone_in_order(self, graph):
        u1 = upper_bounds(graph, 1)
        u2 = upper_bounds(graph, 2)
        u3 = upper_bounds(graph, 3)
        assert np.all(u1 >= u2 - 1e-12)
        assert np.all(u2 >= u3 - 1e-12)

    @given(tree_graphs())
    def test_bounds_bracket_exact_on_trees(self, graph):
        exact = exact_default_probabilities(graph)
        for order in (1, 2, 3):
            assert np.all(lower_bounds(graph, order) <= exact + 1e-9)
            assert np.all(upper_bounds(graph, order) >= exact - 1e-9)


class TestCandidateProperties:
    @given(tree_graphs(), st.integers(1, 3))
    def test_reduction_never_loses_true_answers(self, graph, k):
        if k > graph.num_nodes:
            return
        lower, upper = bound_pair(graph, 2, 2)
        reduction = reduce_candidates(graph, lower, upper, k)
        survivors = set(reduction.verified) | set(reduction.candidates)
        exact = exact_default_probabilities(graph)
        # Every node strictly above the k-th value must survive; boundary
        # ties may legitimately be swapped for one another.
        kth_value = np.sort(exact)[-k]
        for node in np.flatnonzero(exact > kth_value + 1e-9):
            assert int(node) in survivors

    @given(tree_graphs(), st.integers(1, 3))
    def test_k_prime_le_k_and_candidates_suffice(self, graph, k):
        if k > graph.num_nodes:
            return
        lower, upper = bound_pair(graph, 2, 2)
        reduction = reduce_candidates(graph, lower, upper, k)
        assert reduction.k_verified <= k
        assert reduction.candidate_size >= reduction.k_remaining


class TestSamplerProperties:
    @given(small_uncertain_graphs(max_nodes=5), st.integers(0, 2**31 - 1))
    @settings(max_examples=10)
    def test_forward_sampler_tracks_exact(self, graph, seed):
        exact = exact_default_probabilities(graph)
        t = 3000
        estimate = ForwardSampler(graph, seed=seed).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        # 5-sigma normal band plus a 5/t absolute term: near p ∈ {0, 1}
        # the binomial is Poisson-like and sigma underestimates the
        # discrete granularity of a t-sample frequency.
        assert np.all(np.abs(estimate - exact) <= 5 * sigma + 5.0 / t)


class TestTopKProperties:
    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=30),
        st.data(),
    )
    def test_topk_returns_maximal_values(self, scores, data):
        k = data.draw(st.integers(1, len(scores)))
        chosen = top_k_indices(scores, k)
        chosen_set = set(int(i) for i in chosen)
        threshold = min(scores[i] for i in chosen_set)
        for index, value in enumerate(scores):
            if index not in chosen_set:
                assert value <= threshold + 1e-12

    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=30),
        st.data(),
    )
    def test_topk_deterministic(self, scores, data):
        k = data.draw(st.integers(1, len(scores)))
        first = list(top_k_indices(scores, k))
        second = list(top_k_indices(list(scores), k))
        assert first == second

    @given(tree_graphs())
    def test_exact_topk_prefix_property(self, graph):
        """top-(k) is always a prefix of top-(k+1)."""
        n = graph.num_nodes
        previous: list = []
        for k in range(1, n + 1):
            current = exact_top_k(graph, k)
            assert current[: len(previous)] == previous
            previous = current
