"""Smoke tests: every example script runs end to end on small inputs.

Examples are the library's contract with new users — they must never
rot.  Each test invokes the example's ``main()`` with scaled-down
arguments and asserts on landmark output."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

# These end-to-end runs dominate suite runtime; deselect with -m "not slow".
pytestmark = pytest.mark.slow


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module (they are not a package)."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(monkeypatch, capsys, name: str, argv: list[str]) -> str:
    module = load_example(name)
    monkeypatch.setattr(sys, "argv", [f"{name}.py", *argv])
    module.main()
    return capsys.readouterr().out


class TestExamplesRun:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart", [])
        assert "p(B) = 0.23200" in out
        assert "BSRBK" in out

    def test_guaranteed_loan_risk(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch,
            capsys,
            "guaranteed_loan_risk",
            ["--scale", "0.01", "--k-percent", "5", "--seed", "3"],
        )
        assert "Watch list" in out
        assert "precision@" in out

    def test_interbank_stress_test(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch,
            capsys,
            "interbank_stress_test",
            ["--samples", "800", "--seed", "3"],
        )
        assert "Stress scenario" in out
        assert "Total spillover" in out

    def test_fraud_screening(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch,
            capsys,
            "fraud_screening",
            ["--scale", "0.02", "--seed", "3"],
        )
        assert "Algorithm 4" in out
        assert "Fraud watch list" in out

    def test_default_prediction_study(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch,
            capsys,
            "default_prediction_study",
            ["--nodes", "220", "--seed", "3"],
        )
        assert "AUC(2015)" in out
        assert "BSRBK" in out

    def test_vulnds_pipeline(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch,
            capsys,
            "vulnds_pipeline",
            ["--scale", "0.015", "--applications", "8", "--seed", "3"],
        )
        assert "Loan decisions" in out
        assert "Audit trail" in out

    def test_risk_attribution(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch,
            capsys,
            "risk_attribution",
            ["--scale", "0.012", "--samples", "600", "--seed", "3"],
        )
        assert "Intervention ranking" in out
        assert "expected defaults prevented" in out
