"""Tests for the supplementary convergence experiment."""

from __future__ import annotations

import pytest

from repro.experiments.convergence import BUDGETS, error_curve, guarantee_check


class TestErrorCurve:
    @pytest.fixture(scope="class")
    def rows(self):
        return error_curve(
            "citation", scale=0.05, seed=5, truth_samples=4000
        )

    def test_one_row_per_budget(self, rows):
        assert [row["samples"] for row in rows] == list(BUDGETS)

    def test_error_decreases_overall(self, rows):
        assert float(rows[-1]["mae"]) < float(rows[0]["mae"])

    def test_normalised_error_bounded(self, rows):
        normalised = [float(row["mae*sqrt(t)"]) for row in rows]
        assert max(normalised) / min(normalised) < 5.0


class TestGuaranteeCheck:
    def test_guarantee_holds_empirically(self):
        result = guarantee_check(
            "citation",
            scale=0.05,
            epsilon=0.3,
            delta=0.1,
            trials=8,
            seed=5,
            truth_samples=4000,
        )
        assert result["meets_guarantee"]
        assert result["violations"] <= result["trials"]
        assert result["budget(Eq.3)"] >= 1

    def test_reports_configuration(self):
        result = guarantee_check(
            "citation", scale=0.05, trials=2, seed=6, truth_samples=2000
        )
        assert result["epsilon"] == 0.3
        assert result["delta"] == 0.1
        assert result["k"] >= 1
