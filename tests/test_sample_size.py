"""Tests for repro.sampling.sample_size — Equations (3) and (4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SamplingError
from repro.sampling.sample_size import (
    basic_sample_size,
    epsilon_for_sample_size,
    hoeffding_pair_tail,
    reduced_sample_size,
    validate_epsilon_delta,
)


class TestValidation:
    def test_accepts_open_interval(self):
        assert validate_epsilon_delta(0.3, 0.1) == (0.3, 0.1)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_epsilon(self, epsilon):
        with pytest.raises(SamplingError):
            validate_epsilon_delta(epsilon, 0.1)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(SamplingError):
            validate_epsilon_delta(0.3, delta)


class TestHoeffdingTail:
    def test_hand_computed(self):
        assert hoeffding_pair_tail(100, 0.3) == pytest.approx(
            math.exp(-100 * 0.09 / 2)
        )

    def test_zero_samples_gives_trivial_bound(self):
        assert hoeffding_pair_tail(0, 0.3) == pytest.approx(1.0)

    def test_negative_samples_rejected(self):
        with pytest.raises(SamplingError):
            hoeffding_pair_tail(-1, 0.3)

    @given(st.integers(1, 10_000), st.floats(0.01, 0.99))
    def test_tail_in_unit_interval(self, t, epsilon):
        tail = hoeffding_pair_tail(t, epsilon)
        # exp(-t eps^2/2) can underflow to exactly 0.0 for huge t*eps^2.
        assert 0.0 <= tail <= 1.0

    @given(st.floats(0.01, 0.99))
    def test_decreasing_in_t(self, epsilon):
        assert hoeffding_pair_tail(200, epsilon) < hoeffding_pair_tail(
            100, epsilon
        )


class TestBasicSampleSize:
    def test_paper_settings_hand_computed(self):
        """eps=0.3, delta=0.1, n=1000, k=50: t = ceil(2/0.09 ln(47500/0.1))."""
        expected = math.ceil(2 / 0.09 * math.log(50 * 950 / 0.1))
        assert basic_sample_size(1000, 50, 0.3, 0.1) == expected

    def test_always_at_least_one(self):
        assert basic_sample_size(1, 1, 0.9, 0.9) >= 1

    def test_degenerate_k_equals_n(self):
        # Nothing to order; formula degenerates gracefully.
        assert basic_sample_size(10, 10, 0.3, 0.1) >= 1

    def test_invalid_k_rejected(self):
        with pytest.raises(SamplingError):
            basic_sample_size(10, 11, 0.3, 0.1)
        with pytest.raises(SamplingError):
            basic_sample_size(10, -1, 0.3, 0.1)

    @given(st.integers(2, 100_000))
    def test_monotone_in_n(self, n):
        k = max(1, n // 10)
        smaller = basic_sample_size(n, k, 0.3, 0.1)
        larger = basic_sample_size(2 * n, k, 0.3, 0.1)
        assert larger >= smaller

    @given(st.floats(0.05, 0.5), st.floats(0.05, 0.5))
    def test_monotone_in_epsilon(self, epsilon, smaller_epsilon):
        lo, hi = sorted((epsilon, smaller_epsilon))
        if lo == hi:
            return
        assert basic_sample_size(1000, 50, lo, 0.1) >= basic_sample_size(
            1000, 50, hi, 0.1
        )

    @given(st.floats(0.01, 0.5), st.floats(0.01, 0.5))
    def test_monotone_in_delta(self, delta, other_delta):
        lo, hi = sorted((delta, other_delta))
        if lo == hi:
            return
        assert basic_sample_size(1000, 50, 0.3, lo) >= basic_sample_size(
            1000, 50, 0.3, hi
        )


class TestReducedSampleSize:
    def test_matches_basic_when_nothing_verified(self):
        # |B| = n, k' = 0 reduces to Equation (3).
        assert reduced_sample_size(1000, 50, 0, 0.3, 0.1) == basic_sample_size(
            1000, 50, 0.3, 0.1
        )

    def test_shrinks_with_verification(self):
        full = reduced_sample_size(500, 50, 0, 0.3, 0.1)
        partial = reduced_sample_size(500, 50, 30, 0.3, 0.1)
        assert partial < full

    def test_all_verified_needs_one_sample(self):
        assert reduced_sample_size(500, 50, 50, 0.3, 0.1) == 1

    def test_shrinks_with_candidate_reduction(self):
        big = reduced_sample_size(10_000, 50, 0, 0.3, 0.1)
        small = reduced_sample_size(100, 50, 0, 0.3, 0.1)
        assert small < big

    def test_invalid_k_verified(self):
        with pytest.raises(SamplingError):
            reduced_sample_size(100, 50, 51, 0.3, 0.1)
        with pytest.raises(SamplingError):
            reduced_sample_size(100, 50, -1, 0.3, 0.1)


class TestEpsilonInversion:
    def test_round_trip(self):
        t = basic_sample_size(1000, 50, 0.3, 0.1)
        epsilon = epsilon_for_sample_size(t, 1000, 50, 0.1)
        # t was rounded up, so the implied epsilon is at most 0.3.
        assert epsilon <= 0.3 + 1e-9
        assert epsilon > 0.25

    def test_more_samples_better_epsilon(self):
        worse = epsilon_for_sample_size(100, 1000, 50, 0.1)
        better = epsilon_for_sample_size(10_000, 1000, 50, 0.1)
        assert better < worse

    def test_rejects_nonpositive_t(self):
        with pytest.raises(SamplingError):
            epsilon_for_sample_size(0, 1000, 50, 0.1)
