"""Tests for repro.core.eq1 — the Equation (1) operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eq1 import (
    apply_eq1,
    dag_default_probabilities,
    iterate_eq1,
    topological_order,
)
from repro.core.errors import GraphError
from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph


class TestApplyEq1:
    def test_one_step_from_self_risks_matches_paper(self, paper_graph):
        """Applying Eq.(1) with p(x) = ps(x) gives the paper's p(B)."""
        result = apply_eq1(paper_graph, paper_graph.self_risk_array)
        assert result[paper_graph.index("B")] == pytest.approx(0.232)

    def test_no_in_neighbors_returns_self_risk(self, paper_graph):
        result = apply_eq1(paper_graph, paper_graph.self_risk_array)
        assert result[paper_graph.index("A")] == pytest.approx(0.2)

    def test_two_in_neighbors_hand_computed(self):
        graph = UncertainGraph()
        graph.add_node("u", 0.5)
        graph.add_node("w", 0.4)
        graph.add_node("v", 0.1)
        graph.add_edge("u", "v", 0.6)
        graph.add_edge("w", "v", 0.3)
        result = apply_eq1(graph, graph.self_risk_array)
        expected = 1 - (1 - 0.1) * (1 - 0.6 * 0.5) * (1 - 0.3 * 0.4)
        assert result[graph.index("v")] == pytest.approx(expected)

    def test_input_of_ones(self, paper_graph):
        result = apply_eq1(paper_graph, np.ones(5))
        b = paper_graph.index("B")
        assert result[b] == pytest.approx(1 - 0.8 * 0.8)

    def test_certain_edge_and_certain_neighbor_forces_default(self):
        graph = UncertainGraph()
        graph.add_node("u", 1.0)
        graph.add_node("v", 0.0)
        graph.add_edge("u", "v", 1.0)
        result = apply_eq1(graph, graph.self_risk_array)
        assert result[graph.index("v")] == pytest.approx(1.0)

    def test_shape_validation(self, paper_graph):
        with pytest.raises(GraphError):
            apply_eq1(paper_graph, np.zeros(3))

    def test_empty_graph(self):
        graph = UncertainGraph()
        assert apply_eq1(graph, np.zeros(0)).shape == (0,)

    def test_monotone_in_input(self, paper_graph):
        low = apply_eq1(paper_graph, np.full(5, 0.1))
        high = apply_eq1(paper_graph, np.full(5, 0.9))
        assert np.all(high >= low - 1e-12)

    def test_output_in_unit_interval(self, small_random_graph):
        result = apply_eq1(
            small_random_graph, small_random_graph.self_risk_array
        )
        assert np.all(result >= 0.0)
        assert np.all(result <= 1.0)


class TestIterateEq1:
    def test_converges_on_dag(self, paper_graph):
        fixed_point, iterations = iterate_eq1(paper_graph)
        assert iterations < 100
        again = apply_eq1(paper_graph, fixed_point)
        assert np.allclose(again, fixed_point, atol=1e-9)

    def test_monotone_nondecreasing_from_self_risks(self, small_random_graph):
        current = small_random_graph.self_risk_array
        for _ in range(5):
            updated = apply_eq1(small_random_graph, current)
            assert np.all(updated >= current - 1e-12)
            current = updated

    def test_custom_start(self, paper_graph):
        fixed_point, _ = iterate_eq1(paper_graph, start=np.ones(5))
        # Starting from 1 must land at or above the from-below fixed point.
        from_below, _ = iterate_eq1(paper_graph)
        assert np.all(fixed_point >= from_below - 1e-9)

    def test_max_iter_respected(self, small_random_graph):
        _, iterations = iterate_eq1(small_random_graph, max_iter=3, tol=0.0)
        assert iterations == 3


class TestTopologicalOrder:
    def test_chain_order(self, chain_graph):
        order = topological_order(chain_graph)
        labels = [chain_graph.label(i) for i in order]
        assert labels == ["a", "b", "c", "d"]

    def test_respects_edges(self, paper_graph):
        order = topological_order(paper_graph)
        position = {node: i for i, node in enumerate(order)}
        for src, dst, _ in paper_graph.edges():
            assert position[paper_graph.index(src)] < position[
                paper_graph.index(dst)
            ]

    def test_cycle_detected(self):
        graph = UncertainGraph()
        graph.add_node("x", 0.1)
        graph.add_node("y", 0.1)
        graph.add_edge("x", "y", 0.5)
        graph.add_edge("y", "x", 0.5)
        with pytest.raises(GraphError, match="cycle"):
            topological_order(graph)


class TestDagProbabilities:
    def test_matches_iterated_fixed_point(self, paper_graph):
        direct = dag_default_probabilities(paper_graph)
        iterated, _ = iterate_eq1(paper_graph)
        assert np.allclose(direct, iterated, atol=1e-9)

    def test_exact_on_tree(self):
        """On trees Eq.(1) equals the possible-world probability exactly."""
        graph = UncertainGraph()
        graph.add_node("root", 0.3)
        graph.add_node("left", 0.1)
        graph.add_node("right", 0.2)
        graph.add_node("leaf", 0.05)
        graph.add_edge("root", "left", 0.5)
        graph.add_edge("root", "right", 0.4)
        graph.add_edge("left", "leaf", 0.6)
        eq1 = dag_default_probabilities(graph)
        exact = exact_default_probabilities(graph)
        assert np.allclose(eq1, exact, atol=1e-12)

    def test_diamond_overestimates_exact(self, diamond_graph):
        """Shared ancestors → positive correlation → Eq.(1) over-counts."""
        eq1 = dag_default_probabilities(diamond_graph)
        exact = exact_default_probabilities(diamond_graph)
        d = diamond_graph.index("D")
        assert eq1[d] >= exact[d] - 1e-12
        # And strictly so for this configuration:
        assert eq1[d] > exact[d]
