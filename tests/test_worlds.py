"""Tests for repro.core.worlds — possible-world semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph
from repro.core.worlds import (
    DEFAULT_MAX_CHOICES,
    PossibleWorld,
    enumerate_world_blocks,
    enumerate_worlds,
    propagate_defaults,
    world_probability,
)


def make_world(graph, default_labels, surviving_edges):
    """Helper: build a PossibleWorld from label-level descriptions."""
    self_default = np.zeros(graph.num_nodes, dtype=bool)
    for label in default_labels:
        self_default[graph.index(label)] = True
    src, dst, _ = graph.edge_array
    edge_survives = np.zeros(graph.num_edges, dtype=bool)
    for s_label, d_label in surviving_edges:
        s, d = graph.index(s_label), graph.index(d_label)
        for eid in range(graph.num_edges):
            if src[eid] == s and dst[eid] == d:
                edge_survives[eid] = True
    return PossibleWorld(self_default=self_default, edge_survives=edge_survives)


class TestPossibleWorld:
    def test_requires_boolean_arrays(self):
        with pytest.raises(GraphError):
            PossibleWorld(
                self_default=np.zeros(2, dtype=float),
                edge_survives=np.zeros(1, dtype=bool),
            )


class TestPropagation:
    def test_no_defaults(self, paper_graph):
        world = make_world(paper_graph, [], [])
        assert not propagate_defaults(paper_graph, world).any()

    def test_isolated_self_default(self, paper_graph):
        world = make_world(paper_graph, ["E"], [])
        defaulted = propagate_defaults(paper_graph, world)
        assert defaulted[paper_graph.index("E")]
        assert defaulted.sum() == 1

    def test_contagion_follows_surviving_edges(self, paper_graph):
        world = make_world(paper_graph, ["A"], [("A", "B"), ("B", "E")])
        defaulted = propagate_defaults(paper_graph, world)
        expected = {"A", "B", "E"}
        actual = {
            paper_graph.label(i) for i in np.flatnonzero(defaulted)
        }
        assert actual == expected

    def test_contagion_blocked_by_dead_edges(self, paper_graph):
        world = make_world(paper_graph, ["A"], [("B", "E")])
        defaulted = propagate_defaults(paper_graph, world)
        assert defaulted.sum() == 1  # B never defaults, so B->E is moot

    def test_surviving_edge_from_healthy_node_is_inert(self, paper_graph):
        world = make_world(paper_graph, [], [("A", "B"), ("B", "E")])
        assert not propagate_defaults(paper_graph, world).any()

    def test_multiple_seeds_union(self, chain_graph):
        world = make_world(chain_graph, ["a", "c"], [("c", "d")])
        defaulted = propagate_defaults(chain_graph, world)
        labels = {chain_graph.label(i) for i in np.flatnonzero(defaulted)}
        assert labels == {"a", "c", "d"}

    def test_shape_validation(self, paper_graph):
        bad = PossibleWorld(
            self_default=np.zeros(3, dtype=bool),
            edge_survives=np.zeros(6, dtype=bool),
        )
        with pytest.raises(GraphError):
            propagate_defaults(paper_graph, bad)
        bad_edges = PossibleWorld(
            self_default=np.zeros(5, dtype=bool),
            edge_survives=np.zeros(2, dtype=bool),
        )
        with pytest.raises(GraphError):
            propagate_defaults(paper_graph, bad_edges)


class TestWorldProbability:
    def test_hand_computed(self, chain_graph):
        # a defaults; edges a->b survives, others die.
        world = make_world(chain_graph, ["a"], [("a", "b")])
        # p = ps(a) (1-ps(b)) (1-ps(c)) (1-ps(d)) * pe(ab) (1-pe(bc)) (1-pe(cd))
        expected = 0.5 * 0.9 * 1.0 * 0.8 * 0.8 * 0.4 * 0.6
        assert world_probability(chain_graph, world) == pytest.approx(expected)

    def test_all_worlds_sum_to_one(self, chain_graph):
        total = sum(p for _, p in enumerate_worlds(chain_graph))
        assert total == pytest.approx(1.0)

    def test_all_worlds_sum_to_one_paper_graph(self, paper_graph):
        total = sum(p for _, p in enumerate_worlds(paper_graph))
        assert total == pytest.approx(1.0)


class TestEnumeration:
    def test_enumeration_size(self, chain_graph):
        # ps(c) == 0 is pinned, so 3 free nodes + 3 free edges = 64 worlds.
        worlds = list(enumerate_worlds(chain_graph))
        assert len(worlds) == 2**6

    def test_deterministic_choices_are_pinned(self):
        graph = UncertainGraph()
        graph.add_node("sure", 1.0)
        graph.add_node("never", 0.0)
        graph.add_edge("sure", "never", 1.0)
        worlds = list(enumerate_worlds(graph))
        assert len(worlds) == 1
        world, mass = worlds[0]
        assert mass == pytest.approx(1.0)
        assert world.self_default[graph.index("sure")]
        assert not world.self_default[graph.index("never")]
        assert world.edge_survives.all()

    def test_cap_enforced(self, paper_graph):
        with pytest.raises(GraphError, match="capped"):
            list(enumerate_worlds(paper_graph, max_choices=5))

    def test_default_cap_is_at_least_28(self):
        assert DEFAULT_MAX_CHOICES >= 28


def pinned_mix_graph() -> UncertainGraph:
    """Free, pinned-0 and pinned-1 choices plus an isolated node."""
    graph = UncertainGraph()
    graph.add_node("free", 0.3)
    graph.add_node("sure", 1.0)
    graph.add_node("never", 0.0)
    graph.add_node("island", 0.7)  # isolated: no incident edges
    graph.add_edge("free", "sure", 0.4)
    graph.add_edge("sure", "never", 1.0)
    graph.add_edge("never", "free", 0.0)
    graph.add_edge("sure", "free", 0.6)
    return graph


def free_choice_count(graph: UncertainGraph) -> int:
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    return int(((ps > 0) & (ps < 1)).sum() + ((pe > 0) & (pe < 1)).sum())


class TestBlockEnumeration:
    """The bit-parallel engine must match the scalar generator *exactly*."""

    def collect(self, graph, **kwargs):
        rows = []
        for block in enumerate_world_blocks(graph, **kwargs):
            assert block.self_default.shape[0] == block.num_worlds
            for j in range(block.num_worlds):
                rows.append(
                    (int(block.indices[j]), block.world(j), float(block.masses[j]))
                )
        return rows

    @pytest.mark.parametrize("block_worlds", [1, 2, 8, 4096])
    def test_matches_scalar_enumeration_bit_for_bit(
        self, chain_graph, block_worlds
    ):
        scalar = list(enumerate_worlds(chain_graph))
        rows = self.collect(chain_graph, block_worlds=block_worlds)
        assert sorted(index for index, _, _ in rows) == list(range(len(scalar)))
        for index, world, mass in rows:
            reference_world, reference_mass = scalar[index]
            assert np.array_equal(
                world.self_default, reference_world.self_default
            )
            assert np.array_equal(
                world.edge_survives, reference_world.edge_survives
            )
            assert mass == reference_mass  # bit-identical, not approx

    def test_pinned_choices_and_isolated_nodes(self):
        graph = pinned_mix_graph()
        scalar = list(enumerate_worlds(graph))
        rows = self.collect(graph, block_worlds=4)
        assert len(rows) == len(scalar) == 2 ** free_choice_count(graph)
        for index, world, mass in rows:
            reference_world, reference_mass = scalar[index]
            assert np.array_equal(
                world.self_default, reference_world.self_default
            )
            assert np.array_equal(
                world.edge_survives, reference_world.edge_survives
            )
            assert mass == reference_mass

    def test_masses_bit_equal_world_probability(self, paper_graph):
        """Gray-code incremental masses == from-scratch recomputation."""
        for block in enumerate_world_blocks(paper_graph, block_worlds=256):
            recomputed = np.array(
                [
                    world_probability(paper_graph, block.world(j))
                    for j in range(block.num_worlds)
                ]
            )
            assert np.array_equal(block.masses, recomputed)

    def test_gray_code_one_flip_between_consecutive_worlds(self, chain_graph):
        """Successive worlds — across block boundaries too — differ in
        exactly one free choice."""
        rows = self.collect(chain_graph, block_worlds=8)
        ps = chain_graph.self_risk_array
        _, _, pe = chain_graph.edge_array
        free_nodes = (ps > 0) & (ps < 1)
        free_edges = (pe > 0) & (pe < 1)
        for (_, a, _), (_, b, _) in zip(rows, rows[1:]):
            flips = int(
                (a.self_default[free_nodes] != b.self_default[free_nodes]).sum()
                + (a.edge_survives[free_edges] != b.edge_survives[free_edges]).sum()
            )
            assert flips == 1

    def test_block_sizing(self, chain_graph):
        # 6 free choices = 64 worlds; block_worlds=20 rounds down to 16.
        blocks = list(enumerate_world_blocks(chain_graph, block_worlds=20))
        assert [block.num_worlds for block in blocks] == [16, 16, 16, 16]
        oversized = list(enumerate_world_blocks(chain_graph, block_worlds=10**6))
        assert [block.num_worlds for block in oversized] == [64]

    def test_masses_sum_to_one(self, paper_graph):
        total = sum(
            block.masses.sum()
            for block in enumerate_world_blocks(paper_graph, block_worlds=64)
        )
        assert total == pytest.approx(1.0)

    def test_deterministic_graph_single_world(self):
        graph = UncertainGraph()
        graph.add_node("sure", 1.0)
        graph.add_node("never", 0.0)
        graph.add_edge("sure", "never", 1.0)
        blocks = list(enumerate_world_blocks(graph))
        assert len(blocks) == 1 and blocks[0].num_worlds == 1
        assert blocks[0].masses[0] == 1.0
        world = blocks[0].world(0)
        assert world.self_default.tolist() == [True, False]
        assert world.edge_survives.tolist() == [True]

    def test_cap_enforced(self, paper_graph):
        with pytest.raises(GraphError, match="capped"):
            list(enumerate_world_blocks(paper_graph, max_choices=5))

    def test_invalid_block_worlds(self, paper_graph):
        with pytest.raises(GraphError, match="block_worlds"):
            list(enumerate_world_blocks(paper_graph, block_worlds=0))
