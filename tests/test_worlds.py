"""Tests for repro.core.worlds — possible-world semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph
from repro.core.worlds import (
    PossibleWorld,
    enumerate_worlds,
    propagate_defaults,
    world_probability,
)


def make_world(graph, default_labels, surviving_edges):
    """Helper: build a PossibleWorld from label-level descriptions."""
    self_default = np.zeros(graph.num_nodes, dtype=bool)
    for label in default_labels:
        self_default[graph.index(label)] = True
    src, dst, _ = graph.edge_array
    edge_survives = np.zeros(graph.num_edges, dtype=bool)
    for s_label, d_label in surviving_edges:
        s, d = graph.index(s_label), graph.index(d_label)
        for eid in range(graph.num_edges):
            if src[eid] == s and dst[eid] == d:
                edge_survives[eid] = True
    return PossibleWorld(self_default=self_default, edge_survives=edge_survives)


class TestPossibleWorld:
    def test_requires_boolean_arrays(self):
        with pytest.raises(GraphError):
            PossibleWorld(
                self_default=np.zeros(2, dtype=float),
                edge_survives=np.zeros(1, dtype=bool),
            )


class TestPropagation:
    def test_no_defaults(self, paper_graph):
        world = make_world(paper_graph, [], [])
        assert not propagate_defaults(paper_graph, world).any()

    def test_isolated_self_default(self, paper_graph):
        world = make_world(paper_graph, ["E"], [])
        defaulted = propagate_defaults(paper_graph, world)
        assert defaulted[paper_graph.index("E")]
        assert defaulted.sum() == 1

    def test_contagion_follows_surviving_edges(self, paper_graph):
        world = make_world(paper_graph, ["A"], [("A", "B"), ("B", "E")])
        defaulted = propagate_defaults(paper_graph, world)
        expected = {"A", "B", "E"}
        actual = {
            paper_graph.label(i) for i in np.flatnonzero(defaulted)
        }
        assert actual == expected

    def test_contagion_blocked_by_dead_edges(self, paper_graph):
        world = make_world(paper_graph, ["A"], [("B", "E")])
        defaulted = propagate_defaults(paper_graph, world)
        assert defaulted.sum() == 1  # B never defaults, so B->E is moot

    def test_surviving_edge_from_healthy_node_is_inert(self, paper_graph):
        world = make_world(paper_graph, [], [("A", "B"), ("B", "E")])
        assert not propagate_defaults(paper_graph, world).any()

    def test_multiple_seeds_union(self, chain_graph):
        world = make_world(chain_graph, ["a", "c"], [("c", "d")])
        defaulted = propagate_defaults(chain_graph, world)
        labels = {chain_graph.label(i) for i in np.flatnonzero(defaulted)}
        assert labels == {"a", "c", "d"}

    def test_shape_validation(self, paper_graph):
        bad = PossibleWorld(
            self_default=np.zeros(3, dtype=bool),
            edge_survives=np.zeros(6, dtype=bool),
        )
        with pytest.raises(GraphError):
            propagate_defaults(paper_graph, bad)
        bad_edges = PossibleWorld(
            self_default=np.zeros(5, dtype=bool),
            edge_survives=np.zeros(2, dtype=bool),
        )
        with pytest.raises(GraphError):
            propagate_defaults(paper_graph, bad_edges)


class TestWorldProbability:
    def test_hand_computed(self, chain_graph):
        # a defaults; edges a->b survives, others die.
        world = make_world(chain_graph, ["a"], [("a", "b")])
        # p = ps(a) (1-ps(b)) (1-ps(c)) (1-ps(d)) * pe(ab) (1-pe(bc)) (1-pe(cd))
        expected = 0.5 * 0.9 * 1.0 * 0.8 * 0.8 * 0.4 * 0.6
        assert world_probability(chain_graph, world) == pytest.approx(expected)

    def test_all_worlds_sum_to_one(self, chain_graph):
        total = sum(p for _, p in enumerate_worlds(chain_graph))
        assert total == pytest.approx(1.0)

    def test_all_worlds_sum_to_one_paper_graph(self, paper_graph):
        total = sum(p for _, p in enumerate_worlds(paper_graph))
        assert total == pytest.approx(1.0)


class TestEnumeration:
    def test_enumeration_size(self, chain_graph):
        # ps(c) == 0 is pinned, so 3 free nodes + 3 free edges = 64 worlds.
        worlds = list(enumerate_worlds(chain_graph))
        assert len(worlds) == 2**6

    def test_deterministic_choices_are_pinned(self):
        graph = UncertainGraph()
        graph.add_node("sure", 1.0)
        graph.add_node("never", 0.0)
        graph.add_edge("sure", "never", 1.0)
        worlds = list(enumerate_worlds(graph))
        assert len(worlds) == 1
        world, mass = worlds[0]
        assert mass == pytest.approx(1.0)
        assert world.self_default[graph.index("sure")]
        assert not world.self_default[graph.index("never")]
        assert world.edge_survives.all()

    def test_cap_enforced(self, paper_graph):
        with pytest.raises(GraphError, match="capped"):
            list(enumerate_worlds(paper_graph, max_choices=5))
