"""Tests for the SLO-enforced network front end.

Unit-level: the HTTP slice parser, the update-event wire codec, the
token bucket and EWMA cost model (fake clocks throughout), the client's
jittered backoff.  End-to-end: a real :class:`FrontendServer` over a
real :class:`RiskService` on a loopback socket — auth, exact answers
over the wire, 429 + ``Retry-After`` shedding, degraded bounds-only
answers under tight budgets, and the stats reconciliation invariant.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading

import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.errors import FrontendError
from repro.datasets.registry import load_dataset
from repro.frontend import (
    AdmissionController,
    EwmaCostModel,
    FrontendClient,
    FrontendServer,
    FrontendStats,
    TokenBucket,
    event_from_json,
    event_to_json,
    read_request,
)
from repro.frontend.client import CircuitOpenError, ClientResponse
from repro.serving import RiskService
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
)
from repro.streaming.monitor import RefreshReport


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def parse_bytes(raw: bytes):
    """Run the async request parser over a canned byte string."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(scenario())


class TestProtocol:
    def test_parses_request_with_body(self):
        body = json.dumps({"tenant": "t"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            b"Authorization: Bearer secret\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        request = parse_bytes(raw)
        assert request.method == "POST"
        assert request.path == "/v1/query"
        assert request.headers["authorization"] == "Bearer secret"
        assert request.json() == {"tenant": "t"}
        assert request.keep_alive  # HTTP/1.1 default

    def test_connection_close_is_honoured(self):
        request = parse_bytes(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"NONSENSE\r\n\r\n",  # malformed request line
            b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort",
            b"GET /x HTTP/1.1\r\nConte",  # closed mid-request
        ],
    )
    def test_malformed_requests_raise(self, raw):
        with pytest.raises(FrontendError):
            parse_bytes(raw)

    def test_oversize_body_rejected(self):
        from repro.frontend.protocol import MAX_BODY_BYTES

        raw = (
            b"POST /x HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        with pytest.raises(FrontendError):
            parse_bytes(raw)

    @pytest.mark.parametrize(
        "event",
        [
            SelfRiskUpdate("sme_1", 0.25),
            EdgeProbabilityUpdate("a", "b", 0.75),
            BulkSelfRiskUpdate(values=[0.1, 0.2, 0.3]),
            BulkEdgeProbabilityUpdate(values=[0.4, 0.5]),
        ],
    )
    def test_event_codec_roundtrip(self, event):
        encoded = event_to_json(event)
        json.dumps(encoded)  # must be wire-serialisable
        decoded = event_from_json(encoded)
        assert type(decoded) is type(event)
        assert event_to_json(decoded) == encoded

    def test_event_codec_rejects_junk(self):
        with pytest.raises(FrontendError):
            event_from_json({"type": "mystery"})
        with pytest.raises(FrontendError):
            event_from_json({"type": "self_risk"})  # missing fields
        with pytest.raises(FrontendError):
            event_from_json("not an object")


# ----------------------------------------------------------------------
# Admission control (fake clocks)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        # 2 tokens/s: after 0.5s exactly one token exists.
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_acquire() for _ in range(3)] == [
            True, True, False,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


def report(elapsed: float, worlds: int) -> RefreshReport:
    return RefreshReport(
        mode="frontend",
        reason="test",
        dirty_nodes=0,
        dirty_edges=0,
        bounds_recomputed=0,
        reduction_reused=True,
        sampling="observed",
        worlds_repaired=worlds,
        samples=worlds,
        elapsed_seconds=elapsed,
    )


class TestEwmaCostModel:
    def test_cold_model_predicts_none(self):
        model = EwmaCostModel()
        assert model.predict("t") is None

    def test_base_plus_marginal_decomposition(self):
        model = EwmaCostModel(alpha=1.0)  # no smoothing: last sample wins
        model.observe("t", report(elapsed=0.010, worlds=0))
        # Base-only tenant history: expected worlds folded to 0.
        assert model.predict("t") == pytest.approx(0.010)
        model.observe("t", report(elapsed=0.110, worlds=100))
        # marginal = (0.110 - 0.010) / 100 = 1ms/world; expected = 100.
        assert model.predict("t") == pytest.approx(0.010 + 0.001 * 100)
        # A tenant the model never saw pays only the shared base cost.
        assert model.predict("other") == pytest.approx(0.010)

    def test_smoothing_converges(self):
        model = EwmaCostModel(alpha=0.5)
        for _ in range(20):
            model.observe("t", report(elapsed=0.040, worlds=0))
        assert model.predict("t") == pytest.approx(0.040, rel=1e-3)

    def test_validation_and_snapshot(self):
        with pytest.raises(ValueError):
            EwmaCostModel(alpha=0.0)
        model = EwmaCostModel()
        model.observe("t", report(elapsed=0.01, worlds=0))
        snap = model.snapshot()
        assert snap["base_seconds"] == pytest.approx(0.01)
        assert snap["tenants_tracked"] == 1


class TestAdmissionController:
    def test_rate_rejection_carries_honest_retry_hint(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate_limit=1.0, burst=1.0, clock=clock
        )
        assert controller.admit("t").admitted
        decision = controller.admit("t")
        assert not decision.admitted
        assert decision.reason == "rate"
        assert decision.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert controller.admit("t").admitted

    def test_tenants_have_independent_buckets(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate_limit=1.0, burst=1.0, clock=clock
        )
        assert controller.admit("a").admitted
        assert not controller.admit("a").admitted
        assert controller.admit("b").admitted

    def test_backlog_rejection(self):
        controller = AdmissionController(
            rate_limit=100.0, queue_depth_limit=10
        )
        assert controller.admit("t", queue_depth=10).admitted
        decision = controller.admit("t", queue_depth=11)
        assert not decision.admitted and decision.reason == "backlog"

    def test_inflight_slots(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.acquire_slot() and controller.acquire_slot()
        assert not controller.acquire_slot()
        controller.release_slot()
        assert controller.acquire_slot()
        assert controller.inflight == 2


class TestFrontendStats:
    def test_reconciliation_invariant(self):
        stats = FrontendStats()
        for counter, count in [
            ("received", 10),
            ("completed", 3),
            ("degraded", 2),
            ("timeouts", 1),  # double-counts inside degraded
            ("rejected_rate", 2),
            ("rejected_capacity", 1),
            ("auth_failures", 1),
            ("bad_requests", 1),
        ]:
            stats.bump(counter, count)
        assert stats.accounted() == stats.received == 10
        assert stats.as_dict()["timeouts"] == 1


# ----------------------------------------------------------------------
# Client backoff policy (no sockets, no sleeping)
# ----------------------------------------------------------------------
class TestClientBackoff:
    def make_client(self, outcomes, **kwargs):
        """A client whose transport replays *outcomes* (no network)."""
        sleeps: list[float] = []
        client = FrontendClient(
            "127.0.0.1",
            1,
            "tok",
            tenant="t",
            sleep=sleeps.append,
            rng=random.Random(7),
            **kwargs,
        )
        script = iter(outcomes)

        def fake_once(method, path, payload):
            outcome = next(script)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._once = fake_once
        return client, sleeps

    def test_retry_after_replaces_computed_backoff(self):
        throttled = ClientResponse(429, {"error": "rate"}, {"retry-after": "0.25"})
        ok = ClientResponse(200, {"ok": True}, {})
        client, sleeps = self.make_client([throttled, throttled, ok])
        response = client.request("POST", "/v1/query", {})
        assert response.ok
        assert sleeps == [0.25, 0.25]  # server's hint, verbatim

    def test_exponential_jittered_backoff_without_hint(self):
        error = ConnectionRefusedError("down")
        ok = ClientResponse(200, None, {})
        client, sleeps = self.make_client(
            [error, error, error, ok], backoff=0.1, backoff_cap=10.0
        )
        assert client.request("GET", "/healthz").ok
        assert len(sleeps) == 3
        for attempt, delay in enumerate(sleeps):
            window = 0.1 * (2.0 ** attempt)
            assert 0.5 * window <= delay <= window
        # Windows double, so later delays can exceed earlier ceilings.
        assert sleeps[2] > sleeps[0]

    def test_gives_up_and_surfaces_last_429(self):
        throttled = ClientResponse(429, {"error": "rate"}, {"retry-after": "0.01"})
        client, sleeps = self.make_client([throttled] * 3, retries=3)
        response = client.request("POST", "/v1/query", {})
        assert response.status == 429
        assert len(sleeps) == 2  # no sleep after the final attempt

    def test_connection_failures_raise_after_retries(self):
        client, _ = self.make_client(
            [ConnectionRefusedError("down")] * 2, retries=2
        )
        with pytest.raises(FrontendError, match="failed after 2 attempts"):
            client.request("GET", "/healthz")

    def test_non_retryable_status_returns_immediately(self):
        unauthorized = ClientResponse(401, {"error": "unauthorized"}, {})
        client, sleeps = self.make_client([unauthorized])
        assert client.request("POST", "/v1/query", {}).status == 401
        assert sleeps == []


# ----------------------------------------------------------------------
# Client retry budget and circuit breaker (fake clock, no sockets)
# ----------------------------------------------------------------------
class TestClientBudgetAndBreaker:
    def make_client(self, outcomes, **kwargs):
        """Scripted transport + a clock that only sleeps advance."""

        class Clock:
            now = 0.0

        def sleep(seconds):
            Clock.now += seconds

        client = FrontendClient(
            "127.0.0.1",
            1,
            "tok",
            tenant="t",
            sleep=sleep,
            clock=lambda: Clock.now,
            rng=random.Random(7),
            **kwargs,
        )
        script = iter(outcomes)
        calls: list[str] = []

        def fake_once(method, path, payload):
            calls.append(path)
            outcome = next(script)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._once = fake_once
        return client, Clock, calls

    def test_budget_exhaustion_stops_before_the_sleep(self):
        # Each retry wants a 0.25 s Retry-After; a 0.4 s budget admits
        # exactly one sleep — the second would overrun, so the client
        # surfaces the last 429 with attempts left unspent.
        throttled = ClientResponse(429, {"error": "rate"}, {"retry-after": "0.25"})
        client, clock, calls = self.make_client(
            [throttled] * 5, retries=5, retry_budget=0.4
        )
        response = client.request("POST", "/v1/query", {})
        assert response.status == 429
        assert len(calls) == 2  # not the full 5-attempt schedule
        assert clock.now <= 0.4

    def test_budget_exhaustion_with_transport_errors_raises(self):
        error = ConnectionRefusedError("down")
        client, clock, calls = self.make_client(
            [error] * 5,
            retries=5,
            backoff=0.2,
            backoff_cap=0.2,
            retry_budget=0.3,
        )
        with pytest.raises(FrontendError, match="failed after"):
            client.request("GET", "/healthz")
        assert len(calls) < 5
        assert clock.now <= 0.3

    def test_generous_budget_changes_nothing(self):
        error = ConnectionRefusedError("down")
        ok = ClientResponse(200, None, {})
        client, _, calls = self.make_client(
            [error, ok], retry_budget=60.0
        )
        assert client.request("GET", "/healthz").ok
        assert len(calls) == 2

    def test_breaker_opens_after_threshold_and_fails_fast(self):
        error = ConnectionRefusedError("down")
        client, clock, calls = self.make_client(
            [error] * 6,
            retries=1,  # isolate the breaker from retry behaviour
            breaker_threshold=3,
            breaker_cooldown=5.0,
        )
        for _ in range(3):
            with pytest.raises(FrontendError):
                client.request("GET", "/healthz")
        assert client.breaker_state == "open"
        # While open, requests fail fast without touching the wire.
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/healthz")
        assert len(calls) == 3

    def test_half_open_probe_success_closes_the_circuit(self):
        error = ConnectionRefusedError("down")
        ok = ClientResponse(200, {"ok": True}, {})
        client, clock, calls = self.make_client(
            [error, error, ok, ok],
            retries=1,
            breaker_threshold=2,
            breaker_cooldown=1.0,
        )
        for _ in range(2):
            with pytest.raises(FrontendError):
                client.request("GET", "/healthz")
        assert client.breaker_state == "open"
        clock.now += 1.5  # cooldown elapses -> next call is the probe
        assert client.request("GET", "/healthz").ok
        assert client.breaker_state == "closed"
        # Fully closed again: the next request flows normally.
        assert client.request("GET", "/healthz").ok
        assert len(calls) == 4

    def test_half_open_probe_failure_reopens_for_another_cooldown(self):
        error = ConnectionRefusedError("down")
        client, clock, calls = self.make_client(
            [error] * 4,
            retries=1,
            breaker_threshold=2,
            breaker_cooldown=1.0,
        )
        for _ in range(2):
            with pytest.raises(FrontendError):
                client.request("GET", "/healthz")
        clock.now += 1.5
        with pytest.raises(FrontendError):  # the probe itself fails
            client.request("GET", "/healthz")
        assert client.breaker_state == "open"
        with pytest.raises(CircuitOpenError):  # re-opened, fail fast
            client.request("GET", "/healthz")
        assert len(calls) == 3

    def test_429_counts_as_alive_not_failure(self):
        # Backpressure is not death: a stream of 429s must never open
        # the breaker, only 503s and transport errors do.
        throttled = ClientResponse(429, {"error": "rate"}, {"retry-after": "0.01"})
        client, _, calls = self.make_client(
            [throttled] * 4, retries=2, breaker_threshold=2
        )
        for _ in range(2):
            assert client.request("POST", "/v1/query", {}).status == 429
        assert client.breaker_state == "closed"
        assert len(calls) == 4

    def test_503_opens_the_breaker(self):
        fenced = ClientResponse(
            503, {"error": "fenced", "fenced": True}, {"retry-after": "0.05"}
        )
        client, _, _ = self.make_client(
            [fenced] * 4, retries=2, breaker_threshold=2
        )
        client.request("POST", "/v1/update", {})
        assert client.breaker_state == "open"


# ----------------------------------------------------------------------
# End to end over a loopback socket
# ----------------------------------------------------------------------
TOKENS = {"alpha": "alpha-secret", "beta": "beta-secret"}


@pytest.fixture(scope="module")
def frontend_graph():
    return load_dataset("guarantee", scale=0.02, seed=5).graph


class ServerHarness:
    """A FrontendServer on its own event-loop thread."""

    def __init__(self, service, **kwargs):
        kwargs.setdefault("flush_interval", 0.01)
        self.server = FrontendServer(service, TOKENS, **kwargs)
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(30), "server failed to start"
        return self.server

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def quiet_client(server, token="alpha-secret", tenant="alpha", **kwargs):
    kwargs.setdefault("sleep", lambda _delay: None)
    return FrontendClient(
        "127.0.0.1", server.port, token, tenant=tenant, **kwargs
    )


class TestEndToEnd:
    @pytest.fixture()
    def service(self, frontend_graph):
        service = RiskService(frontend_graph, mode="serial")
        for tenant in TOKENS:
            service.register_tenant(tenant, 4, seed=0, engine="indexed")
        yield service
        service.close()

    def test_auth_and_exact_answers_over_the_wire(
        self, service, frontend_graph
    ):
        with ServerHarness(service, rate_limit=500.0) as server:
            client = quiet_client(server)
            assert client.healthz()

            # Wrong token, unknown tenant, and a *valid* token presented
            # for someone else's tenant are all 401s.
            assert quiet_client(server, token="wrong").query().status == 401
            assert (
                quiet_client(server, tenant="nobody").query().status == 401
            )
            assert (
                quiet_client(server, token="beta-secret").query().status
                == 401
            )

            # The served answer is bit-identical to a fresh detection.
            response = client.query()
            assert response.ok and not response.payload["degraded"]
            fresh = BoundedSampleReverseDetector(
                seed=0, engine="indexed"
            ).detect(frontend_graph, 4)
            assert response.payload["result"]["nodes"] == fresh.nodes
            assert "x-elapsed-ms" in response.headers

            # An update flows through ingestion, and the next answer is
            # bit-identical to fresh detection over the patched graph.
            outsider = next(
                frontend_graph.label(i)
                for i in range(frontend_graph.num_nodes)
                if frontend_graph.label(i) not in fresh.nodes
            )
            accepted = client.update(SelfRiskUpdate(outsider, 0.99))
            assert accepted.status == 202 and accepted.payload["accepted"]
            shadow = frontend_graph.copy()
            shadow.set_self_risk(outsider, 0.99)
            patched = BoundedSampleReverseDetector(
                seed=0, engine="indexed"
            ).detect(shadow, 4)
            changed = client.query()
            assert changed.ok
            assert changed.payload["result"]["nodes"] == patched.nodes
            assert outsider in patched.nodes  # the update actually bit

    def test_rate_limit_sheds_with_retry_after(self, service):
        with ServerHarness(
            service, rate_limit=0.5, burst=1.0
        ) as server:
            impatient = quiet_client(server, retries=1)
            assert impatient.healthz()  # unauthenticated, never limited
            assert impatient.query().ok  # consumes the single token
            throttled = impatient.query()
            assert throttled.status == 429
            assert float(throttled.headers["retry-after"]) > 0.0
            assert throttled.payload["error"].startswith("rejected: rate")

            # A polite client waits out Retry-After (virtually — the
            # injected sleep records instead of sleeping) and
            # eventually lands; with rate=0.5 the recorded waits must
            # come from the server's hint, not the client's guess.
            waits: list[float] = []

            def virtual_sleep(delay):
                waits.append(delay)
                import time as _time

                _time.sleep(min(delay, 2.5))

            patient = quiet_client(
                server, retries=8, sleep=virtual_sleep
            )
            response = patient.query()
            assert response.ok
            assert waits, "client never backed off"
            stats = patient.stats()
            assert stats["frontend"]["rejected_rate"] >= 1
            assert stats["accounted"] == stats["frontend"]["received"]

    def test_tight_budget_serves_degraded_bounds(self, service):
        with ServerHarness(service, rate_limit=500.0) as server:
            client = quiet_client(server)
            # Warm the cost model with observed full queries.
            for _ in range(3):
                assert client.query(budget_ms=60_000).ok
            response = client.query(budget_ms=0.01)
            assert response.ok
            payload = response.payload
            assert payload["degraded"]
            assert payload["degraded_reason"] in ("predicted", "deadline")
            assert payload["result"]["degraded"]
            assert payload["result"]["details"]["bounds_only"]
            assert len(payload["result"]["nodes"]) == 4
            # Bounds-consistency of the wire answer: every reported
            # node's upper bound clears the k-th lower bound.
            details = payload["result"]["details"]
            assert all(
                upper >= details["threshold_lower"] - 1e-12
                for upper in details["bounds_upper"]
            )
            # Opting out of degradation gets the honest slow answer.
            strict = client.query(budget_ms=0.01, allow_degraded=False)
            assert strict.ok and not strict.payload["degraded"]

    def test_unknown_route_and_bad_json_are_contained(self, service):
        with ServerHarness(service, rate_limit=500.0) as server:
            client = quiet_client(server, retries=1)
            assert client.request("GET", "/v1/nope").status == 404
            # A raw malformed request must cost a 400, not the server.
            import http.client as http_client

            connection = http_client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            try:
                connection.request(
                    "POST",
                    "/v1/query",
                    body="{not json",
                    headers={"Authorization": "Bearer alpha-secret"},
                )
                assert connection.getresponse().status == 400
            finally:
                connection.close()
            assert client.healthz()  # still alive
            stats = client.stats()
            frontend = stats["frontend"]
            assert frontend["bad_requests"] >= 1
            assert stats["accounted"] == frontend["received"]

    def test_capacity_rejection_when_saturated(self, service, monkeypatch):
        with ServerHarness(
            service, rate_limit=500.0, max_inflight=2
        ) as server:
            # Exhaust the slots out-of-band: every full query must now
            # shed with 429/capacity instead of queueing.
            assert server.admission.acquire_slot()
            assert server.admission.acquire_slot()
            client = quiet_client(server, retries=1)
            response = client.query(allow_degraded=False)
            assert response.status == 429
            assert response.payload["error"] == "rejected: capacity"
            assert float(response.headers["retry-after"]) > 0.0
            server.admission.release_slot()
            server.admission.release_slot()
            assert client.query().ok
