"""Tests for the analysis extensions (contagion analytics, what-if)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contagion import (
    attribution,
    default_correlation,
    systemic_importance,
)
from repro.analysis.whatif import (
    cut_guarantee_impact,
    derisk_impact,
    rank_interventions,
)
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph


@pytest.fixture
def hub_graph():
    """A risky hub infecting three safe leaves."""
    graph = UncertainGraph()
    graph.add_node("hub", 0.6)
    for i in range(3):
        graph.add_node(f"leaf{i}", 0.02)
        graph.add_edge("hub", f"leaf{i}", 0.8)
    return graph


class TestSystemicImportance:
    def test_hub_dominates(self, hub_graph):
        importance = systemic_importance(hub_graph, samples=1500, seed=0)
        hub = hub_graph.index("hub")
        assert importance[hub] == max(importance)
        # Expected downstream defaults of the hub ~ ps * 3 * 0.8 = 1.44.
        assert importance[hub] == pytest.approx(0.6 * 3 * 0.8, abs=0.2)

    def test_leaves_near_zero(self, hub_graph):
        importance = systemic_importance(hub_graph, samples=1500, seed=1)
        for i in range(3):
            assert importance[hub_graph.index(f"leaf{i}")] < 0.05

    def test_credit_split_between_seeds(self):
        """Two certain seeds feeding one sink share the credit."""
        graph = UncertainGraph()
        graph.add_node("s1", 1.0)
        graph.add_node("s2", 1.0)
        graph.add_node("sink", 0.0)
        graph.add_edge("s1", "sink", 1.0)
        graph.add_edge("s2", "sink", 1.0)
        importance = systemic_importance(graph, samples=200, seed=2)
        assert importance[graph.index("s1")] == pytest.approx(0.5)
        assert importance[graph.index("s2")] == pytest.approx(0.5)

    def test_invalid_samples(self, hub_graph):
        with pytest.raises(SamplingError):
            systemic_importance(hub_graph, samples=0)


class TestDefaultCorrelation:
    def test_matrix_shape_and_diagonal(self, hub_graph):
        labels = ["hub", "leaf0", "leaf1"]
        corr = default_correlation(hub_graph, labels, samples=1500, seed=0)
        assert corr.shape == (3, 3)
        assert np.allclose(np.diag(corr), 1.0)

    def test_symmetric(self, hub_graph):
        corr = default_correlation(
            hub_graph, ["hub", "leaf0"], samples=1000, seed=1
        )
        assert corr[0, 1] == pytest.approx(corr[1, 0])

    def test_shared_parent_induces_positive_correlation(self, hub_graph):
        corr = default_correlation(
            hub_graph, ["leaf0", "leaf1"], samples=3000, seed=2
        )
        assert corr[0, 1] > 0.2  # leaves co-default through the hub

    def test_independent_nodes_uncorrelated(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.4)
        graph.add_node("b", 0.4)
        corr = default_correlation(graph, ["a", "b"], samples=4000, seed=3)
        assert abs(corr[0, 1]) < 0.08

    def test_empty_labels_rejected(self, hub_graph):
        with pytest.raises(SamplingError):
            default_correlation(hub_graph, [], samples=100)


class TestAttribution:
    def test_blame_lands_on_the_hub(self, hub_graph):
        blame = attribution(hub_graph, "leaf0", samples=3000, seed=0)
        assert blame["hub"] > 0.9  # almost every leaf default is hub-borne
        assert blame.get("leaf0", 0.0) < 0.2

    def test_self_default_attributed_to_self(self):
        graph = UncertainGraph()
        graph.add_node("solo", 0.5)
        blame = attribution(graph, "solo", samples=500, seed=1)
        assert blame == {"solo": 1.0}

    def test_never_defaulting_target(self):
        graph = UncertainGraph()
        graph.add_node("safe", 0.0)
        assert attribution(graph, "safe", samples=200, seed=2) == {}

    def test_fractions_at_most_one(self, hub_graph):
        blame = attribution(hub_graph, "leaf1", samples=2000, seed=3)
        assert all(0.0 < fraction <= 1.0 for fraction in blame.values())


class TestWhatIf:
    def test_derisking_the_hub_protects_leaves(self, hub_graph):
        impact = derisk_impact(hub_graph, "hub", 0.01, samples=4000, seed=0)
        assert impact.total_risk_reduction > 1.0  # hub + contagion
        beneficiaries = dict(impact.top_beneficiaries(hub_graph))
        assert "hub" in beneficiaries
        assert any(label.startswith("leaf") for label in beneficiaries)

    def test_original_graph_untouched(self, hub_graph):
        derisk_impact(hub_graph, "hub", 0.01, samples=500, seed=0)
        assert hub_graph.self_risk("hub") == pytest.approx(0.6)

    def test_cutting_a_guarantee(self, hub_graph):
        impact = cut_guarantee_impact(
            hub_graph, "hub", "leaf0", 0.0, samples=4000, seed=0
        )
        leaf0 = hub_graph.index("leaf0")
        leaf1 = hub_graph.index("leaf1")
        assert impact.delta[leaf0] < -0.3  # protected
        assert abs(impact.delta[leaf1]) < 0.05  # unaffected
        assert hub_graph.edge_probability("hub", "leaf0") == pytest.approx(0.8)

    def test_rank_interventions_prefers_hub(self, hub_graph):
        ranking = rank_interventions(
            hub_graph,
            ["hub", "leaf0", "leaf1"],
            new_self_risk=0.01,
            samples=2000,
            seed=0,
        )
        assert ranking[0][0] == "hub"
        assert ranking[0][1] > ranking[-1][1]

    def test_validation(self, hub_graph):
        with pytest.raises(SamplingError):
            derisk_impact(hub_graph, "hub", 0.1, samples=0)
        with pytest.raises(SamplingError):
            rank_interventions(hub_graph, [], samples=10)
        with pytest.raises(SamplingError):
            rank_interventions(hub_graph, ["hub"], samples=0)

    def test_rank_interventions_estimates_baseline_once(
        self, hub_graph, monkeypatch
    ):
        """Regression: N candidates must cost 1 + N estimates, not 2N.

        The common-random-number baseline is identical for every
        candidate (same graph, seed, and budget), so ranking must share
        one baseline run across the whole candidate list.
        """
        import repro.analysis.whatif as whatif

        calls = []
        real_estimate = whatif._estimate

        def counting_estimate(graph, samples, seed):
            calls.append(graph)
            return real_estimate(graph, samples, seed)

        monkeypatch.setattr(whatif, "_estimate", counting_estimate)
        candidates = ["hub", "leaf0", "leaf1", "leaf2"]
        rank_interventions(hub_graph, candidates, samples=300, seed=0)
        assert len(calls) == 1 + len(candidates)

    def test_rank_interventions_matches_independent_impacts(self, hub_graph):
        """Sharing the baseline must not change any ranking score."""
        candidates = ["hub", "leaf0", "leaf1"]
        ranking = dict(
            rank_interventions(
                hub_graph, candidates, new_self_risk=0.01,
                samples=800, seed=3,
            )
        )
        for label in candidates:
            impact = derisk_impact(
                hub_graph, label, 0.01, samples=800, seed=3
            )
            assert ranking[label] == impact.total_risk_reduction

    def test_derisk_impact_accepts_precomputed_baseline(self, hub_graph):
        from repro.analysis.whatif import _estimate

        baseline = _estimate(hub_graph, 500, 1)
        shared = derisk_impact(
            hub_graph, "hub", 0.01, samples=500, seed=1, baseline=baseline
        )
        fresh = derisk_impact(hub_graph, "hub", 0.01, samples=500, seed=1)
        assert np.array_equal(shared.baseline, fresh.baseline)
        assert np.array_equal(shared.intervened, fresh.intervened)
