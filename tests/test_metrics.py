"""Tests for repro.metrics — precision, AUC, rank agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ExperimentError
from repro.metrics.auc import roc_auc, roc_curve
from repro.metrics.ranking import (
    jaccard,
    kendall_tau,
    mean_absolute_error,
    precision_at_k,
    recall_at_k,
)


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_at_k({"a", "b"}, {"a", "b"}) == 1.0
        assert recall_at_k({"a", "b"}, {"a", "b"}) == 1.0

    def test_half(self):
        assert precision_at_k(["a", "x"], ["a", "b"]) == 0.5

    def test_disjoint(self):
        assert precision_at_k(["x"], ["a"]) == 0.0

    def test_precision_normalises_by_returned(self):
        assert precision_at_k(["a"], ["a", "b", "c"]) == 1.0
        assert recall_at_k(["a"], ["a", "b", "c"]) == pytest.approx(1 / 3)

    def test_empty_returned_rejected(self):
        with pytest.raises(ExperimentError):
            precision_at_k([], ["a"])

    def test_empty_truth_rejected(self):
        with pytest.raises(ExperimentError):
            recall_at_k(["a"], [])


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a"}, {"a"}) == 1.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty_rejected(self):
        with pytest.raises(ExperimentError):
            jaccard([], [])


class TestKendallTau:
    def test_identical_orders(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_orders(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_single_swap(self):
        assert kendall_tau(["a", "b", "c"], ["b", "a", "c"]) == pytest.approx(
            1 / 3
        )

    def test_different_items_rejected(self):
        with pytest.raises(ExperimentError):
            kendall_tau(["a"], ["b"])

    def test_short_rankings(self):
        assert kendall_tau(["a"], ["a"]) == 1.0


class TestMAE:
    def test_hand_computed(self):
        assert mean_absolute_error([0.1, 0.5], [0.2, 0.3]) == pytest.approx(
            0.15
        )

    def test_zero_for_equal(self):
        assert mean_absolute_error([0.4, 0.4], [0.4, 0.4]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ExperimentError):
            mean_absolute_error([0.1], [0.1, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean_absolute_error([], [])


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_perfectly_wrong(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        labels = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == 0.5

    def test_hand_computed_mixed(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        # Pairs: (0.9>0.8)=1, (0.9>0.1)=1, (0.7<0.8)=0, (0.7>0.1)=1 -> 3/4.
        assert roc_auc(labels, scores) == pytest.approx(0.75)

    def test_single_class_rejected(self):
        with pytest.raises(ExperimentError):
            roc_auc(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            roc_auc(np.array([1, 0]), np.array([0.1]))

    @given(st.integers(1, 10_000))
    def test_invariant_under_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        labels = np.concatenate([np.ones(10), np.zeros(10)]).astype(int)
        scores = rng.random(20)
        direct = roc_auc(labels, scores)
        squashed = roc_auc(labels, 1 / (1 + np.exp(-5 * scores)))
        assert direct == pytest.approx(squashed)


class TestROCCurve:
    def test_endpoints(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr = roc_curve(labels, scores, thresholds=11)
        assert fpr[-1] == 1.0
        assert tpr[-1] == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 100)
        scores = rng.random(100)
        fpr, tpr = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= -1e-12)
        assert np.all(np.diff(tpr) >= -1e-12)

    def test_single_class_rejected(self):
        with pytest.raises(ExperimentError):
            roc_curve(np.ones(3), np.array([0.1, 0.2, 0.3]))
