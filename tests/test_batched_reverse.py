"""Tests for the batched reverse-sampling engine and the world arena.

The contract under test: :class:`BatchedReverseSampler` is an exact
re-implementation of the :class:`ReverseWorld` reference under a shared
draw policy (entity-indexed uniforms), statistically indistinguishable
from the exact oracle under its production block randomness, and reports
the same engine-neutral work counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SamplingError
from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph
from repro.sampling.reverse import (
    BatchedReverseSampler,
    ReverseSampler,
    ReverseWorld,
    WorldArena,
)
from repro.sampling.rng import make_rng


def random_graph(n: int, edge_probability: float, seed: int) -> UncertainGraph:
    rng = np.random.default_rng(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, float(rng.random() * 0.7))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < edge_probability:
                graph.add_edge(src, dst, float(rng.random()))
    return graph


class TestWorldArena:
    def test_new_world_bumps_epoch(self, paper_graph):
        arena = WorldArena(paper_graph, 0)
        assert arena.epoch == 0
        arena.new_world()
        assert arena.epoch == 1
        arena.new_world()
        assert arena.epoch == 2

    def test_worlds_share_no_state_across_epochs(self):
        """The hv/checked memos must reset (by stamp) between worlds."""
        graph = UncertainGraph()
        graph.add_node("root", 0.5)
        graph.add_node("leaf", 0.0)
        graph.add_edge("root", "leaf", 1.0)
        arena = WorldArena(graph, 0)
        n, m = graph.num_nodes, graph.num_edges
        defaulting = arena.new_world(
            node_uniforms=np.zeros(n), edge_uniforms=np.zeros(m)
        )
        assert defaulting.candidate_defaults(graph.index("leaf"))
        surviving = arena.new_world(
            node_uniforms=np.ones(n), edge_uniforms=np.zeros(m)
        )
        assert not surviving.candidate_defaults(graph.index("leaf"))

    def test_buffers_not_reallocated_between_worlds(self, paper_graph):
        arena = WorldArena(paper_graph, 0)
        stamp_buffer = arena._node_stamp
        for _ in range(5):
            world = arena.new_world()
            world.candidate_defaults(0)
        assert arena._node_stamp is stamp_buffer

    def test_stale_world_raises_instead_of_corrupting(self, paper_graph):
        """A retired world must not silently overwrite the live world's
        memo stamps."""
        arena = WorldArena(paper_graph, 0)
        stale = arena.new_world()
        stale.candidate_defaults(0)
        live = arena.new_world()
        with pytest.raises(SamplingError, match="retired"):
            stale.candidate_defaults(1)
        live.candidate_defaults(0)  # the live world keeps working

    def test_self_risk_mutations_observed_between_worlds(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.0)
        arena = WorldArena(graph, 0)
        assert not arena.new_world().candidate_defaults(0)
        graph.set_self_risk("a", 1.0)
        assert arena.new_world().candidate_defaults(0)

    def test_reverse_world_requires_graph_xor_arena(self, paper_graph):
        arena = WorldArena(paper_graph, 0)
        with pytest.raises(SamplingError):
            ReverseWorld(paper_graph, 0, arena=arena)
        with pytest.raises(SamplingError):
            ReverseWorld()


class TestExactEngineAgreement:
    """Batched engine == reference engine under entity-indexed uniforms."""

    @pytest.mark.parametrize("graph_seed", range(8))
    def test_per_world_agreement_on_random_graphs(self, graph_seed):
        graph = random_graph(8, 0.25, graph_seed)
        n, m = graph.num_nodes, graph.num_edges
        candidates = np.arange(n)
        batched = BatchedReverseSampler(graph, candidates, seed=0)
        arena = WorldArena(graph, 0)
        rng = make_rng(1000 + graph_seed)
        for _ in range(40):
            node_u, edge_u = rng.random(n), rng.random(m)
            reference_world = arena.new_world(
                node_uniforms=node_u, edge_uniforms=edge_u
            )
            reference = np.fromiter(
                (reference_world.candidate_defaults(int(v)) for v in candidates),
                dtype=bool,
                count=n,
            )
            batched_outcome = batched.outcomes_for_uniforms(node_u, edge_u)
            assert np.array_equal(reference, batched_outcome)

    def test_estimates_agree_exactly_under_shared_draws(self, paper_graph):
        """Same per-world uniforms => identical per-candidate estimates."""
        n, m = paper_graph.num_nodes, paper_graph.num_edges
        candidates = np.arange(n)
        batched = BatchedReverseSampler(paper_graph, candidates, seed=0)
        arena = WorldArena(paper_graph, 0)
        rng = make_rng(7)
        worlds = 200
        reference_counts = np.zeros(n, dtype=np.int64)
        batched_counts = np.zeros(n, dtype=np.int64)
        for _ in range(worlds):
            node_u, edge_u = rng.random(n), rng.random(m)
            world = arena.new_world(node_uniforms=node_u, edge_uniforms=edge_u)
            reference_counts += np.fromiter(
                (world.candidate_defaults(int(v)) for v in candidates),
                dtype=bool,
                count=n,
            )
            batched_counts += batched.outcomes_for_uniforms(node_u, edge_u)
        assert np.array_equal(reference_counts, batched_counts)

    def test_duplicate_and_subset_candidates(self):
        graph = random_graph(7, 0.3, 42)
        n, m = graph.num_nodes, graph.num_edges
        candidates = np.array([3, 0, 3, 5])
        batched = BatchedReverseSampler(graph, candidates, seed=0)
        arena = WorldArena(graph, 0)
        rng = make_rng(9)
        for _ in range(25):
            node_u, edge_u = rng.random(n), rng.random(m)
            world = arena.new_world(node_uniforms=node_u, edge_uniforms=edge_u)
            reference = np.array(
                [world.candidate_defaults(int(v)) for v in candidates]
            )
            outcome = batched.outcomes_for_uniforms(node_u, edge_u)
            assert outcome.shape == (4,)
            assert np.array_equal(reference, outcome)
            assert outcome[0] == outcome[2]  # duplicate candidate slots agree

    def test_uniform_shape_validation(self, paper_graph):
        sampler = BatchedReverseSampler(paper_graph, [0], seed=0)
        with pytest.raises(SamplingError):
            sampler.outcomes_for_uniforms(np.zeros(3), np.zeros(6))
        with pytest.raises(SamplingError):
            sampler.outcomes_for_uniforms(np.zeros(5), np.zeros(2))


class TestBatchedStatistics:
    def test_matches_exact_probabilities(self, paper_graph):
        exact = exact_default_probabilities(paper_graph)
        candidates = np.arange(paper_graph.num_nodes)
        t = 6000
        estimate = BatchedReverseSampler(
            paper_graph, candidates, seed=3
        ).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)

    def test_matches_exact_on_random_graph(self, small_random_graph):
        exact = exact_default_probabilities(small_random_graph)
        candidates = np.arange(small_random_graph.num_nodes)
        t = 6000
        estimate = BatchedReverseSampler(
            small_random_graph, candidates, seed=5
        ).estimate_probabilities(t)
        sigma = np.sqrt(exact * (1 - exact) / t)
        assert np.all(np.abs(estimate - exact) < 4 * sigma + 1e-9)

    def test_agrees_with_reference_sampler(self, small_random_graph):
        t = 6000
        candidates = np.arange(small_random_graph.num_nodes)
        reference = ReverseSampler(
            small_random_graph, candidates, seed=21
        ).estimate_probabilities(t)
        batched = BatchedReverseSampler(
            small_random_graph, candidates, seed=22
        ).estimate_probabilities(t)
        sigma = np.sqrt(2 * 0.25 / t)
        assert np.all(np.abs(reference - batched) < 5 * sigma)

    def test_world_batch_does_not_change_distribution(self, paper_graph):
        candidates = np.arange(paper_graph.num_nodes)
        small = BatchedReverseSampler(
            paper_graph, candidates, seed=5, world_batch=3
        ).estimate_probabilities(2000)
        large = BatchedReverseSampler(
            paper_graph, candidates, seed=5, world_batch=512
        ).estimate_probabilities(2000)
        assert np.all(np.abs(small - large) < 0.08)


class TestBatchedSamplerApi:
    def test_validates_candidates(self, paper_graph):
        with pytest.raises(SamplingError):
            BatchedReverseSampler(paper_graph, [])
        with pytest.raises(SamplingError):
            BatchedReverseSampler(paper_graph, [99])
        with pytest.raises(SamplingError):
            BatchedReverseSampler(paper_graph, [-1])
        with pytest.raises(SamplingError):
            BatchedReverseSampler(paper_graph, [0], world_batch=0)

    def test_samples_must_be_positive(self, paper_graph):
        sampler = BatchedReverseSampler(paper_graph, [0], seed=0)
        with pytest.raises(SamplingError):
            sampler.run(0)
        with pytest.raises(SamplingError):
            list(sampler.iter_samples(-1))

    def test_run_shape(self, paper_graph):
        candidates = [paper_graph.index("E"), paper_graph.index("D")]
        estimate = BatchedReverseSampler(paper_graph, candidates, seed=0).run(100)
        assert estimate.counts.shape == (2,)
        assert estimate.samples == 100

    def test_iter_samples_streaming(self, paper_graph):
        sampler = BatchedReverseSampler(
            paper_graph, [paper_graph.index("E")], seed=0, world_batch=7
        )
        outcomes = list(sampler.iter_samples(50))
        assert len(outcomes) == 50
        assert all(o.shape == (1,) for o in outcomes)
        assert all(o.dtype == np.bool_ for o in outcomes)

    def test_deterministic_with_seed(self, paper_graph):
        candidates = [paper_graph.index("E")]
        a = BatchedReverseSampler(paper_graph, candidates, seed=8).run(300)
        b = BatchedReverseSampler(paper_graph, candidates, seed=8).run(300)
        assert np.array_equal(a.counts, b.counts)

    def test_different_seeds_differ(self, paper_graph):
        candidates = np.arange(paper_graph.num_nodes)
        a = BatchedReverseSampler(paper_graph, candidates, seed=1).run(400)
        b = BatchedReverseSampler(paper_graph, candidates, seed=2).run(400)
        assert not np.array_equal(a.counts, b.counts)

    def test_touch_counters_are_engine_neutral_draw_counts(self, paper_graph):
        """Counters mean "distinct per-world draws" in both engines."""
        n, m = paper_graph.num_nodes, paper_graph.num_edges
        samples = 50
        candidates = np.arange(n)
        batched = BatchedReverseSampler(paper_graph, candidates, seed=0)
        batched.run(samples)
        assert 0 < batched.nodes_touched <= samples * n
        assert batched.edges_touched <= samples * m
        reference = ReverseSampler(paper_graph, candidates, seed=0)
        reference.run(samples)
        assert 0 < reference.nodes_touched <= samples * n
        assert reference.edges_touched <= samples * m

    def test_counters_attributed_per_consumed_world(self):
        """Early-stopping consumers must not be charged for unconsumed
        worlds of a block, whatever the world_batch size."""
        graph = UncertainGraph()
        graph.add_node("a", 0.5)
        graph.add_node("b", 0.2)
        graph.add_node("c", 0.1)
        for consumed in (1, 3, 5):
            for world_batch in (1, 4, 32):
                sampler = BatchedReverseSampler(
                    graph, [0, 1, 2], seed=0, world_batch=world_batch
                )
                stream = sampler.iter_samples(100)
                for _ in range(consumed):
                    next(stream)
                # Edgeless graph: every consumed world draws exactly one
                # uniform per candidate, so the count is exact.
                assert sampler.nodes_touched == consumed * 3
                assert sampler.edges_touched == 0

    def test_touch_counters_identical_on_edgeless_graph(self):
        graph = UncertainGraph()
        graph.add_node("a", 0.5)
        graph.add_node("b", 0.2)
        samples = 40
        batched = BatchedReverseSampler(graph, [0, 1], seed=0)
        batched.run(samples)
        reference = ReverseSampler(graph, [0, 1], seed=0)
        reference.run(samples)
        assert batched.nodes_touched == reference.nodes_touched == samples * 2
        assert batched.edges_touched == reference.edges_touched == 0
