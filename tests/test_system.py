"""Tests for the VulnDS risk-control system (paper §5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.datasets.registry import load_dataset
from repro.system.evaluation import EvaluationModule, TermSchedule
from repro.system.loans import (
    Decision,
    Enterprise,
    LoanApplication,
    LoanDecision,
    LoanTerms,
)
from repro.system.pipeline import RiskControlCenter
from repro.system.rules import (
    BlacklistRule,
    ExposureComplianceRule,
    RuleEngine,
    RuleOutcome,
    SectorComplianceRule,
    TermComplianceRule,
    WhitelistRule,
)
from repro.system.vulnds import VulnDS


def make_enterprise(enterprise_id="sme_00000", capital=1000.0, sector="retail"):
    return Enterprise(
        enterprise_id=enterprise_id,
        registered_capital=capital,
        sector=sector,
        credit_rating=0.6,
    )


def make_application(enterprise=None, amount=500.0, term=24, app_id="app-1"):
    return LoanApplication(
        application_id=app_id,
        enterprise=enterprise or make_enterprise(),
        amount=amount,
        term_months=term,
    )


class TestDomainObjects:
    def test_enterprise_validation(self):
        with pytest.raises(ReproError):
            Enterprise("x", registered_capital=-1.0)
        with pytest.raises(ReproError):
            Enterprise("x", registered_capital=1.0, credit_rating=1.5)

    def test_application_validation(self):
        with pytest.raises(ReproError):
            make_application(amount=0.0)
        with pytest.raises(ReproError):
            make_application(term=0)

    def test_terms_validation(self):
        with pytest.raises(ReproError):
            LoanTerms(granted_amount=-1, term_months=12, annual_interest_rate=0.05)
        with pytest.raises(ReproError):
            LoanTerms(granted_amount=10, term_months=12, annual_interest_rate=1.5)

    def test_decision_consistency(self):
        application = make_application()
        with pytest.raises(ReproError):
            LoanDecision(application=application, decision=Decision.APPROVE)
        terms = LoanTerms(100.0, 12, 0.05)
        with pytest.raises(ReproError):
            LoanDecision(
                application=application, decision=Decision.REJECT, terms=terms
            )


class TestRules:
    def test_blacklist(self):
        rule = BlacklistRule(["sme_00000"])
        assert rule.evaluate(make_application()).verdict == "reject"
        other = make_application(make_enterprise("sme_00001"))
        assert rule.evaluate(other).verdict == "pass"

    def test_whitelist(self):
        rule = WhitelistRule(["sme_00000"])
        assert rule.evaluate(make_application()).verdict == "fast_track"

    def test_exposure_compliance(self):
        rule = ExposureComplianceRule(max_capital_multiple=2.0)
        ok = make_application(amount=1500.0)  # capital 1000 -> cap 2000
        too_big = make_application(amount=2500.0, app_id="app-2")
        assert rule.evaluate(ok).verdict == "pass"
        assert rule.evaluate(too_big).verdict == "reject"

    def test_sector_compliance(self):
        rule = SectorComplianceRule(["Mining"])
        mining = make_application(make_enterprise(sector="mining"))
        assert rule.evaluate(mining).verdict == "reject"
        assert rule.evaluate(make_application()).verdict == "pass"

    def test_term_compliance(self):
        rule = TermComplianceRule(max_term_months=36)
        assert rule.evaluate(make_application(term=48)).verdict == "reject"
        assert rule.evaluate(make_application(term=36)).verdict == "pass"

    def test_rule_outcome_validation(self):
        with pytest.raises(ReproError):
            RuleOutcome("maybe")

    def test_engine_order_and_short_circuit(self):
        engine = RuleEngine(
            [
                WhitelistRule(["sme_00000"]),
                BlacklistRule(["sme_00000"]),  # never reached for whitelisted
            ]
        )
        check = engine.check(make_application())
        assert check.passed and check.fast_tracked

    def test_engine_reject_collects_reason(self):
        engine = RuleEngine([BlacklistRule(["sme_00000"])])
        check = engine.check(make_application())
        assert not check.passed
        assert "blacklisted" in check.reasons[0]

    def test_engine_needs_rules(self):
        with pytest.raises(ReproError):
            RuleEngine([])


class TestEvaluationModule:
    def test_riskless_borrower_gets_full_amount(self):
        module = EvaluationModule()
        terms = module.price(make_application(), vulnerability=0.0)
        assert terms.granted_amount == pytest.approx(500.0)
        assert terms.annual_interest_rate == pytest.approx(0.045)
        assert terms.term_months == 24

    def test_risky_borrower_pays_more_for_less(self):
        module = EvaluationModule()
        safe = module.price(make_application(), vulnerability=0.1)
        risky = module.price(make_application(), vulnerability=0.9)
        assert risky.granted_amount < safe.granted_amount
        assert risky.annual_interest_rate > safe.annual_interest_rate
        assert risky.term_months <= safe.term_months

    def test_vulnerability_validated(self):
        with pytest.raises(ReproError):
            EvaluationModule().price(make_application(), vulnerability=1.5)

    def test_schedule_validation(self):
        with pytest.raises(ReproError):
            TermSchedule(base_rate=0.0)
        with pytest.raises(ReproError):
            TermSchedule(amount_haircut=1.2)
        with pytest.raises(ReproError):
            TermSchedule(min_term_months=24, max_term_months=12)

    def test_term_never_below_minimum(self):
        module = EvaluationModule(TermSchedule(min_term_months=9))
        terms = module.price(make_application(term=60), vulnerability=1.0)
        assert terms.term_months == 9


@pytest.fixture(scope="module")
def loan_network():
    return load_dataset("guarantee", scale=0.01, seed=21)


class TestVulnDS:
    def test_assess_portfolio(self, loan_network):
        service = VulnDS(loan_network.graph)
        assessment = service.assess_portfolio(k=10)
        assert len(assessment.watch_list) == 10
        assert service.last_assessment is assessment
        top = assessment.watch_list[0]
        assert assessment.is_watched(top)
        assert assessment.vulnerability(top) is not None
        assert assessment.vulnerability("not-a-node") is None

    def test_refresh_self_risks(self, loan_network):
        graph = loan_network.graph.copy()
        service = VulnDS(
            graph,
            self_risk_assessor=lambda X: np.full(graph.num_nodes, 0.3),
        )
        features = np.zeros((graph.num_nodes, 4))
        risks = service.refresh_self_risks(features)
        assert np.allclose(risks, 0.3)
        assert np.allclose(graph.self_risk_array, 0.3)

    def test_refresh_without_assessor_rejected(self, loan_network):
        service = VulnDS(loan_network.graph)
        with pytest.raises(ReproError):
            service.refresh_self_risks(np.zeros((1, 1)))

    def test_assessor_shape_checked(self, loan_network):
        graph = loan_network.graph.copy()
        service = VulnDS(graph, self_risk_assessor=lambda X: np.zeros(3))
        with pytest.raises(ReproError):
            service.refresh_self_risks(np.zeros((graph.num_nodes, 2)))

    def test_empty_graph_rejected(self):
        from repro.core.graph import UncertainGraph

        with pytest.raises(ReproError):
            VulnDS(UncertainGraph())


class TestRiskControlCenter:
    @pytest.fixture
    def center(self, loan_network):
        labels = loan_network.graph.labels()
        engine = RuleEngine(
            [
                WhitelistRule([str(labels[1])]),
                BlacklistRule([str(labels[2])]),
                ExposureComplianceRule(max_capital_multiple=2.0),
                TermComplianceRule(max_term_months=60),
            ]
        )
        return RiskControlCenter(
            rule_engine=engine,
            vulnds=VulnDS(loan_network.graph),
            watch_fraction=0.2,
            review_threshold=0.4,
        )

    def test_blacklisted_rejected(self, center, loan_network):
        label = str(loan_network.graph.labels()[2])
        decision = center.process(
            make_application(make_enterprise(label), app_id="blk")
        )
        assert decision.decision is Decision.REJECT
        assert decision.terms is None

    def test_compliance_rejection(self, center):
        decision = center.process(
            make_application(amount=10_000.0, app_id="big")
        )
        assert decision.decision is Decision.REJECT

    def test_clean_applicant_approved_with_terms(self, center, loan_network):
        # Pick an enterprise not on the watch list.
        assessment = center.run_monthly_assessment()
        clean = next(
            str(label)
            for label in loan_network.graph.labels()
            if not assessment.is_watched(str(label))
        )
        decision = center.process(
            make_application(make_enterprise(clean), app_id="ok")
        )
        assert decision.decision is Decision.APPROVE
        assert decision.terms is not None
        assert decision.terms.granted_amount > 0

    def test_vulnerable_applicant_goes_to_review(self, center):
        assessment = center.run_monthly_assessment()
        risky = None
        for label in assessment.watch_list:
            if assessment.scores[label] >= center.review_threshold:
                risky = label
                break
        if risky is None:
            pytest.skip("no enterprise above the review threshold in this draw")
        decision = center.process(
            make_application(make_enterprise(risky), app_id="rsk")
        )
        assert decision.decision is Decision.REVIEW
        assert decision.vulnerability is not None

    def test_whitelisted_vulnerable_still_approved(self, center, loan_network):
        label = str(loan_network.graph.labels()[1])
        decision = center.process(
            make_application(make_enterprise(label), app_id="wht")
        )
        assert decision.decision is Decision.APPROVE

    def test_batch_runs_fresh_assessment(self, center):
        before = len(center.audit_log)
        decisions = center.process_batch(
            [make_application(app_id=f"b{i}") for i in range(3)]
        )
        assert len(decisions) == 3
        events = [rec.event for rec in center.audit_log[before:]]
        assert events[0] == "monthly-assessment"

    def test_configuration_validated(self, loan_network):
        engine = RuleEngine([TermComplianceRule()])
        with pytest.raises(ReproError):
            RiskControlCenter(
                rule_engine=engine,
                vulnds=VulnDS(loan_network.graph),
                watch_fraction=0.0,
            )
        with pytest.raises(ReproError):
            RiskControlCenter(
                rule_engine=engine,
                vulnds=VulnDS(loan_network.graph),
                review_threshold=1.5,
            )


class TestStreamingIntegration:
    def test_vulnds_streaming_assessment_matches_fresh_bsr(self, loan_network):
        from repro.algorithms.bsr import BoundedSampleReverseDetector
        from repro.streaming.replay import random_patch_stream

        graph = loan_network.graph.copy()
        service = VulnDS(graph)
        monitor = service.enable_streaming(8, seed=4)
        assert service.monitor is monitor
        first = service.assess_portfolio(8)
        assert len(first.watch_list) == 8
        for event in random_patch_stream(graph, 5, seed=2, drift=0.1):
            service.apply_updates([event])
            assessment = service.assess_portfolio(8)
            fresh = BoundedSampleReverseDetector(
                seed=4, engine="indexed"
            ).detect(graph, 8)
            assert assessment.detection.nodes == fresh.nodes
            assert assessment.detection.scores == fresh.scores
        # Other sizes still run the configured (non-streaming) detector.
        other = service.assess_portfolio(3)
        assert other.detection.method != "BSR" or len(other.watch_list) == 3

    def test_vulnds_apply_updates_requires_streaming(self, loan_network):
        service = VulnDS(loan_network.graph)
        with pytest.raises(ReproError):
            service.apply_updates([])

    def test_refresh_self_risks_routes_through_monitor(self, loan_network):
        graph = loan_network.graph.copy()
        service = VulnDS(
            graph,
            self_risk_assessor=lambda X: np.full(graph.num_nodes, 0.25),
        )
        monitor = service.enable_streaming(5, seed=0)
        monitor.top_k()
        service.refresh_self_risks(np.zeros((graph.num_nodes, 4)))
        assert monitor.pending_updates > 0
        monitor.top_k()
        assert monitor.pending_updates == 0

    def test_center_streaming_market_updates(self, loan_network):
        from repro.streaming.events import SelfRiskUpdate
        from repro.system.rules import ExposureComplianceRule, RuleEngine

        graph = loan_network.graph.copy()
        center = RiskControlCenter(
            rule_engine=RuleEngine(
                [ExposureComplianceRule(max_capital_multiple=2.0)]
            ),
            vulnds=VulnDS(graph),
            watch_fraction=0.1,
        )
        monitor = center.enable_streaming(seed=1)
        assert monitor.k == center.watch_k
        label = graph.labels()[0]
        assessment = center.apply_market_update(
            [SelfRiskUpdate(label=label, value=0.9)]
        )
        assert len(assessment.watch_list) == center.watch_k
        events = [record.event for record in center.audit_log]
        assert "streaming-enabled" in events
        assert "market-update" in events
        detail = [
            record.detail
            for record in center.audit_log
            if record.event == "market-update"
        ][0]
        assert "1 updates applied" in detail and "refresh=" in detail

    def test_center_market_update_requires_streaming(self, loan_network):
        from repro.system.rules import ExposureComplianceRule, RuleEngine

        center = RiskControlCenter(
            rule_engine=RuleEngine(
                [ExposureComplianceRule(max_capital_multiple=2.0)]
            ),
            vulnds=VulnDS(loan_network.graph),
        )
        with pytest.raises(ReproError):
            center.apply_market_update([])

    def test_center_no_op_update_audits_clean_refresh(self, loan_network):
        from repro.streaming.events import SelfRiskUpdate
        from repro.system.rules import ExposureComplianceRule, RuleEngine

        graph = loan_network.graph.copy()
        center = RiskControlCenter(
            rule_engine=RuleEngine(
                [ExposureComplianceRule(max_capital_multiple=2.0)]
            ),
            vulnds=VulnDS(graph),
            watch_fraction=0.1,
        )
        center.enable_streaming(seed=1)
        label = graph.labels()[0]
        center.apply_market_update([SelfRiskUpdate(label=label, value=0.8)])
        # A batch that changes nothing must be audited as *this* update's
        # clean refresh, not the previous refresh's telemetry.
        center.apply_market_update(
            [SelfRiskUpdate(label=label, value=graph.self_risk(label))]
        )
        details = [
            record.detail
            for record in center.audit_log
            if record.event == "market-update"
        ]
        assert "refresh=clean" in details[-1]
        assert "refresh=clean" not in details[0]
