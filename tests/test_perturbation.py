"""Tests for probability perturbation and the top-k stability property."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.errors import DatasetError
from repro.datasets.perturbation import perturb_probabilities, stress_self_risks
from repro.datasets.registry import load_dataset
from repro.metrics.ranking import jaccard


class TestPerturbProbabilities:
    def test_original_untouched(self, paper_graph):
        before = paper_graph.self_risk_array.copy()
        perturb_probabilities(paper_graph, 0.2, seed=0)
        assert np.array_equal(paper_graph.self_risk_array, before)

    def test_zero_noise_is_identity(self, paper_graph):
        copy = perturb_probabilities(paper_graph, 0.0, seed=0)
        assert np.array_equal(copy.self_risk_array, paper_graph.self_risk_array)

    def test_noise_changes_values(self, paper_graph):
        copy = perturb_probabilities(paper_graph, 0.1, seed=1)
        assert not np.array_equal(
            copy.self_risk_array, paper_graph.self_risk_array
        )

    def test_values_stay_probabilities(self, paper_graph):
        copy = perturb_probabilities(paper_graph, 5.0, seed=2)
        assert np.all(copy.self_risk_array >= 0)
        assert np.all(copy.self_risk_array <= 1)
        _, _, probabilities = copy.edge_array
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_selective_perturbation(self, paper_graph):
        copy = perturb_probabilities(
            paper_graph, 0.2, seed=3, perturb_edges=False
        )
        _, _, probabilities = copy.edge_array
        assert np.allclose(probabilities, 0.2)

    def test_negative_noise_rejected(self, paper_graph):
        with pytest.raises(DatasetError):
            perturb_probabilities(paper_graph, -0.1)


class TestStressSelfRisks:
    def test_global_stress(self, paper_graph):
        stressed = stress_self_risks(paper_graph, 1.5)
        assert np.allclose(stressed.self_risk_array, 0.3)

    def test_selective_stress(self, paper_graph):
        stressed = stress_self_risks(paper_graph, 2.0, labels=["A"])
        assert stressed.self_risk("A") == pytest.approx(0.4)
        assert stressed.self_risk("B") == pytest.approx(0.2)

    def test_clipped_at_one(self, paper_graph):
        stressed = stress_self_risks(paper_graph, 100.0)
        assert np.all(stressed.self_risk_array <= 1.0)

    def test_negative_multiplier_rejected(self, paper_graph):
        with pytest.raises(DatasetError):
            stress_self_risks(paper_graph, -1.0)


class TestTopKStability:
    def test_answers_stable_under_small_noise(self):
        """The deployment-critical property: estimation error in the
        probability models must not scramble the watch list."""
        loaded = load_dataset("guarantee", scale=0.015, seed=17)
        k = loaded.k_for_percent(10.0)
        detector = BoundedSampleReverseDetector(seed=17)
        baseline = set(detector.detect(loaded.graph, k).nodes)
        overlaps = []
        for trial in range(3):
            noisy = perturb_probabilities(loaded.graph, 0.02, seed=trial)
            answer = set(
                BoundedSampleReverseDetector(seed=17).detect(noisy, k).nodes
            )
            overlaps.append(jaccard(baseline, answer))
        assert float(np.mean(overlaps)) > 0.6

    def test_stress_raises_system_risk(self):
        from repro.sampling.forward import ForwardSampler

        loaded = load_dataset("guarantee", scale=0.015, seed=18)
        baseline = ForwardSampler(
            loaded.graph, seed=0
        ).estimate_probabilities(1500)
        stressed_graph = stress_self_risks(loaded.graph, 1.5)
        stressed = ForwardSampler(
            stressed_graph, seed=0
        ).estimate_probabilities(1500)
        assert stressed.sum() > baseline.sum()
