"""WriteAheadLog tests: append/replay, rotation, repair, injected faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import BackpressureError
from repro.persistence.codec import PersistenceError, WAL_MAGIC
from repro.persistence.faults import (
    FaultyFile,
    WriteFaultPlan,
    count_durable_batches,
)
from repro.persistence.wal import WriteAheadLog
from repro.serving.queue import IngestionQueue
from repro.streaming.events import BulkSelfRiskUpdate, SelfRiskUpdate


def _events(*labels):
    return [SelfRiskUpdate(label, 0.5) for label in labels]


class TestAppendAndReplay:
    def test_round_trip_across_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append_register("t1", 3, {"seed": 1}) == 1
            assert wal.append_events("t1", _events("a", "b")) == 2
            assert wal.append_events("t2", [
                BulkSelfRiskUpdate(np.array([0.1, 0.9]))
            ]) == 3
        with WriteAheadLog(tmp_path) as wal:
            batches = wal.read_batches()
            assert [b.seq for b in batches] == [1, 2, 3]
            assert [b.kind for b in batches] == ["register", "events", "events"]
            assert batches[1].events == tuple(_events("a", "b"))
            assert np.array_equal(batches[2].events[0].values, [0.1, 0.9])
            assert wal.next_seq == 4
            assert wal.last_seq_of == {"t1": 2, "t2": 3}

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(PersistenceError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(PersistenceError, match="closed"):
            wal.append_events("t", _events("x"))


class TestRotationAndTruncation:
    def test_appends_rotate_at_segment_cap(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for i in range(100):
                wal.append_events("t", _events(f"node-{i:03d}"))
            assert len(wal.segment_paths) > 1
            assert wal.read_batches()[-1].seq == 100

    def test_truncate_deletes_only_sealed_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for i in range(100):
                wal.append_events("t", _events(f"node-{i:03d}"))
            segments_before = len(wal.segment_paths)
            # Nothing covered: seq 0 deletes nothing.
            assert wal.truncate_upto(0) == 0
            removed = wal.truncate_upto(50)
            assert 0 < removed < segments_before
            survivors = wal.read_batches()
            # Every batch past the watermark must survive truncation.
            assert {b.seq for b in survivors} >= set(range(51, 101))
            # The active segment survives even a full-coverage watermark.
            wal.truncate_upto(10**9)
            assert wal.active_segment.exists()

    def test_rotate_then_truncate_empties_history(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_events("t", _events("a"))
            wal.rotate()
            assert wal.truncate_upto(1) == 1
            assert wal.read_batches() == []


class TestOpenTimeRepair:
    def test_torn_tail_is_truncated_and_log_appendable(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_events("t", _events("good-1"))
            wal.append_events("t", _events("good-2"))
            path = wal.active_segment
        with open(path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00torn")  # half a record
        with WriteAheadLog(tmp_path) as wal:
            labels = [b.events[0].label for b in wal.read_batches()]
            assert labels == ["good-1", "good-2"]
            wal.append_events("t", _events("after-repair"))
        with WriteAheadLog(tmp_path) as wal:
            labels = [b.events[0].label for b in wal.read_batches()]
            assert labels == ["good-1", "good-2", "after-repair"]

    def test_corruption_discards_everything_after(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for i in range(60):
                wal.append_events("t", _events(f"node-{i:03d}"))
            first = wal.segment_paths[0]
            later = [str(p) for p in wal.segment_paths[1:]]
            assert later
        data = bytearray(first.read_bytes())
        data[len(WAL_MAGIC) + 30] ^= 0xFF  # corrupt the first segment
        first.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            batches = wal.read_batches()
            # A prefix (possibly empty) of segment one survives; every
            # later segment is discarded, not trusted past the tear.
            assert [b.seq for b in batches] == list(
                range(1, len(batches) + 1)
            )
        for orphan in later:
            import os
            assert not os.path.exists(orphan)

    def test_future_format_version_refused(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(b"REPROWAL" + bytes([99]))
        with pytest.raises(PersistenceError, match="version"):
            WriteAheadLog(tmp_path)

    def test_file_torn_during_creation_recovers_empty(self, tmp_path):
        (tmp_path / "wal-00000001.log").write_bytes(b"REPR")
        with WriteAheadLog(tmp_path) as wal:
            assert wal.read_batches() == []
            wal.append_events("t", _events("fresh"))
            assert len(wal.read_batches()) == 1


class TestInjectedWriteFaults:
    def _faulty_once(self, plan):
        """io_wrapper injecting *plan* on the first handle only."""
        state = {"wrapped": False}

        def wrapper(raw):
            if state["wrapped"]:
                return raw
            state["wrapped"] = True
            return FaultyFile(raw, plan)

        return wrapper

    @pytest.mark.parametrize("partial", [True, False])
    def test_failed_append_leaves_no_torn_tail(self, tmp_path, partial):
        magic_budget = len(WAL_MAGIC)
        plan = WriteFaultPlan(
            fail_after_bytes=magic_budget + 40, partial=partial
        )
        wal = WriteAheadLog(
            tmp_path, io_wrapper=self._faulty_once(plan), fsync="always"
        )
        wal.append_events("t", _events("durable"))
        with pytest.raises(OSError, match="injected"):
            # Too big for the remaining byte budget: fails (partially).
            wal.append_events("t", _events("lost-" + "x" * 64))
        assert plan.tripped
        # The tear was cut out immediately: the live handle keeps
        # working and readers see every durable batch.
        wal.append_events("t", _events("after-fault"))
        labels = [b.events[0].label for b in wal.read_batches()]
        assert labels == ["durable", "after-fault"]
        wal.close()
        with WriteAheadLog(tmp_path) as wal:
            labels = [b.events[0].label for b in wal.read_batches()]
            assert labels == ["durable", "after-fault"]

    def test_count_durable_batches_is_pure(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_register("t", 1, {})
            wal.append_events("t", _events("a"))
            wal.append_events("t", _events("b"))
            path = wal.active_segment
        with open(path, "ab") as handle:
            handle.write(b"\x99\x00\x00\x00torn-bytes")
        before = path.read_bytes()
        assert count_durable_batches(tmp_path) == 2  # registers don't count
        assert path.read_bytes() == before  # probe never repairs


class TestQueueWalIntegration:
    def test_drain_appends_coalesced_batches(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            queue = IngestionQueue(wal=wal)
            queue.submit("t", SelfRiskUpdate("a", 0.1))
            queue.submit("t", SelfRiskUpdate("a", 0.9))  # coalesced away
            queue.submit("t", SelfRiskUpdate("b", 0.4))
            batches = queue.drain()
            assert [e.label for e in batches["t"]] == ["a", "b"]
            durable = wal.read_batches()
            assert len(durable) == 1
            assert [e.label for e in durable[0].events] == ["a", "b"]
            assert durable[0].events[0].value == 0.9  # last write won

    def test_wal_failure_restores_events_and_reraises(self, tmp_path):
        plan = WriteFaultPlan(fail_after_bytes=len(WAL_MAGIC), partial=True)
        wal = WriteAheadLog(
            tmp_path,
            io_wrapper=lambda raw: FaultyFile(raw, plan),
            fsync="never",
        )
        queue = IngestionQueue(wal=wal)
        queue.submit("t1", SelfRiskUpdate("a", 0.1))
        queue.submit("t2", SelfRiskUpdate("b", 0.2))
        with pytest.raises(OSError, match="injected"):
            queue.drain()
        # Accepted traffic survived the disk fault, in order, uncounted.
        assert queue.pending("t1") == 1 and queue.pending("t2") == 1
        assert queue.stats.batches == 0 and queue.stats.flushed == 0
        assert count_durable_batches(tmp_path) == 0
        wal.close()


class TestBackpressure:
    def test_error_policy_raises_at_cap(self):
        queue = IngestionQueue(max_pending=2, overflow="error")
        queue.submit("t", SelfRiskUpdate("a", 0.1))
        queue.submit("t", SelfRiskUpdate("b", 0.2))
        with pytest.raises(BackpressureError, match="max_pending"):
            queue.submit("t", SelfRiskUpdate("c", 0.3))
        assert queue.pending("t") == 2
        queue.drain()
        assert queue.submit("t", SelfRiskUpdate("c", 0.3))  # cap freed

    def test_shed_policy_drops_and_counts(self):
        queue = IngestionQueue(max_pending=2, overflow="shed")
        assert queue.submit("t", SelfRiskUpdate("a", 0.1))
        assert queue.submit("t", SelfRiskUpdate("b", 0.2))
        assert not queue.submit("t", SelfRiskUpdate("c", 0.3))
        assert queue.stats.shed == 1
        assert queue.stats.submitted == 2
        assert [e.label for e in queue.drain()["t"]] == ["a", "b"]

    def test_wake_policy_stays_unbounded(self):
        queue = IngestionQueue(max_pending=2, overflow="wake")
        for i in range(10):
            assert queue.submit("t", SelfRiskUpdate(f"n{i}", 0.1))
        assert queue.pending("t") == 10

    def test_bad_policy_rejected(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError, match="overflow"):
            IngestionQueue(overflow="explode")
