"""Tests for the pluggable query-family layer (:mod:`repro.queries`).

The load-bearing properties, in dependency order:

* :class:`~repro.sampling.worldstate.WorldView` realises worlds
  **bit-identically** to the indexed sampler's own outcomes — the
  invariant that lets every family share the monitor's repaired worlds;
* the per-world kernels (component labels, k-core peeling) agree with
  independent brute-force implementations on every enumerated world;
* every family's sampled estimate is pinned to its exact oracle: equal
  on deterministic graphs (a single possible world), statistically
  close on small random graphs enumerated exhaustively;
* two monitors fed the same update stream answer every family in
  lockstep, and the incremental monitor's family answers equal a fresh
  monitor's on the patched graph — drift propagation is correct;
* :func:`~repro.bounds.iterative.certified_topk_mask` never certifies a
  node outside the exact top-k.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bounds.iterative import bound_pair, certified_topk_mask
from repro.core.errors import QueryError, SamplingError
from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph
from repro.core.worlds import enumerate_world_blocks
from repro.queries import (
    QueryEngine,
    available_families,
    get_query_family,
    register_query_family,
)
from repro.queries.kernels import connected_component_labels, kcore_membership
from repro.sampling.worldstate import WorldView
from repro.streaming.events import (
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
    apply_event,
)
from repro.streaming.monitor import TopKMonitor


def random_graph(
    n: int, edge_probability: float, seed: int, max_prob: float = 1.0
) -> UncertainGraph:
    """Erdős–Rényi-ish random uncertain graph (mirrors conftest's)."""
    rng = np.random.default_rng(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, float(rng.random() * max_prob))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < edge_probability:
                graph.add_edge(src, dst, float(rng.random() * max_prob))
    return graph

ESTIMATE_WORLDS = 20_000
#: Absolute tolerance for 20k-world probability estimates: ~5 standard
#: errors of a Bernoulli mean at p=0.5, so statistical flakes are rare.
ESTIMATE_ATOL = 0.02


def sampled_view(graph: UncertainGraph, worlds: int = ESTIMATE_WORLDS,
                 seed: int = 0) -> WorldView:
    return WorldView(
        graph, np.arange(worlds, dtype=np.int64), seed=seed
    )


def deterministic_graph() -> UncertainGraph:
    """Probabilities only 0/1 — exactly one possible world."""
    graph = UncertainGraph()
    risks = [1.0, 0.0, 1.0, 0.0, 0.0]
    for i, risk in enumerate(risks):
        graph.add_node(i, risk)
    for src, dst, prob in [
        (0, 1, 1.0), (1, 2, 0.0), (2, 3, 1.0), (3, 4, 1.0), (0, 4, 0.0)
    ]:
        graph.add_edge(src, dst, prob)
    return graph


# ----------------------------------------------------------------------
# WorldView — the shared read-only world substrate
# ----------------------------------------------------------------------
class TestWorldView:
    def test_bit_identical_to_monitor_sampler(self, small_random_graph):
        """The whole design rests on this: a WorldView over the
        monitor's world ids + stream key realises exactly the worlds
        the indexed sampler repaired."""
        monitor = TopKMonitor(small_random_graph, 3, seed=11)
        monitor.top_k()
        view = monitor.world_view()
        candidates = monitor._sampling_candidates
        assert np.array_equal(
            view.defaulted()[:, candidates], monitor._world_outcomes
        )

    def test_deterministic_in_seed(self, small_random_graph):
        a = sampled_view(small_random_graph, 256, seed=5)
        b = sampled_view(small_random_graph, 256, seed=5)
        c = sampled_view(small_random_graph, 256, seed=6)
        assert np.array_equal(a.defaulted(), b.defaulted())
        assert not np.array_equal(a.self_default(), c.self_default())

    def test_marginals_converge_to_inputs(self, small_random_graph):
        view = sampled_view(small_random_graph)
        np.testing.assert_allclose(
            view.self_default().mean(axis=0),
            small_random_graph.self_risk_array,
            atol=ESTIMATE_ATOL,
        )
        np.testing.assert_allclose(
            view.edge_survives().mean(axis=0),
            small_random_graph.edge_array[2],
            atol=ESTIMATE_ATOL,
        )

    def test_contagion_excludes_self_defaults(self, small_random_graph):
        view = sampled_view(small_random_graph, 512)
        contagion = view.contagion()
        assert not np.any(contagion & view.self_default())
        assert np.all(view.defaulted() == (contagion | view.self_default()))

    def test_cached_memoises(self, small_random_graph):
        view = sampled_view(small_random_graph, 64)
        calls = []
        first = view.cached("probe", lambda: calls.append(1) or 42)
        second = view.cached("probe", lambda: calls.append(1) or 43)
        assert first == second == 42 and len(calls) == 1

    def test_validation(self, small_random_graph):
        with pytest.raises(SamplingError):
            WorldView(small_random_graph, np.array([], dtype=np.int64))
        with pytest.raises(SamplingError):
            WorldView(small_random_graph, np.array([-1]), seed=0)


# ----------------------------------------------------------------------
# Per-world kernels vs brute force
# ----------------------------------------------------------------------
def brute_components(n, src, dst, survives):
    labels = np.empty((survives.shape[0], n), dtype=np.int64)
    for w in range(survives.shape[0]):
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for e in np.flatnonzero(survives[w]):
            a, b = find(int(src[e])), find(int(dst[e]))
            if a != b:
                parent[max(a, b)] = min(a, b)
        labels[w] = [find(v) for v in range(n)]
    return labels


def brute_kcore(n, src, dst, survives, k):
    alive = np.empty((survives.shape[0], n), dtype=bool)
    for w in range(survives.shape[0]):
        nodes = set(range(n))
        while True:
            degree = {v: 0 for v in nodes}
            for e in np.flatnonzero(survives[w]):
                a, b = int(src[e]), int(dst[e])
                if a in nodes and b in nodes:
                    degree[a] += 1
                    degree[b] += 1
            drop = {v for v in nodes if degree[v] < k}
            if not drop:
                break
            nodes -= drop
        alive[w] = [v in nodes for v in range(n)]
    return alive


class TestKernels:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_component_labels_match_union_find(self, seed):
        graph = random_graph(8, 0.3, seed)
        src, dst = graph.edge_array[0], graph.edge_array[1]
        rng = np.random.default_rng(seed)
        survives = rng.random((32, graph.num_edges)) < 0.5
        labels = connected_component_labels(
            graph.num_nodes, src, dst, survives
        )
        assert np.array_equal(
            labels, brute_components(graph.num_nodes, src, dst, survives)
        )

    @pytest.mark.parametrize("core_k", [1, 2, 3])
    def test_kcore_matches_iterative_peeling(self, core_k):
        graph = random_graph(8, 0.4, core_k)
        src, dst = graph.edge_array[0], graph.edge_array[1]
        rng = np.random.default_rng(core_k + 7)
        survives = rng.random((32, graph.num_edges)) < 0.6
        alive = kcore_membership(
            graph.num_nodes, src, dst, survives, core_k
        )
        assert np.array_equal(
            alive, brute_kcore(graph.num_nodes, src, dst, survives, core_k)
        )

    def test_kcore_rejects_bad_order(self):
        with pytest.raises(QueryError):
            kcore_membership(
                2, np.array([0]), np.array([1]), np.ones((1, 1), bool), 0
            )


# ----------------------------------------------------------------------
# Every family: estimate pinned to its exact oracle
# ----------------------------------------------------------------------
FAMILY_CASES = [
    ("topk", {"k": 3}),
    ("kcore", {"k": 2}),
    ("reliability", {"pairs": [[0, 4]], "cluster": [0, 1, 2]}),
    ("skyline", {}),
]


class TestFamilyOracleParity:
    @pytest.mark.parametrize("family,params", FAMILY_CASES)
    def test_estimate_tracks_exact(self, small_random_graph, family, params):
        query = get_query_family(family)
        exact = query.exact(small_random_graph, **params)
        estimate = query.estimate(
            sampled_view(small_random_graph), **params
        )
        assert exact.method == "exact" and estimate.method == "estimate"
        if family == "skyline":
            # The skyline is a *set*: with enough worlds the estimated
            # contagion column orders the same Pareto front.
            assert np.array_equal(exact.nodes, estimate.nodes)
        elif family == "reliability":
            np.testing.assert_allclose(
                estimate.values, exact.values, atol=ESTIMATE_ATOL
            )
        else:
            # Per-node probabilities pinned on the *exact* ranking's
            # nodes: look each up in a full estimated vector (top-k may
            # order near-ties differently; the probabilities must not).
            if family == "topk":
                full = query.estimate(
                    sampled_view(small_random_graph),
                    k=small_random_graph.num_nodes,
                )
            else:
                full = estimate  # kcore reports every node already
            lookup = dict(zip(full.nodes.tolist(), full.values.tolist()))
            for node, value in zip(
                exact.nodes.tolist(), exact.values.tolist()
            ):
                assert abs(lookup[node] - value) < ESTIMATE_ATOL

    @pytest.mark.parametrize("family,params", FAMILY_CASES)
    def test_exact_equality_on_deterministic_graph(self, family, params):
        """One possible world: sampling cannot disagree with the oracle."""
        graph = deterministic_graph()
        query = get_query_family(family)
        exact = query.exact(graph, **params)
        estimate = query.estimate(
            WorldView(graph, np.arange(16, dtype=np.int64), seed=9),
            **params,
        )
        assert np.array_equal(exact.nodes, estimate.nodes)
        np.testing.assert_allclose(estimate.values, exact.values, atol=0)

    def test_topk_exact_matches_exact_module(self, small_random_graph):
        exact = get_query_family("topk").exact(small_random_graph, k=3)
        probabilities = exact_default_probabilities(small_random_graph)
        order = np.lexsort(
            (np.arange(probabilities.size), -probabilities)
        )[:3]
        assert np.array_equal(exact.nodes, order)
        np.testing.assert_allclose(
            exact.values, probabilities[order], atol=1e-12
        )

    def test_reliability_cluster_prob_bounded_by_pairs(
        self, small_random_graph
    ):
        """Cluster connectivity can never beat any of its pair margins."""
        query = get_query_family("reliability")
        result = query.exact(
            small_random_graph, pairs=[[0, 1]], cluster=[0, 1, 2]
        )
        pair_prob = result.details["pairs"][0][2]
        cluster_prob = result.details["cluster"]["probability"]
        assert cluster_prob <= pair_prob + 1e-12

    def test_reliability_validation(self, small_random_graph):
        query = get_query_family("reliability")
        with pytest.raises(QueryError):
            query.exact(small_random_graph)  # neither pairs nor cluster
        with pytest.raises(QueryError):
            query.exact(small_random_graph, pairs=[[0, 99]])
        with pytest.raises(QueryError):
            query.exact(small_random_graph, cluster=[3])

    def test_skyline_contains_every_maximum(self, small_random_graph):
        """Any node maximising one dimension is never dominated."""
        result = get_query_family("skyline").exact(small_random_graph)
        coords = np.array(result.details["coordinates"])
        assert coords.shape[0] == result.nodes.size
        # The top self-risk node must be on the skyline.
        top_self = int(np.argmax(small_random_graph.self_risk_array))
        ties = np.flatnonzero(
            small_random_graph.self_risk_array
            == small_random_graph.self_risk_array[top_self]
        )
        assert any(node in result.nodes for node in ties)


# ----------------------------------------------------------------------
# Shared-world execution: engine memoisation + cross-family reuse
# ----------------------------------------------------------------------
class TestQueryEngine:
    def test_memoises_per_family_and_params(self, small_random_graph):
        engine = QueryEngine(sampled_view(small_random_graph, 256))
        first = engine.run("kcore", k=2)
        again = engine.run("kcore", k=2)
        other = engine.run("kcore", k=3)
        assert again is first and other is not first
        assert engine.hits == 1 and engine.misses == 2

    def test_families_share_one_propagation(self, small_random_graph):
        """topk and skyline both ride the view's single defaulted()
        fixpoint — the cache holds one entry, not one per family."""
        view = sampled_view(small_random_graph, 256)
        engine = QueryEngine(view)
        engine.run("topk", k=2)
        defaulted = view.cached(("defaulted",), lambda: None)
        engine.run("skyline")
        assert view.cached(("defaulted",), lambda: None) is defaulted

    def test_unknown_family_raises_with_listing(self, small_random_graph):
        engine = QueryEngine(sampled_view(small_random_graph, 16))
        with pytest.raises(QueryError, match="kcore"):
            engine.run("no-such-family")

    def test_registry_guards_duplicates(self):
        class Dummy:
            name = "topk"

            def estimate(self, view):  # pragma: no cover - never run
                raise NotImplementedError

            def exact(self, graph):  # pragma: no cover - never run
                raise NotImplementedError

        with pytest.raises(QueryError):
            register_query_family(Dummy())
        # replace=True restores the real implementation at import time,
        # so re-registering the canonical instance is idempotent.
        from repro.queries.topk import TopKQuery

        register_query_family(TopKQuery(), replace=True)
        assert set(available_families()) >= {
            "topk", "kcore", "reliability", "skyline"
        }

    def test_result_is_json_serialisable(self, small_random_graph):
        engine = QueryEngine(sampled_view(small_random_graph, 128))
        for family, params in FAMILY_CASES:
            payload = engine.run(family, **params).to_dict()
            decoded = json.loads(json.dumps(payload))
            assert decoded["family"] == family


# ----------------------------------------------------------------------
# Monitor integration: dirty propagation + lockstep drift
# ----------------------------------------------------------------------
class TestMonitorQueries:
    def test_lockstep_under_identical_streams(self, small_random_graph):
        a = TopKMonitor(small_random_graph.copy(), 3, seed=21)
        b = TopKMonitor(small_random_graph.copy(), 3, seed=21)
        events = [
            SelfRiskUpdate(label=2, value=0.7),
            EdgeProbabilityUpdate(src=0, dst=1, value=0.9),
            SelfRiskUpdate(label=5, value=0.05),
        ]
        for event in events:
            a.apply([event])
            b.apply([event])
            for family, params in FAMILY_CASES:
                left = a.query(family, **params)
                right = b.query(family, **params)
                assert left.same_answer(right), (family, event)

    def test_incremental_matches_fresh_monitor(self, small_random_graph):
        """Drift propagation: after updates, the incremental monitor's
        family answers equal a fresh monitor's over the patched graph
        (same seed ⇒ same worlds ⇒ bit-identical estimates)."""
        incremental = TopKMonitor(small_random_graph.copy(), 3, seed=33)
        incremental.top_k()  # build the indexed state pre-update
        patched = small_random_graph.copy()
        events = [
            SelfRiskUpdate(label=1, value=0.8),
            EdgeProbabilityUpdate(src=2, dst=3, value=0.15),
        ]
        for event in events:
            incremental.apply([event])
            apply_event(patched, event)
        fresh = TopKMonitor(patched, 3, seed=33)
        for family, params in FAMILY_CASES:
            left = incremental.query(family, **params)
            right = fresh.query(family, **params)
            assert left.same_answer(right), family

    def test_queries_reuse_one_engine_until_mutation(
        self, small_random_graph
    ):
        monitor = TopKMonitor(small_random_graph, 3, seed=4)
        monitor.query("topk", k=3)
        engine = monitor._query_engine
        monitor.query("skyline")
        assert monitor._query_engine is engine  # shared worlds reused
        monitor.apply([SelfRiskUpdate(label=0, value=0.9)])
        monitor.query("topk", k=3)
        assert monitor._query_engine is not engine  # retired on dirt

    def test_world_view_matches_estimator_probabilities(
        self, small_random_graph
    ):
        """The family layer's probabilities agree with the monitor's
        own sampled estimates on the candidate set (same worlds)."""
        monitor = TopKMonitor(small_random_graph, 3, seed=12)
        monitor.top_k()
        view = monitor.world_view()
        candidates = monitor._sampling_candidates
        expected = monitor._world_outcomes.mean(axis=0)
        actual = view.defaulted()[:, candidates].mean(axis=0)
        np.testing.assert_allclose(actual, expected, atol=0)


# ----------------------------------------------------------------------
# Certified partial answers on the bounds path
# ----------------------------------------------------------------------
class TestCertifiedMask:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_certified_nodes_are_truly_topk(self, seed, k):
        graph = random_graph(7, 0.3, seed, max_prob=0.7)
        exact = exact_default_probabilities(graph)
        lower, upper = bound_pair(graph)
        certified = certified_topk_mask(lower, upper, k)
        for node in np.flatnonzero(certified):
            better = int(np.sum(exact >= exact[node])) - 1
            assert better < k, (
                f"node {node} certified but {better} nodes reach its "
                f"exact probability"
            )

    def test_synthetic_soundness(self):
        rng = np.random.default_rng(99)
        for _ in range(50):
            truth = rng.random(20)
            lower = np.maximum(0.0, truth - rng.random(20) * 0.3)
            upper = np.minimum(1.0, truth + rng.random(20) * 0.3)
            k = int(rng.integers(1, 20))
            certified = certified_topk_mask(lower, upper, k)
            threshold = np.sort(truth)[-k]
            for node in np.flatnonzero(certified):
                assert int(np.sum(truth >= truth[node])) <= k

    def test_tight_bounds_certify_everything(self):
        exact = np.array([0.9, 0.5, 0.3, 0.1])
        certified = certified_topk_mask(exact, exact, 2)
        assert certified.tolist() == [True, True, False, False]

    def test_loose_bounds_certify_nothing(self):
        n = 6
        certified = certified_topk_mask(
            np.zeros(n), np.ones(n), 3
        )
        assert not certified.any()

    def test_monitor_bounds_topk_reports_certificates(
        self, small_random_graph
    ):
        monitor = TopKMonitor(small_random_graph, 3, seed=8)
        result = monitor.bounds_topk()
        certified = result.details["certified"]
        assert len(certified) == 3
        assert result.details["certified_count"] == sum(certified)
        lower, upper = bound_pair(small_random_graph)
        mask = certified_topk_mask(lower, upper, 3)
        exact = exact_default_probabilities(small_random_graph)
        for node, flag in zip(result.nodes, certified):
            index = small_random_graph.index(node)
            assert flag == bool(mask[index])
            if flag:  # a certified node really is in the exact top-3
                assert int(np.sum(exact >= exact[index])) <= 3

    def test_validation_mirrors_bounds_only_topk(self):
        with pytest.raises(SamplingError):
            certified_topk_mask(np.zeros(3), np.ones(3), 0)
        with pytest.raises(SamplingError):
            certified_topk_mask(np.zeros(3), np.ones(4), 1)


# ----------------------------------------------------------------------
# Shared worlds beat per-query resampling (the amortisation claim)
# ----------------------------------------------------------------------
def test_shared_view_realises_worlds_once(small_random_graph):
    """Eight queries on one engine touch the PRF lattice once; the same
    eight on fresh views pay it eight times — counted, not timed, so
    the assertion is exact and machine-independent."""
    realisations = []
    original = WorldView._realise

    def counting_realise(self):
        realisations.append(id(self))
        return original(self)

    WorldView._realise = counting_realise
    try:
        shared = QueryEngine(sampled_view(small_random_graph, 2048))
        for family, params in FAMILY_CASES * 2:
            shared.run(family, **params)
        shared_cost = len(set(realisations))
        realisations.clear()
        # Keep every engine alive so view ids cannot be recycled and
        # collapse the distinct-realisation count.
        engines = []
        for family, params in FAMILY_CASES * 2:
            lone = QueryEngine(sampled_view(small_random_graph, 2048))
            lone.run(family, **params)
            engines.append(lone)
        fresh_cost = len(set(realisations))
    finally:
        WorldView._realise = original
    assert shared_cost == 1
    assert fresh_cost == len(FAMILY_CASES) * 2
