"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.graph import UncertainGraph

# One shared hypothesis profile: modest example counts keep the suite fast
# while still exercising the properties.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _synthetic_datasets_only(monkeypatch, tmp_path_factory):
    """Isolate tests from real SNAP downloads on the developer's disk.

    ``load_dataset`` substitutes real topology whenever the file exists
    under ``data/snap`` / ``$REPRO_DATA_DIR``; shape and determinism
    assertions must not depend on whether someone ran the download
    script.  Points the data dir at an empty directory — the SNAP tests
    re-point it at their bundled fixtures explicitly.
    """
    monkeypatch.setenv(
        "REPRO_DATA_DIR",
        str(tmp_path_factory.getbasetemp() / "no-snap-data"),
    )


@pytest.fixture
def paper_graph() -> UncertainGraph:
    """The toy guaranteed-loan network of the paper's Figure 3.

    Five nodes A–E, six edges, all probabilities 0.2 — the setting of
    Example 1, where the paper computes ``p(B) = 0.232``.
    """
    graph = UncertainGraph()
    for name in "ABCDE":
        graph.add_node(name, self_risk=0.2)
    for src, dst in [
        ("A", "B"),
        ("A", "C"),
        ("B", "D"),
        ("B", "E"),
        ("C", "E"),
        ("D", "E"),
    ]:
        graph.add_edge(src, dst, probability=0.2)
    return graph


@pytest.fixture
def chain_graph() -> UncertainGraph:
    """A 4-node directed chain with distinct probabilities."""
    graph = UncertainGraph()
    risks = {"a": 0.5, "b": 0.1, "c": 0.0, "d": 0.2}
    for name, risk in risks.items():
        graph.add_node(name, risk)
    graph.add_edge("a", "b", 0.8)
    graph.add_edge("b", "c", 0.6)
    graph.add_edge("c", "d", 0.4)
    return graph


@pytest.fixture
def diamond_graph() -> UncertainGraph:
    """A diamond (shared-ancestor) graph: A -> {B, C} -> D."""
    graph = UncertainGraph()
    for name in "ABCD":
        graph.add_node(name, 0.3)
    graph.add_edge("A", "B", 0.5)
    graph.add_edge("A", "C", 0.5)
    graph.add_edge("B", "D", 0.5)
    graph.add_edge("C", "D", 0.5)
    return graph


@pytest.fixture
def singleton_graph() -> UncertainGraph:
    """One node, no edges."""
    graph = UncertainGraph()
    graph.add_node("only", 0.4)
    return graph


def random_graph(
    n: int, edge_probability: float, seed: int, max_prob: float = 1.0
) -> UncertainGraph:
    """Erdős–Rényi-ish random uncertain graph for statistical tests."""
    rng = np.random.default_rng(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, float(rng.random() * max_prob))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < edge_probability:
                graph.add_edge(src, dst, float(rng.random() * max_prob))
    return graph


@pytest.fixture
def small_random_graph() -> UncertainGraph:
    """A fixed 7-node random graph small enough for exact enumeration."""
    rng = np.random.default_rng(123)
    graph = UncertainGraph()
    for i in range(7):
        graph.add_node(i, float(rng.uniform(0.05, 0.6)))
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5)]
    for src, dst in edges:
        graph.add_edge(src, dst, float(rng.uniform(0.1, 0.9)))
    return graph
