"""Tests for repro.sampling.rng — generator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.rng import RandomBlock, make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = make_rng(sequence).random()
        b = make_rng(np.random.SeedSequence(7)).random()
        assert a == b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_reproducible(self):
        first = [rng.random() for rng in spawn_rngs(3, 4)]
        second = [rng.random() for rng in spawn_rngs(3, 4)]
        assert first == second

    def test_children_mutually_distinct(self):
        draws = [rng.random() for rng in spawn_rngs(3, 8)]
        assert len(set(draws)) == 8

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(5)
        children = spawn_rngs(rng, 2)
        assert len(children) == 2
        assert children[0].random() != children[1].random()


class TestRandomBlock:
    def test_scalar_draws_match_generator_stream(self):
        """Block consumption is bit-identical to scalar rng.random() calls."""
        block = RandomBlock(make_rng(0), chunk=8)
        reference = make_rng(0)
        for _ in range(25):  # crosses multiple refills
            assert block.next() == reference.random()

    def test_take_matches_generator_stream(self):
        block = RandomBlock(make_rng(3), chunk=8)
        reference = make_rng(3)
        # Mixed scalar/vector consumption, including takes larger than
        # the chunk, must reproduce the raw stream exactly.
        drawn = [block.next(), block.next()]
        drawn.extend(block.take(5))
        drawn.extend(block.take(20))
        drawn.append(block.next())
        expected = [reference.random() for _ in range(len(drawn))]
        assert np.array_equal(np.asarray(drawn), np.asarray(expected))

    def test_take_zero(self):
        block = RandomBlock(make_rng(0))
        assert block.take(0).size == 0

    def test_take_returns_fresh_arrays(self):
        block = RandomBlock(make_rng(0), chunk=16)
        first = block.take(4)
        second = block.take(4)
        first[:] = -1.0  # must not corrupt later draws
        assert np.all(second >= 0.0)
        assert np.all(block.take(4) >= 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomBlock(make_rng(0), chunk=0)
        with pytest.raises(ValueError):
            RandomBlock(make_rng(0)).take(-1)

    def test_remaining(self):
        block = RandomBlock(make_rng(0), chunk=10)
        assert block.remaining == 0
        block.next()
        assert block.remaining == 9
        block.take(4)
        assert block.remaining == 5


class TestCounterPRF:
    """The SplitMix64 counter-PRF primitives agree with one another."""

    def test_mantissas_variants_and_uniforms_agree(self):
        from repro.sampling.rng import (
            hashed_mantissas,
            hashed_mantissas_inplace,
            hashed_uniforms,
        )

        key = np.uint64(0x9E3779B97F4A7C15)
        counters = np.arange(4096, dtype=np.uint64) * np.uint64(977) + key
        mantissas = hashed_mantissas(key, counters.copy())
        inplace = hashed_mantissas_inplace(key, counters.copy())
        uniforms = hashed_uniforms(key, counters.copy())
        assert np.array_equal(mantissas, inplace)
        # The documented contract: uniforms == mantissas * 2**-53 exactly.
        assert np.array_equal(uniforms, mantissas.astype(np.float64) * 2.0**-53)
        assert ((uniforms >= 0.0) & (uniforms < 1.0)).all()

    def test_tile_matches_elementwise_hashing(self):
        from repro.sampling.rng import hashed_uniform_tile, hashed_uniforms

        key = np.uint64(1234567891011)
        rows = np.array([0, 3, 2**63], dtype=np.uint64)
        cols = np.array([0, 1, 41, 2**62], dtype=np.uint64)
        tile = hashed_uniform_tile(key, rows, cols)
        for i, row in enumerate(rows):
            expected = hashed_uniforms(key, row + cols)
            assert np.array_equal(tile[i], expected)
