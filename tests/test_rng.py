"""Tests for repro.sampling.rng — generator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = make_rng(sequence).random()
        b = make_rng(np.random.SeedSequence(7)).random()
        assert a == b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_reproducible(self):
        first = [rng.random() for rng in spawn_rngs(3, 4)]
        second = [rng.random() for rng in spawn_rngs(3, 4)]
        assert first == second

    def test_children_mutually_distinct(self):
        draws = [rng.random() for rng in spawn_rngs(3, 8)]
        assert len(set(draws)) == 8

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(5)
        children = spawn_rngs(rng, 2)
        assert len(children) == 2
        assert children[0].random() != children[1].random()
