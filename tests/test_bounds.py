"""Tests for repro.bounds.iterative — Algorithms 2 and 3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.iterative import bound_pair, lower_bounds, upper_bounds
from repro.core.eq1 import dag_default_probabilities
from repro.core.errors import SamplingError
from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph


class TestLowerBounds:
    def test_order_one_is_self_risk(self, paper_graph):
        assert np.allclose(lower_bounds(paper_graph, 1), 0.2)

    def test_order_two_matches_one_eq1_step(self, paper_graph):
        result = lower_bounds(paper_graph, 2)
        assert result[paper_graph.index("B")] == pytest.approx(0.232)

    def test_monotone_in_order(self, small_random_graph):
        previous = lower_bounds(small_random_graph, 1)
        for order in range(2, 6):
            current = lower_bounds(small_random_graph, order)
            assert np.all(current >= previous - 1e-12)
            previous = current

    def test_invalid_order(self, paper_graph):
        with pytest.raises(SamplingError):
            lower_bounds(paper_graph, 0)


class TestUpperBounds:
    def test_order_one_pins_neighbors_to_one(self, paper_graph):
        result = upper_bounds(paper_graph, 1)
        b = paper_graph.index("B")
        assert result[b] == pytest.approx(1 - 0.8 * 0.8)

    def test_source_node_upper_equals_self_risk(self, paper_graph):
        result = upper_bounds(paper_graph, 1)
        assert result[paper_graph.index("A")] == pytest.approx(0.2)

    def test_monotone_decreasing_in_order(self, small_random_graph):
        previous = upper_bounds(small_random_graph, 1)
        for order in range(2, 6):
            current = upper_bounds(small_random_graph, order)
            assert np.all(current <= previous + 1e-12)
            previous = current

    def test_invalid_order(self, paper_graph):
        with pytest.raises(SamplingError):
            upper_bounds(paper_graph, -2)


class TestBoundsBracketTruth:
    def test_bracket_eq1_fixed_point_on_dag(self, paper_graph):
        """On a DAG the Eq.(1) value must sit between the bounds."""
        value = dag_default_probabilities(paper_graph)
        for order in (1, 2, 3, 4):
            assert np.all(lower_bounds(paper_graph, order) <= value + 1e-9)
            assert np.all(upper_bounds(paper_graph, order) >= value - 1e-9)

    def test_bracket_exact_on_tree(self):
        """On trees Eq.(1) is exact, so bounds bracket the true p(v)."""
        graph = UncertainGraph()
        graph.add_node("r", 0.3)
        for i, child in enumerate("abc"):
            graph.add_node(child, 0.1 * (i + 1))
            graph.add_edge("r", child, 0.4)
        graph.add_node("leaf", 0.05)
        graph.add_edge("a", "leaf", 0.7)
        exact = exact_default_probabilities(graph)
        for order in (1, 2, 3, 5):
            assert np.all(lower_bounds(graph, order) <= exact + 1e-9)
            assert np.all(upper_bounds(graph, order) >= exact - 1e-9)

    def test_high_order_bounds_converge_on_dag(self, paper_graph):
        lower = lower_bounds(paper_graph, 10)
        upper = upper_bounds(paper_graph, 10)
        assert np.allclose(lower, upper, atol=1e-6)


class TestBoundPair:
    def test_pair_never_inverted(self, small_random_graph):
        for lower_order in (1, 2, 3):
            for upper_order in (1, 2, 3):
                lower, upper = bound_pair(
                    small_random_graph, lower_order, upper_order
                )
                assert np.all(lower <= upper)

    def test_pair_never_inverted_on_cyclic_graph(self):
        graph = UncertainGraph()
        for i in range(4):
            graph.add_node(i, 0.2)
        for i in range(4):
            graph.add_edge(i, (i + 1) % 4, 0.5)  # directed 4-cycle
        lower, upper = bound_pair(graph, 3, 3)
        assert np.all(lower <= upper)
        assert np.all(lower >= 0.2 - 1e-12)
        assert np.all(upper <= 1.0)

    def test_sources_have_tight_bounds(self, paper_graph):
        lower, upper = bound_pair(paper_graph, 2, 2)
        a = paper_graph.index("A")
        assert lower[a] == pytest.approx(upper[a])
        assert lower[a] == pytest.approx(0.2)
