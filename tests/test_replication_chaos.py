"""Chaos matrix for replicated serving.

Five fault cases, each asserting the replication stack's central
claim: after the fault, the surviving lineage's answers are
bit-identical to a never-crashed reference fed the same accepted
events, and a deposed primary's late writes are provably fenced.

"Accepted" is measured at the replication-ack boundary: an event is in
the promoted lineage once its batch was shipped and applied by the
replica.  Events acked durable by a primary that dies before shipping
them are re-driven by the client (the router's retry-on-failover
contract) — here the deterministic workload's suffix replay plays that
client role, exactly as the local crash-recovery tests do.
"""

from __future__ import annotations

import errno
import multiprocessing
import random
import threading
import time

import pytest

from repro.core.errors import FencedError
from repro.core.graph import UncertainGraph
from repro.frontend.server import FrontendServer
from repro.persistence.faults import (
    CrashHarness,
    FaultyFile,
    WriteFaultPlan,
    count_durable_batches,
)
from repro.replication import (
    EpochStore,
    FailoverCoordinator,
    HttpSource,
    LocalSource,
    ReplicaService,
    ReplicationHub,
    WalShipper,
)
from repro.serving.service import RiskService
from repro.streaming.events import SelfRiskUpdate

DEFAULTS = {"seed": 42, "epsilon": 0.5}
TOKENS = {"t1": "t1-secret"}
CLUSTER_TOKEN = "cluster-secret"
K = 5

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos matrix needs the fork start method",
)


def make_graph(n=14, seed=7, density=0.2):
    rng = random.Random(seed)
    graph = UncertainGraph()
    for i in range(n):
        graph.add_node(i, rng.uniform(0.05, 0.6))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < density:
                graph.add_edge(src, dst, rng.uniform(0.1, 0.9))
    return graph


def make_workload(graph, rounds, events_per_batch=2, seed=3):
    rng = random.Random(seed)
    return [
        [
            SelfRiskUpdate(
                rng.randrange(graph.num_nodes), rng.uniform(0.0, 1.0)
            )
            for _ in range(events_per_batch)
        ]
        for _ in range(rounds)
    ]


def drive_batches(service, workload, *, pause=0.0):
    for batch in workload:
        for event in batch:
            service.submit_update("t1", event)
        service.flush()
        if pause:
            time.sleep(pause)


def reference_answer(graph, workload):
    """Uninterrupted, non-durable run — the bit-identity baseline."""
    service = RiskService(graph, mode="serial", monitor_defaults=DEFAULTS)
    service.register_tenant("t1", K)
    drive_batches(service, workload)
    answer = service.query_topk("t1")
    service.close()
    return answer


def batches_applied(service):
    stats = service.snapshot().shards[0]["monitor_stats"]
    return stats["t1"]["refreshes"]


def finish_on(service, workload):
    """Replay the workload suffix the lineage is missing, then answer."""
    done = batches_applied(service)
    drive_batches(service, workload[done:])
    return service.query_topk("t1")


def wait_for(condition, *, timeout=30.0, poll=0.005, message="condition"):
    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {message}")
        time.sleep(poll)


class ServerThread:
    """A FrontendServer with replication routes on its own loop thread."""

    def __init__(self, service, hub):
        import asyncio

        self.server = FrontendServer(
            service,
            TOKENS,
            flush_interval=0.01,
            replication=hub,
            cluster_token=CLUSTER_TOKEN,
        )
        self._asyncio = asyncio
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self._loop = self._asyncio.get_running_loop()
            self._stop = self._asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._stop.wait()
            await self.server.stop()

        self._asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(30), "server failed to start"
        return self.server

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


# ----------------------------------------------------------------------
# Case 1: SIGKILL the primary mid-drain; promote; prove bit-identity.
# ----------------------------------------------------------------------
class TestKillPrimaryMidDrain:
    def test_promotion_after_primary_sigkill_is_bit_identical(
        self, tmp_path
    ):
        graph = make_graph()
        workload = make_workload(graph, rounds=10)
        primary_dir = tmp_path / "p1"
        epoch_path = tmp_path / "epoch.json"
        port_file = tmp_path / "port.txt"

        def child():
            import asyncio

            service = RiskService(
                graph,
                mode="serial",
                wal_dir=primary_dir,
                fsync="always",
                monitor_defaults=DEFAULTS,
                epoch_store=EpochStore(epoch_path),
                node_id="p1",
            )
            hub = ReplicationHub(service)
            server = FrontendServer(
                service,
                TOKENS,
                flush_interval=0.01,
                replication=hub,
                cluster_token=CLUSTER_TOKEN,
            )

            async def main():
                await server.start()
                port_file.write_text(str(server.port))
                loop = asyncio.get_running_loop()

                def stream():
                    service.register_tenant("t1", K)
                    drive_batches(service, workload, pause=0.05)

                await loop.run_in_executor(None, stream)
                await asyncio.sleep(600)  # idle until the parent kills

            asyncio.run(main())

        harness = CrashHarness(child).start()
        replica = ReplicaService(
            graph,
            tmp_path / "r1",
            node_id="r1",
            mode="serial",
            monitor_defaults=DEFAULTS,
        )
        shipper = None
        try:
            wait_for(port_file.exists, message="server port")
            port = int(port_file.read_text())
            shipper = WalShipper(
                HttpSource("127.0.0.1", port, CLUSTER_TOKEN),
                replica,
                poll_interval=0.005,
                backoff=0.01,
            )
            shipper.start()
            # The kill lands mid-drain: some batches replicated, the
            # workload still streaming on the other side.
            assert harness.kill_when(lambda: replica.applied_seq >= 4)
        finally:
            if shipper is not None:
                shipper.stop()
            harness.kill()

        coordinator = FailoverCoordinator(EpochStore(epoch_path))
        winner, promoted = coordinator.promote(
            {"r1": replica}, fsync="always"
        )
        try:
            assert winner == "r1"
            assert coordinator.events[-1].epoch == 2
            survived = batches_applied(promoted)
            assert survived >= 1  # the lineage carried real progress
            answer = finish_on(promoted, workload)
            assert reference_answer(graph, workload).same_answer(answer)
        finally:
            promoted.close()


# ----------------------------------------------------------------------
# Case 2: SIGKILL a replica mid-catch-up; restart; resume; complete.
# ----------------------------------------------------------------------
class TestKillReplicaMidCatchUp:
    def test_restart_resumes_from_cursor_and_catches_up(self, tmp_path):
        graph = make_graph()
        workload = make_workload(graph, rounds=14)
        mirror = tmp_path / "r1"
        primary = RiskService(
            graph,
            mode="serial",
            wal_dir=tmp_path / "p1",
            fsync="always",
            monitor_defaults=DEFAULTS,
        )
        primary.register_tenant("t1", K)
        drive_batches(primary, workload)
        hub = ReplicationHub(primary)
        with ServerThread(primary, hub) as server:
            port = server.port

            def child():
                replica = ReplicaService(
                    graph,
                    mirror,
                    node_id="r1",
                    mode="serial",
                    monitor_defaults=DEFAULTS,
                )
                shipper = WalShipper(
                    HttpSource("127.0.0.1", port, CLUSTER_TOKEN),
                    replica,
                    max_bytes=200,  # small chunks: a long kill window
                )
                while True:
                    shipper.step()
                    time.sleep(0.01)

            harness = CrashHarness(child).start()
            try:
                killed = harness.kill_when(
                    lambda: count_durable_batches(mirror) >= 3
                )
                assert killed, "replica caught up before the kill landed"
            finally:
                harness.kill()

            # Local recovery repairs any torn mirror tail and resumes
            # shipping from the verified cursor — no re-bootstrap.
            restarted = ReplicaService(
                graph,
                mirror,
                node_id="r1",
                mode="serial",
                monitor_defaults=DEFAULTS,
            )
            try:
                assert not restarted.is_cold
                assert restarted.applied_seq >= 3
                WalShipper(LocalSource(hub), restarted).catch_up()
                assert restarted.lag == 0
                assert primary.query_topk("t1").same_answer(
                    restarted.query_topk("t1")
                )
            finally:
                restarted.close()
        primary.close()


# ----------------------------------------------------------------------
# Case 3: the shipping link drops and reconnects, repeatedly.
# ----------------------------------------------------------------------
class FlakySource:
    """Wraps a source; drops the connection every *fail_every* fetches."""

    def __init__(self, inner, *, fail_every=4):
        self._inner = inner
        self._fail_every = fail_every
        self._calls = 0
        self.failures = 0

    def fetch(self, *args, **kwargs):
        self._calls += 1
        if self._calls % self._fail_every == 0:
            self.failures += 1
            raise ConnectionError("link dropped")
        return self._inner.fetch(*args, **kwargs)

    def bootstrap(self, replica_id):
        return self._inner.bootstrap(replica_id)


class TestShipperDisconnectReconnect:
    def test_reconnects_and_stays_bit_identical(self, tmp_path):
        graph = make_graph()
        workload = make_workload(graph, rounds=12)
        primary = RiskService(
            graph,
            mode="serial",
            wal_dir=tmp_path / "p1",
            fsync="always",
            monitor_defaults=DEFAULTS,
        )
        primary.register_tenant("t1", K)
        hub = ReplicationHub(primary)
        replica = ReplicaService(
            graph,
            tmp_path / "r1",
            node_id="r1",
            mode="serial",
            monitor_defaults=DEFAULTS,
        )
        source = FlakySource(LocalSource(hub), fail_every=4)
        shipper = WalShipper(
            source, replica,
            max_bytes=160, poll_interval=0.001, backoff=0.001,
        )
        shipper.start()
        try:
            drive_batches(primary, workload, pause=0.002)
            wait_for(
                lambda: replica.lag == 0
                and replica.applied_seq == primary.durable_seq,
                message="replica catch-up across disconnects",
            )
        finally:
            shipper.stop()
        assert source.failures >= 2  # the link really did keep dropping
        assert shipper.stats["reconnects"] >= 2
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        primary.close()
        replica.close()


# ----------------------------------------------------------------------
# Case 4: ENOSPC on the replica's mirror WAL.
# ----------------------------------------------------------------------
class TestReplicaDiskFull:
    def test_enospc_stalls_then_resumes_bit_identically(self, tmp_path):
        graph = make_graph()
        workload = make_workload(graph, rounds=12)
        primary = RiskService(
            graph,
            mode="serial",
            wal_dir=tmp_path / "p1",
            fsync="always",
            monitor_defaults=DEFAULTS,
        )
        primary.register_tenant("t1", K)
        hub = ReplicationHub(primary)
        plan = WriteFaultPlan(
            fail_after_bytes=700,
            partial=True,  # the torn-mirror case repair_to exists for
            error_errno=errno.ENOSPC,
            message="No space left on device",
        )
        mirror = tmp_path / "r1"
        replica = ReplicaService(
            graph,
            mirror,
            node_id="r1",
            mode="serial",
            monitor_defaults=DEFAULTS,
            io_wrapper=lambda raw: FaultyFile(raw, plan),
        )
        shipper = WalShipper(
            LocalSource(hub), replica,
            max_bytes=160, poll_interval=0.001, backoff=0.001,
            backoff_cap=0.01,
        )
        shipper.start()
        try:
            drive_batches(primary, workload)
            # The disk fills: shipping stalls in its retry loop.
            wait_for(
                lambda: plan.tripped and shipper.stats["reconnects"] >= 1,
                message="ENOSPC to trip the mirror",
            )
            stalled_at = replica.applied_seq
            assert stalled_at < primary.durable_seq
            # Space frees: shipping resumes where it stopped.
            plan.clear()
            wait_for(
                lambda: replica.lag == 0
                and replica.applied_seq == primary.durable_seq,
                message="catch-up after space freed",
            )
        finally:
            shipper.stop()
        assert primary.query_topk("t1").same_answer(
            replica.query_topk("t1")
        )
        replica.close()

        # The mirror is clean on disk: a cold restart of the replica
        # recovers every applied batch with no corruption.
        reopened = ReplicaService(
            graph,
            mirror,
            node_id="r1",
            mode="serial",
            monitor_defaults=DEFAULTS,
        )
        try:
            assert primary.query_topk("t1").same_answer(
                reopened.query_topk("t1")
            )
        finally:
            reopened.close()
            primary.close()


# ----------------------------------------------------------------------
# Case 5: promotion races a slow deposed primary still taking writes.
# ----------------------------------------------------------------------
class TestPromotionRace:
    def test_deposed_primary_is_fenced_and_lineage_stays_clean(
        self, tmp_path
    ):
        graph = make_graph()
        events = [event for batch in make_workload(graph, 100, 1)
                  for event in batch]
        store = EpochStore(tmp_path / "epoch.json")
        primary = RiskService(
            graph,
            mode="serial",
            wal_dir=tmp_path / "p1",
            fsync="always",
            monitor_defaults=DEFAULTS,
            epoch_store=store,
            node_id="p1",
        )
        primary.register_tenant("t1", K)
        hub = ReplicationHub(primary)

        def spawn_replica(name):
            return ReplicaService(
                graph,
                tmp_path / name,
                node_id=name,
                mode="serial",
                monitor_defaults=DEFAULTS,
            )

        replica = spawn_replica("r1")
        laggard = spawn_replica("r2")
        shipper = WalShipper(
            LocalSource(hub), replica,
            poll_interval=0.001, backoff=0.001,
        )
        shipper.start()

        accepted = []
        fenced = threading.Event()

        def writer():
            # The slow deposed primary: keeps accepting writes right
            # through the promotion until the fence stops it.
            for event in events:
                try:
                    primary.submit_and_sync("t1", event)
                except FencedError:
                    fenced.set()
                    return
                accepted.append(event)
                time.sleep(0.002)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            wait_for(lambda: len(accepted) >= 10, message="mid-stream")
            # The laggard replicates only a prefix, then its link dies.
            WalShipper(LocalSource(hub), laggard, max_bytes=300).step()
            coordinator = FailoverCoordinator(store)
            winner, promoted = coordinator.promote(
                {"r1": replica, "r2": laggard}, fsync="always"
            )
        finally:
            thread.join(30)
            shipper.stop()
        assert not thread.is_alive()
        try:
            assert winner == "r1"  # most caught up wins
            assert promoted.epoch == 2
            # The writer was provably fenced mid-stream, not drained.
            assert fenced.is_set()
            assert len(accepted) < len(events)
            # Late flush from the deposed primary dies too.
            with pytest.raises(FencedError):
                primary.submit_and_sync("t1", events[-1])

            # The promoted lineage holds a clean prefix of the accepted
            # stream: replaying the remainder reproduces the reference
            # bit for bit.  (+1 for the registration batch is already
            # excluded: refreshes counts event batches only.)
            survived = batches_applied(promoted)
            assert survived <= len(accepted)
            reference = reference_answer(
                graph, [[event] for event in events[:survived]]
            )
            assert reference.same_answer(promoted.query_topk("t1"))

            # The laggard was fenced below the new epoch: the deposed
            # primary's remaining epoch-1 bytes are rejected wholesale.
            late = WalShipper(LocalSource(hub), laggard)
            with pytest.raises(FencedError):
                late.catch_up(timeout=5.0)
        finally:
            promoted.close()
            primary.close()
            laggard.close()
