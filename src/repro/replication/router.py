"""Replica-aware request routing: failover writes, hedged stale reads.

:class:`ReplicatedClient` is the client-side half of the replicated
topology.  It holds one :class:`NodeHandle` per process (local object
or HTTP endpoint — the router cannot tell the difference) and:

* **routes writes to the current primary**, discovered from the
  handles' health reports (role ``primary``, highest epoch wins — a
  deposed primary that still answers health probes loses to the
  promoted one).  A write that hits a fenced, dead, or overloaded
  node retries against a refreshed topology with jittered backoff,
  honouring ``Retry-After``, until its deadline budget is spent.
* **fans reads out to replicas**, bounded-stale: a replica whose
  reported lag exceeds ``max_lag`` batches is skipped; results from a
  lagging-but-acceptable replica are marked ``stale``.  With no
  eligible replica the read falls through to the primary.
* **hedges slow reads**: each node's read latency feeds an EWMA
  mean/deviation estimate; when the first replica's response exceeds
  the estimated p99, a second request fires at the next-best node and
  the first answer to arrive wins.  Hedges are counted, not free —
  ``stats["hedged_reads"]`` keeps the duplicate-work cost visible.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Hashable, Protocol, Sequence

from repro.core.errors import FencedError, ReplicationError

__all__ = [
    "EwmaLatency",
    "NodeHandle",
    "LocalPrimaryHandle",
    "LocalReplicaHandle",
    "HttpNodeHandle",
    "ReplicatedClient",
]

TenantId = Hashable


class NodeUnavailable(ReplicationError):
    """A handle's process did not answer (dead, fenced, or refusing)."""

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class EwmaLatency:
    """EWMA mean + mean-absolute-deviation latency estimate.

    ``p99() ~= mean + 3 * deviation`` — for the roughly exponential
    service-time tails the front end produces this is a serviceable
    p99 proxy without keeping a histogram per node.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        self._alpha = float(alpha)
        self._mean: float | None = None
        self._dev = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        if self._mean is None:
            self._mean = seconds
        else:
            error = seconds - self._mean
            self._dev = (
                (1 - self._alpha) * self._dev + self._alpha * abs(error)
            )
            self._mean += self._alpha * error
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def p99(self) -> float | None:
        if self._mean is None:
            return None
        return self._mean + 3.0 * self._dev


class NodeHandle(Protocol):
    """What the router needs from one process of the topology."""

    node_id: str

    def health(self) -> dict: ...

    def submit(
        self, tenant: TenantId, event, *, ack: str = "window",
        timeout: float = 5.0,
    ) -> dict: ...

    def query_topk(self, tenant: TenantId, *, max_lag: int | None = None): ...


class LocalPrimaryHandle:
    """In-process handle over a durable :class:`RiskService` (+ hub)."""

    def __init__(self, service, hub=None, *, node_id: str | None = None):
        self._service = service
        self._hub = hub
        self.node_id = node_id if node_id is not None else service.node_id

    def health(self) -> dict:
        service = self._service
        return {
            "node": self.node_id,
            "role": "primary",
            "epoch": service.epoch,
            "applied_seq": service.durable_seq,
            "lag": 0,
        }

    def submit(self, tenant, event, *, ack="window", timeout=5.0) -> dict:
        try:
            if ack == "window":
                accepted = self._service.submit_update(tenant, event)
                return {"accepted": bool(accepted)}
            seq = self._service.submit_and_sync(tenant, event)
            if seq < 0:
                return {"accepted": False}
            reply = {"accepted": True, "seq": seq}
            if ack == "replicated":
                if self._hub is None:
                    raise ReplicationError(
                        "ack=replicated needs a replication hub"
                    )
                reply["replicated"] = self._hub.wait_replicated(
                    seq, timeout=timeout
                )
            return reply
        except FencedError as error:
            raise NodeUnavailable(str(error), retry_after=0.01) from error

    def query_topk(self, tenant, *, max_lag=None):
        return self._service.query_topk(tenant)


class LocalReplicaHandle:
    """In-process handle over a tailing :class:`ReplicaService`."""

    def __init__(self, replica) -> None:
        self._replica = replica
        self.node_id = replica.node_id

    def health(self) -> dict:
        return self._replica.health()

    def submit(self, tenant, event, *, ack="window", timeout=5.0) -> dict:
        raise NodeUnavailable(
            f"{self.node_id} is a replica; writes go to the primary"
        )

    def query_topk(self, tenant, *, max_lag=None):
        return self._replica.query_topk(tenant, max_lag=max_lag)


class HttpNodeHandle:
    """Handle over a front end's wire protocol (health + update + query)."""

    def __init__(
        self, node_id: str, host: str, port: int, token: str, *,
        tenant_tokens=None, timeout: float = 10.0,
    ) -> None:
        from repro.frontend.client import FrontendClient

        self.node_id = str(node_id)
        # Router-level retries would fight the router's own failover
        # loop; one attempt per call.
        self._client = FrontendClient(
            host, port, token, retries=1, timeout=timeout,
        )
        self._tenant_tokens = dict(tenant_tokens or {})
        self._host, self._port, self._timeout = host, int(port), timeout

    def _tenant_client(self, tenant):
        token = self._tenant_tokens.get(tenant)
        if token is None:
            return self._client
        from repro.frontend.client import FrontendClient

        return FrontendClient(
            self._host, self._port, token,
            retries=1, timeout=self._timeout,
        )

    def health(self) -> dict:
        response = self._client.request("GET", "/v1/health")
        if response.status != 200:
            raise NodeUnavailable(
                f"{self.node_id} health: {response.status}"
            )
        return response.payload

    def submit(self, tenant, event, *, ack="window", timeout=5.0) -> dict:
        from repro.frontend.protocol import event_to_json

        response = self._tenant_client(tenant).request(
            "POST", "/v1/update",
            {
                "tenant": tenant,
                "event": event_to_json(event),
                "ack": ack,
                "timeout": timeout,
            },
        )
        if response.status in (202, 200):
            return response.payload
        retry_after = None
        header = response.headers.get("retry-after")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        raise NodeUnavailable(
            f"{self.node_id} update: {response.status} {response.payload}",
            retry_after=retry_after,
        )

    def query_topk(self, tenant, *, max_lag=None):
        from repro.io.jsonio import result_from_dict

        response = self._tenant_client(tenant).request(
            "POST", "/v1/query", {"tenant": tenant, "allow_degraded": False}
        )
        if response.status != 200:
            raise NodeUnavailable(
                f"{self.node_id} query: {response.status}"
            )
        return result_from_dict(response.payload["result"])


class ReplicatedClient:
    """Routes one logical client's traffic across the topology."""

    def __init__(
        self,
        nodes: Sequence[NodeHandle],
        *,
        max_lag: int | None = None,
        hedge: bool = True,
        hedge_floor: float = 0.005,
        refresh_interval: float = 0.25,
        backoff: float = 0.02,
        backoff_cap: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if not nodes:
            raise ReplicationError("router needs at least one node")
        self._nodes = {node.node_id: node for node in nodes}
        self._max_lag = max_lag
        self._hedge = bool(hedge)
        self._hedge_floor = float(hedge_floor)
        self._refresh_interval = float(refresh_interval)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._latency = {node.node_id: EwmaLatency() for node in nodes}
        self._primary_id: str | None = None
        self._replica_ids: list[str] = []
        self._lags: dict[str, int] = {}
        self._refreshed_at: float | None = None
        self._read_rr = 0
        self._hedge_pool = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="router-hedge"
        )
        self.stats = {
            "writes": 0,
            "write_failovers": 0,
            "reads": 0,
            "hedged_reads": 0,
            "hedge_wins": 0,
            "primary_reads": 0,
            "topology_refreshes": 0,
        }

    def close(self) -> None:
        self._hedge_pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def refresh_topology(self, *, force: bool = False) -> None:
        """Re-probe every node; elect the highest-epoch primary."""
        with self._lock:
            now = self._clock()
            if (
                not force
                and self._refreshed_at is not None
                and now - self._refreshed_at < self._refresh_interval
                and self._primary_id is not None
            ):
                return
            self._refreshed_at = now
        self.stats["topology_refreshes"] += 1
        primaries: list[tuple[int, str]] = []
        replicas: list[str] = []
        lags: dict[str, int] = {}
        for node_id, node in self._nodes.items():
            try:
                status = node.health()
            except Exception:  # noqa: BLE001 - dead node: skip it
                continue
            role = status.get("role", "primary")
            lags[node_id] = int(status.get("lag", 0))
            if role == "primary":
                primaries.append((int(status.get("epoch", 0)), node_id))
            else:
                replicas.append(node_id)
        with self._lock:
            self._lags = lags
            # A deposed primary still answering health checks reports a
            # lower epoch than the promoted one and loses the election.
            self._primary_id = (
                max(primaries)[1] if primaries else None
            )
            self._replica_ids = [
                node for node in replicas if node != self._primary_id
            ]

    @property
    def primary_id(self) -> str | None:
        with self._lock:
            return self._primary_id

    @property
    def replica_ids(self) -> list[str]:
        with self._lock:
            return list(self._replica_ids)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: TenantId,
        event,
        *,
        ack: str = "window",
        deadline: float = 5.0,
    ) -> dict:
        """Write to the current primary, retrying across a failover.

        Raises :class:`ReplicationError` when the budget is exhausted
        without any primary accepting the event — the caller knows the
        event was **not** accepted anywhere.
        """
        give_up = self._clock() + float(deadline)
        attempt = 0
        last_error: Exception | None = None
        while True:
            self.refresh_topology(force=attempt > 0)
            primary_id = self.primary_id
            if primary_id is not None:
                node = self._nodes[primary_id]
                remaining = max(0.001, give_up - self._clock())
                try:
                    reply = node.submit(
                        tenant, event, ack=ack,
                        timeout=min(5.0, remaining),
                    )
                except (NodeUnavailable, ConnectionError, OSError) as error:
                    last_error = error
                    self.stats["write_failovers"] += 1
                else:
                    self.stats["writes"] += 1
                    reply.setdefault("node", primary_id)
                    return reply
            attempt += 1
            retry_after = getattr(last_error, "retry_after", None)
            delay = (
                retry_after
                if retry_after is not None
                else min(self._backoff_cap, self._backoff * (2 ** attempt))
                * (0.5 + self._rng.random() / 2.0)
            )
            if self._clock() + delay >= give_up:
                raise ReplicationError(
                    f"write for tenant {tenant!r} found no accepting "
                    f"primary within {deadline}s: {last_error}"
                )
            self._sleep(delay)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _eligible_replicas(self) -> list[str]:
        with self._lock:
            ordered = list(self._replica_ids)
            rotation = self._read_rr
            self._read_rr += 1
            lags = dict(self._lags)
        if self._max_lag is not None:
            ordered = [
                node for node in ordered
                if lags.get(node, 0) <= self._max_lag
            ]
        if not ordered:
            return []
        pivot = rotation % len(ordered)
        return ordered[pivot:] + ordered[:pivot]

    def _timed_read(self, node_id: str, tenant: TenantId):
        node = self._nodes[node_id]
        started = self._clock()
        result = node.query_topk(tenant, max_lag=self._max_lag)
        self._latency[node_id].observe(self._clock() - started)
        return node_id, result

    def query_topk(self, tenant: TenantId):
        """Read from a replica (stale-bounded), hedging slow responses."""
        self.refresh_topology()
        self.stats["reads"] += 1
        candidates = self._eligible_replicas()
        if not candidates:
            return self._read_primary(tenant)
        first = candidates[0]
        future = self._hedge_pool.submit(self._timed_read, first, tenant)
        hedge_after = self._latency[first].p99()
        if hedge_after is None:
            hedge_after = self._hedge_floor
        hedge_after = max(hedge_after, self._hedge_floor)
        backups = candidates[1:]
        if not self._hedge or not backups:
            try:
                _, result = future.result()
                return result
            except Exception:  # noqa: BLE001 - fall back to primary
                return self._read_primary(tenant)
        done, _ = wait([future], timeout=hedge_after)
        if done:
            try:
                _, result = future.result()
                return result
            except Exception:  # noqa: BLE001
                return self._read_primary(tenant)
        # First replica is past its p99 estimate: hedge.
        self.stats["hedged_reads"] += 1
        hedge_future = self._hedge_pool.submit(
            self._timed_read, backups[0], tenant
        )
        pending = {future, hedge_future}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for completed in done:
                try:
                    winner, result = completed.result()
                except Exception:  # noqa: BLE001 - try the other one
                    continue
                if completed is hedge_future:
                    self.stats["hedge_wins"] += 1
                return result
        return self._read_primary(tenant)

    def _read_primary(self, tenant: TenantId):
        primary_id = self.primary_id
        if primary_id is None:
            self.refresh_topology(force=True)
            primary_id = self.primary_id
        if primary_id is None:
            raise ReplicationError(
                "no replica within the staleness bound and no primary"
            )
        self.stats["primary_reads"] += 1
        _, result = self._timed_read(primary_id, tenant)
        return result
