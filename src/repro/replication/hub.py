"""Primary-side replication endpoint: chunk reads, acks, retain floor.

One :class:`ReplicationHub` sits next to a durable
:class:`~repro.serving.service.RiskService` and answers replica pulls:

* :meth:`fetch` — raw segment bytes from a ``(segment, offset)``
  cursor (via :meth:`~repro.persistence.wal.WriteAheadLog.read_from`),
  plus the primary's current durable seq and epoch so the replica can
  track lag and fencing.  Every fetch carries the replica's applied
  seq as an implicit ack.
* :meth:`bootstrap` — the latest snapshot's files (read under a
  rotation pin) plus the cursor of the oldest live segment, so a cold
  replica joining after truncation still reaches a complete state.
* :meth:`wait_replicated` — block until at least N replicas have acked
  a seq; the ``ack=replicated`` write path on the front end.

Acks also drive the WAL's *retain floor*: truncation never deletes a
segment holding batches past the minimum replica-acked seq, so a live
replica's cursor always stays resumable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.errors import ReplicationError
from repro.persistence.wal import WalChunk

__all__ = ["ReplicationHub", "FetchResult", "BootstrapResult"]


@dataclass(frozen=True)
class FetchResult:
    """One replication pull's response."""

    chunk: WalChunk
    #: Primary's last durable batch seq at fetch time (lag reference).
    primary_seq: int
    #: Primary's fencing epoch (0 when fencing is disabled).
    epoch: int


@dataclass(frozen=True)
class BootstrapResult:
    """Cold-start payload: snapshot files plus the resume cursor."""

    #: Relative path under the replica's mirror dir -> file bytes.
    files: dict = field(default_factory=dict)
    segment: int = 1
    offset: int = 0
    primary_seq: int = 0
    epoch: int = 0


class ReplicationHub:
    def __init__(self, service, *, max_fetch_bytes: int = 1 << 20) -> None:
        if service.wal is None:
            raise ReplicationError(
                "replication needs a durable primary (wal_dir=...)"
            )
        self._service = service
        self._max_fetch = int(max_fetch_bytes)
        self._acked: dict[str, int] = {}
        self._cond = threading.Condition()

    @property
    def service(self):
        return self._service

    # ------------------------------------------------------------------
    def fetch(
        self,
        replica_id: str,
        segment: int,
        offset: int,
        *,
        max_bytes: int | None = None,
        acked_seq: int | None = None,
    ) -> FetchResult:
        """Serve one pull; records *acked_seq* as the replica's ack."""
        if acked_seq is not None:
            self.note_ack(replica_id, acked_seq)
        limit = self._max_fetch if max_bytes is None else int(max_bytes)
        chunk = self._service.wal.read_from(
            int(segment), int(offset), min(limit, self._max_fetch)
        )
        return FetchResult(
            chunk=chunk,
            primary_seq=self._service.durable_seq,
            epoch=self._service.epoch,
        )

    def bootstrap(self, replica_id: str) -> BootstrapResult:
        """Snapshot files + oldest-live-segment cursor for a cold join."""
        wal = self._service.wal
        files: dict[str, bytes] = {}
        store = self._service.snapshot_store
        if store is not None:
            with store.pin_latest() as snapshot:
                if snapshot is not None:
                    for path in sorted(snapshot.path.iterdir()):
                        if path.is_file():
                            relative = (
                                f"snapshots/{snapshot.path.name}/{path.name}"
                            )
                            files[relative] = path.read_bytes()
        oldest = wal.read_from(0, 0, 0).oldest_segment
        return BootstrapResult(
            files=files,
            segment=oldest,
            offset=0,
            primary_seq=self._service.durable_seq,
            epoch=self._service.epoch,
        )

    # ------------------------------------------------------------------
    def note_ack(self, replica_id: str, seq: int) -> None:
        """Record a replica's applied seq; advances the retain floor."""
        with self._cond:
            previous = self._acked.get(replica_id, 0)
            self._acked[replica_id] = max(previous, int(seq))
            floor = min(self._acked.values())
            self._service.wal.set_retain_seq(floor)
            self._cond.notify_all()

    def acked(self) -> dict[str, int]:
        """Per-replica last acked seq (copy)."""
        with self._cond:
            return dict(self._acked)

    def replicated_count(self, seq: int) -> int:
        """How many replicas have acked at least *seq*."""
        with self._cond:
            return sum(1 for acked in self._acked.values() if acked >= seq)

    def wait_replicated(
        self, seq: int, *, replicas: int = 1, timeout: float = 5.0
    ) -> bool:
        """Block until *replicas* replicas acked *seq* (or timeout).

        Returns whether the replication ack level was reached — a
        ``False`` is an honest non-ack, not a loss: the batch is
        durable on the primary either way.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                reached = sum(
                    1 for acked in self._acked.values() if acked >= seq
                )
                if reached >= replicas:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
