"""WalShipper — pulls WAL bytes from a source and feeds one replica.

The shipper owns the replication control loop for a single replica:
fetch a chunk at the cursor, hand the bytes to
:meth:`~repro.replication.replica.ReplicaService.ingest`, advance.  Its
failure handling is the tentpole's contract:

* **corruption** (a chunk whose record fails CRC on the replica):
  drop the unverified buffer, rewind the fetch cursor to the replica's
  *durable* cursor — the last verified byte on the mirror — and
  re-request.  Catch-up completes bit-identically because nothing
  unverified was ever persisted.
* **disconnects** (transport errors from the source): bounded
  exponential backoff, then resume from the durable cursor.  Counted
  in ``stats["reconnects"]``.
* **cold replicas**: before the first fetch, a replica with no
  mirrored state bootstraps from the source's latest snapshot, then
  tails from the oldest live segment.

Two sources ship with the package: :class:`LocalSource` (in-process,
wrapping a :class:`~repro.replication.hub.ReplicationHub` directly —
unit tests, benchmarks) and :class:`HttpSource` (the frontend wire
protocol's ``/v1/replication/*`` routes — real multi-process
topologies).  Both speak :class:`~repro.replication.hub.FetchResult`.
"""

from __future__ import annotations

import base64
import threading
import time
from typing import Callable, Protocol

from repro.core.errors import FencedError, FrontendError, ReplicationError
from repro.persistence.wal import WalChunk
from repro.replication.hub import BootstrapResult, FetchResult, ReplicationHub
from repro.replication.replica import CorruptShippedError, ReplicaService

__all__ = [
    "ReplicationSource",
    "LocalSource",
    "HttpSource",
    "WalShipper",
]

#: Transport-level failures the shipper treats as "reconnect and retry".
TRANSPORT_ERRORS = (ConnectionError, OSError, FrontendError, TimeoutError)


class ReplicationSource(Protocol):
    """What a shipper needs from the primary's side of the wire."""

    def fetch(
        self,
        replica_id: str,
        segment: int,
        offset: int,
        *,
        max_bytes: int | None = None,
        acked_seq: int | None = None,
    ) -> FetchResult: ...

    def bootstrap(self, replica_id: str) -> BootstrapResult: ...


class LocalSource:
    """In-process source: calls the primary's hub directly."""

    def __init__(self, hub: ReplicationHub) -> None:
        self._hub = hub

    def fetch(self, replica_id, segment, offset, *, max_bytes=None,
              acked_seq=None) -> FetchResult:
        return self._hub.fetch(
            replica_id, segment, offset,
            max_bytes=max_bytes, acked_seq=acked_seq,
        )

    def bootstrap(self, replica_id) -> BootstrapResult:
        return self._hub.bootstrap(replica_id)


class HttpSource:
    """Source speaking the front end's ``/v1/replication/*`` routes.

    Uses a :class:`~repro.frontend.client.FrontendClient` with retries
    disabled — the shipper owns backoff policy, the client is just the
    wire.
    """

    def __init__(self, host: str, port: int, token: str, *,
                 timeout: float = 10.0) -> None:
        from repro.frontend.client import FrontendClient

        # One attempt per call: the shipper's run loop owns retries.
        self._client = FrontendClient(
            host, port, token, retries=1, timeout=timeout,
        )

    def _call(self, path: str, body: dict) -> dict:
        response = self._client.request("POST", path, body)
        if response.status in (401, 403):
            raise ReplicationError(
                f"replication call rejected ({response.status}): "
                "check the cluster token"
            )
        if response.status != 200:
            # Treated as a transient disconnect by the shipper loop.
            raise ConnectionError(
                f"{path} refused: {response.status} {response.payload}"
            )
        return response.payload

    def fetch(self, replica_id, segment, offset, *, max_bytes=None,
              acked_seq=None) -> FetchResult:
        payload = self._call(
            "/v1/replication/fetch",
            {
                "replica": str(replica_id),
                "segment": int(segment),
                "offset": int(offset),
                "max_bytes": max_bytes,
                "acked_seq": acked_seq,
            },
        )
        return FetchResult(
            chunk=WalChunk(
                segment=int(payload["segment"]),
                offset=int(payload["offset"]),
                data=base64.b64decode(payload["data"]),
                exhausted=bool(payload["exhausted"]),
                gone=bool(payload["gone"]),
                oldest_segment=int(payload["oldest_segment"]),
                resume_floor=(
                    None
                    if payload.get("resume_floor") is None
                    else int(payload["resume_floor"])
                ),
            ),
            primary_seq=int(payload["primary_seq"]),
            epoch=int(payload["epoch"]),
        )

    def bootstrap(self, replica_id) -> BootstrapResult:
        payload = self._call(
            "/v1/replication/bootstrap", {"replica": str(replica_id)}
        )
        return BootstrapResult(
            files={
                relative: base64.b64decode(blob)
                for relative, blob in payload["files"].items()
            },
            segment=int(payload["segment"]),
            offset=int(payload["offset"]),
            primary_seq=int(payload["primary_seq"]),
            epoch=int(payload["epoch"]),
        )


class WalShipper:
    """Streams one primary's WAL into one replica, resumably.

    Parameters
    ----------
    source:
        Where bytes come from (:class:`LocalSource` /
        :class:`HttpSource` / any :class:`ReplicationSource`).
    replica:
        The :class:`~repro.replication.replica.ReplicaService` fed by
        this shipper.
    poll_interval:
        Sleep when fully caught up (no bytes available).
    backoff / backoff_cap:
        Exponential reconnect backoff bounds for transport errors.
    """

    def __init__(
        self,
        source: ReplicationSource,
        replica: ReplicaService,
        *,
        max_bytes: int = 1 << 20,
        poll_interval: float = 0.01,
        backoff: float = 0.02,
        backoff_cap: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._source = source
        self._replica = replica
        self._max_bytes = int(max_bytes)
        self._poll = float(poll_interval)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._sleep = sleep
        self._cursor = replica.durable_cursor
        self._bootstrapped = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.stats = {
            "fetches": 0,
            "bytes_shipped": 0,
            "records_applied": 0,
            "reconnects": 0,
            "corruption_retries": 0,
        }

    @property
    def cursor(self) -> tuple[int, int]:
        return self._cursor

    @property
    def replica(self) -> ReplicaService:
        return self._replica

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """One fetch-verify-apply round; returns whether progress was made.

        Raises transport errors through (the :meth:`run` loop turns
        them into backoff+reconnect); handles corruption internally by
        rewinding to the replica's durable cursor.
        """
        self._ensure_bootstrapped()
        segment, offset = self._cursor
        result = self._source.fetch(
            self._replica.node_id, segment, offset,
            max_bytes=self._max_bytes, acked_seq=self._replica.applied_seq,
        )
        self.stats["fetches"] += 1
        self._replica.note_primary_seq(result.primary_seq)
        chunk = result.chunk
        if chunk.gone:
            if (
                chunk.resume_floor is not None
                and self._replica.applied_seq >= chunk.resume_floor
            ):
                # The cursor lingered in a truncated segment whose
                # every record this replica already applied (the usual
                # case: caught up at the sealed tail when the primary
                # snapshotted) — skip straight to the oldest live
                # segment, no data was missed.
                self._replica.begin_segment(chunk.oldest_segment)
                self._cursor = (chunk.oldest_segment, 0)
                return True
            raise ReplicationError(
                f"cursor ({segment}, {offset}) was truncated on the "
                f"primary (oldest live segment {chunk.oldest_segment}, "
                f"resume floor {chunk.resume_floor}, replica applied "
                f"{self._replica.applied_seq}): the replica has a real "
                "gap — re-bootstrap required"
            )
        progressed = False
        if chunk.data:
            try:
                self.stats["records_applied"] += self._replica.ingest(
                    chunk.data
                )
            except CorruptShippedError:
                # Bit damage in flight: nothing unverified was
                # persisted, so rewinding to the durable cursor and
                # re-requesting recovers exactly the missing records.
                self.stats["corruption_retries"] += 1
                self._replica.reset_buffer()
                self._cursor = self._replica.durable_cursor
                return True
            self.stats["bytes_shipped"] += len(chunk.data)
            offset += len(chunk.data)
            self._cursor = (segment, offset)
            progressed = True
        if chunk.exhausted:
            self._replica.begin_segment(segment + 1)
            self._cursor = (segment + 1, 0)
            progressed = True
        return progressed

    def _ensure_bootstrapped(self) -> None:
        if self._bootstrapped:
            return
        self._bootstrapped = True
        if not self._replica.is_cold:
            self._cursor = self._replica.durable_cursor
            return
        payload = self._source.bootstrap(self._replica.node_id)
        self._replica.note_primary_seq(payload.primary_seq)
        if payload.files or payload.segment != self._cursor[0]:
            self._replica.bootstrap(
                payload.files, payload.segment, payload.offset
            )
            self._cursor = self._replica.durable_cursor

    # ------------------------------------------------------------------
    def catch_up(self, *, timeout: float = 30.0) -> None:
        """Step synchronously until the replica has applied everything
        the primary reports durable (lag 0 and no bytes in flight)."""
        deadline = time.monotonic() + timeout
        while True:
            progressed = self.step()
            if not progressed and self._replica.lag == 0:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replica {self._replica.node_id} did not catch up "
                    f"within {timeout}s (lag {self._replica.lag})"
                )

    def run(self, stop: threading.Event | None = None) -> None:
        """Pump until *stop*: poll when idle, back off on disconnects."""
        stop = stop or self._stop
        failures = 0
        while not stop.is_set():
            if self._replica.is_promoted:
                return  # the replica became a primary: nothing to ship
            try:
                progressed = self.step()
            except FencedError:
                raise
            except ReplicationError:
                if self._replica.is_promoted:
                    return  # promotion raced a step already in flight
                raise
            except TRANSPORT_ERRORS:
                failures += 1
                if failures == 1:
                    self.stats["reconnects"] += 1
                delay = min(
                    self._backoff * (2 ** (failures - 1)),
                    self._backoff_cap,
                )
                self._replica.reset_buffer()
                self._cursor = self._replica.durable_cursor
                stop.wait(delay)
                continue
            failures = 0
            if not progressed:
                stop.wait(self._poll)

    def start(self) -> "WalShipper":
        """Run the pump on a daemon thread."""
        if self._thread is not None:
            raise ReplicationError("shipper already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self.run, daemon=True)
        self._thread.start()
        return self

    def stop(self, *, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
