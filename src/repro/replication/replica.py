"""ReplicaService — a warm standby fed by shipped WAL bytes.

A replica owns a *mirror directory* holding byte-for-byte copies of the
primary's segment files (same names, same bytes).  Chunks arrive from a
:class:`~repro.replication.shipper.WalShipper`; :meth:`ingest` buffers
them, verifies whole CRC-framed records, persists each verified record
to the mirror, and applies its batch to a local
:class:`~repro.serving.pool.ServingPool` — durable order equals applied
order, exactly the primary's WAL contract.  Because the mirror is
bit-identical and monitors are deterministic, a replica that has
applied through seq *s* holds the bit-identical state the primary held
at *s*; promotion (:meth:`promote`) therefore only replays the durable
suffix past the apply cursor before the new primary accepts writes.

Corruption and fencing are handled at the frame boundary:

* a chunk whose record fails its CRC (bit-flipped in flight) raises
  :class:`CorruptShippedError` *before* anything is persisted — the
  shipper re-requests from the last durable cursor;
* an incomplete frame tail is simply buffered until the next chunk
  completes it, so a mid-record fetch can never tear the mirror;
* a batch stamped with an epoch below the replica's fence
  (:meth:`fence_below`) raises :class:`~repro.core.errors.FencedError`
  and is not persisted — a deposed primary's late appends die here
  even if they slipped past the primary-side store check.

Crash recovery is inherited from the WAL itself: restarting a replica
opens the mirror with :class:`~repro.persistence.wal.WriteAheadLog`
(repairing any torn tail), replays it through a fresh pool, and resumes
shipping from the verified byte cursor.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Callable, Hashable

from repro.core.errors import FencedError, ReplicationError, ReproError
from repro.persistence.codec import (
    BATCH_KIND_EPOCH,
    BATCH_KIND_EVENTS,
    BATCH_KIND_REGISTER,
    SUPPORTED_WAL_VERSIONS,
    WAL_MAGIC,
    WAL_MAGIC_PREFIX,
    CorruptRecordError,
    decode_batch_payload,
    decode_event,
)
from repro.persistence.snapshots import SnapshotStore
from repro.persistence.wal import (
    _SEGMENT_PREFIX,
    _SEGMENT_SUFFIX,
    WriteAheadLog,
)
from repro.serving.pool import ServingPool
from repro.serving.service import PromotionState, RiskService

__all__ = ["ReplicaService", "CorruptShippedError"]

TenantId = Hashable

_FRAME_HEADER = struct.Struct("<II")
#: Upper bound on a single record's declared payload length; a shipped
#: header declaring more than this is corruption, not a huge batch
#: (the primary's segments cap out at 64 MiB total).
_MAX_RECORD_BYTES = 64 * 1024 * 1024


class CorruptShippedError(ReplicationError):
    """A shipped record failed CRC/framing checks before persistence."""


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


class _MirrorWriter:
    """Appends verified raw bytes to the mirror's segment files."""

    def __init__(
        self,
        directory: Path,
        segment: int,
        *,
        fsync: str = "flush",
        io_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
    ) -> None:
        self._directory = directory
        self._fsync = fsync
        self._io_wrapper = io_wrapper
        self._segment = int(segment)
        self._handle: BinaryIO | None = None
        self._open(self._segment)

    def _open(self, index: int) -> None:
        if self._handle is not None:
            self._handle.close()
        raw: BinaryIO = open(_segment_path(self._directory, index), "ab")
        if self._io_wrapper is not None:
            raw = self._io_wrapper(raw)
        self._handle = raw
        self._segment = index

    @property
    def segment(self) -> int:
        return self._segment

    def append(self, data: bytes) -> None:
        assert self._handle is not None
        self._handle.write(data)
        self._handle.flush()
        if self._fsync == "always":
            os.fsync(self._handle.fileno())

    def sync(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        if self._fsync != "never":
            os.fsync(self._handle.fileno())

    def begin_segment(self, index: int, *, truncate: bool = False) -> None:
        """Seal the current segment and open the next mirror file.

        ``truncate`` resets the target file first — the bootstrap path,
        where local recovery may have pre-created an empty segment whose
        header bytes will arrive again in the shipped stream.
        """
        self.sync()
        if truncate:
            with open(_segment_path(self._directory, index), "wb"):
                pass
        self._open(index)

    def repair_to(self, offset: int) -> None:
        """Cut the active mirror file back to *offset* and reopen it.

        A failed append (e.g. ENOSPC with a partial write) may leave
        torn bytes past the verified offset; appending after them would
        corrupt the mirror, so the tail is truncated away first.
        """
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close on faulted handle
                pass
            self._handle = None
        path = _segment_path(self._directory, self._segment)
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        self._open(self._segment)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.sync()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
            self._handle.close()
            self._handle = None


class ReplicaService:
    """A read-serving standby applying the primary's shipped WAL.

    Parameters
    ----------
    graph:
        The same base network snapshot the primary serves.
    mirror_dir:
        Where the mirrored segments (and bootstrap snapshots) live.
        Opening an existing mirror recovers it: torn tail repaired,
        snapshot restored, WAL suffix replayed.
    node_id, mode, shards, monitor_defaults, fsync:
        As for :class:`~repro.serving.service.RiskService`.
    io_wrapper:
        Fault-injection hook on the mirror's append handle (the
        replica-side ENOSPC chaos case).
    """

    def __init__(
        self,
        graph,
        mirror_dir: str | os.PathLike,
        *,
        node_id: str = "replica",
        mode: str | None = None,
        shards: int | None = None,
        monitor_defaults: dict | None = None,
        fsync: str = "flush",
        io_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
    ) -> None:
        self._graph = graph
        self._directory = Path(mirror_dir)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.node_id = str(node_id)
        self._monitor_defaults = dict(monitor_defaults or {})
        self._fsync = fsync
        self._io_wrapper = io_wrapper
        self._pool = ServingPool(
            graph, mode=mode, shards=shards,
            monitor_defaults=monitor_defaults,
        )
        self._registered: dict[TenantId, tuple[int, dict]] = {}
        self._watermarks: dict[TenantId, int] = {}
        #: Last WAL batch seq persisted AND applied by this replica.
        self._applied_seq = 0
        #: Epoch of the last epoch stamp seen in the stream.
        self._epoch = 0
        #: Minimum acceptable stream epoch (see :meth:`fence_below`).
        self._fence_epoch = 0
        #: Primary's durable seq as of the last fetch (lag reference).
        self._primary_seq = 0
        self._buffer = b""
        #: Bytes of the current segment already persisted (mirror offset).
        self._offset = 0
        self._promoted = False
        self._closed = False
        self.stats = {
            "records_applied": 0,
            "batches_applied": 0,
            "segments_opened": 0,
            "corrupt_chunks": 0,
        }
        self._recover_local()

    # ------------------------------------------------------------------
    # Local recovery (restart of a replica that already mirrored bytes)
    # ------------------------------------------------------------------
    def _recover_local(self) -> None:
        snapshots = SnapshotStore(self._directory)
        with snapshots.pin_latest() as snapshot:
            if snapshot is not None:
                for tenant_snapshot in snapshot.tenants.values():
                    tenant_id = tenant_snapshot.tenant_id
                    self._pool.restore_tenant(
                        tenant_id, tenant_snapshot.load_state_blob()
                    )
                    self._watermarks[tenant_id] = tenant_snapshot.watermark
                    self._applied_seq = max(
                        self._applied_seq, tenant_snapshot.watermark
                    )
        # Opening the WAL repairs any torn mirror tail (a crash mid-
        # append), so the byte cursor below is the verified end.
        wal = WriteAheadLog(self._directory, fsync="never")
        try:
            for batch in wal.read_batches():
                self._apply_recovered(batch)
            segment, offset = wal.tail_cursor()
        finally:
            wal.close()
        self._writer = _MirrorWriter(
            self._directory, segment,
            fsync=self._fsync, io_wrapper=self._io_wrapper,
        )
        self._offset = offset

    def _apply_recovered(self, batch) -> None:
        if batch.kind == "epoch":
            self._epoch = max(self._epoch, int(batch.epoch or 0))
            self._applied_seq = max(self._applied_seq, batch.seq)
            return
        if batch.kind == "register":
            register = batch.register or {}
            k = int(register.get("k", 1))
            kwargs = dict(register.get("kwargs", {}))
            self._registered[batch.tenant_id] = (k, kwargs)
            if not self._pool.has_tenant(batch.tenant_id):
                self._pool.register(batch.tenant_id, k, **kwargs)
            self._applied_seq = max(self._applied_seq, batch.seq)
            return
        if batch.seq <= self._watermarks.get(batch.tenant_id, 0):
            self._applied_seq = max(self._applied_seq, batch.seq)
            return
        if not self._pool.has_tenant(batch.tenant_id):
            raise ReplicationError(
                f"mirrored batch {batch.seq} addresses tenant "
                f"{batch.tenant_id!r} with neither a snapshot nor a "
                "registration record"
            )
        self._pool.apply(batch.tenant_id, list(batch.events)).result()
        self._applied_seq = max(self._applied_seq, batch.seq)
        self.stats["batches_applied"] += 1

    # ------------------------------------------------------------------
    # Shipping surface (driven by WalShipper)
    # ------------------------------------------------------------------
    @property
    def durable_cursor(self) -> tuple[int, int]:
        """``(segment, offset)`` of the last verified, persisted byte."""
        return self._writer.segment, self._offset

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def fence_epoch(self) -> int:
        return self._fence_epoch

    @property
    def lag(self) -> int:
        """Batches the primary has made durable that we have not applied."""
        return max(0, self._primary_seq - self._applied_seq)

    @property
    def is_cold(self) -> bool:
        """True when the mirror holds no durable batches at all."""
        return self._applied_seq == 0 and not self._watermarks

    @property
    def is_promoted(self) -> bool:
        """True once :meth:`promote` handed this node to a service."""
        return self._promoted

    def note_primary_seq(self, seq: int) -> None:
        self._primary_seq = max(self._primary_seq, int(seq))

    def fence_below(self, epoch: int) -> None:
        """Reject future stream batches stamped below *epoch*.

        Called by the failover coordinator on every non-promoted node
        the moment a new primary claims its epoch: anything the deposed
        primary manages to emit afterwards carries the old stamp and
        dies at ingest, before touching the mirror.
        """
        self._fence_epoch = max(self._fence_epoch, int(epoch))

    def reset_buffer(self) -> None:
        """Drop unverified buffered bytes (corruption retry path)."""
        self._buffer = b""

    def begin_segment(self, index: int) -> None:
        """Advance the mirror to segment *index* (shipper rotation)."""
        self._ensure_live()
        if self._buffer:
            raise ReplicationError(
                "segment advanced with an incomplete record buffered"
            )
        self._writer.begin_segment(int(index))
        self._offset = 0
        self.stats["segments_opened"] += 1

    def ingest(self, data: bytes) -> int:
        """Verify, persist, and apply shipped bytes; returns records applied.

        Bytes accumulate in an in-memory buffer; only complete records
        that pass CRC (and the segment header, at offset 0) move to the
        mirror file, so the durable mirror never contains unverified
        bytes.  Raises :class:`CorruptShippedError` on a framing/CRC
        failure with the mirror untouched by the bad record.
        """
        self._ensure_live()
        self._buffer += data
        applied = 0
        try:
            while True:
                if self._offset == 0 and not self._header_done():
                    break
                if len(self._buffer) < _FRAME_HEADER.size:
                    break
                length, crc = _FRAME_HEADER.unpack_from(self._buffer, 0)
                if length > _MAX_RECORD_BYTES:
                    raise CorruptShippedError(
                        f"shipped record declares {length} bytes"
                    )
                end = _FRAME_HEADER.size + length
                if len(self._buffer) < end:
                    break  # incomplete frame: wait for the next chunk
                payload = self._buffer[_FRAME_HEADER.size:end]
                if zlib.crc32(payload) != crc:
                    raise CorruptShippedError(
                        "shipped record failed its CRC check"
                    )
                self._apply_shipped(payload, self._buffer[:end])
                self._buffer = self._buffer[end:]
                applied += 1
        except CorruptShippedError:
            self.stats["corrupt_chunks"] += 1
            self.reset_buffer()
            raise
        return applied

    def _header_done(self) -> bool:
        """Consume the 9 magic bytes that open every segment file."""
        header = len(WAL_MAGIC)
        if len(self._buffer) < header:
            return False
        if (
            self._buffer[:8] != WAL_MAGIC_PREFIX
            or self._buffer[8] not in SUPPORTED_WAL_VERSIONS
        ):
            raise CorruptShippedError("shipped segment header is invalid")
        self._persist(self._buffer[:header])
        self._buffer = self._buffer[header:]
        return True

    def _apply_shipped(self, payload: bytes, record: bytes) -> None:
        try:
            kind, seq, tenant_id, parts = decode_batch_payload(payload)
        except CorruptRecordError as error:
            raise CorruptShippedError(str(error)) from None
        if kind == BATCH_KIND_EPOCH:
            stamp = json.loads(parts[0].decode("utf-8"))
            epoch = int(stamp["epoch"])
            if epoch < self._fence_epoch:
                raise FencedError(epoch, self._fence_epoch)
            self._persist(record)
            self._epoch = epoch
            self._applied_seq = max(self._applied_seq, seq)
            self.stats["records_applied"] += 1
            return
        if self._epoch < self._fence_epoch:
            # Batches between epoch stamps inherit the last stamp; a
            # deposed primary's stream is still at the old epoch.
            raise FencedError(self._epoch, self._fence_epoch)
        self._persist(record)
        if kind == BATCH_KIND_REGISTER:
            register = json.loads(parts[0].decode("utf-8"))
            k = int(register.get("k", 1))
            kwargs = dict(register.get("kwargs", {}))
            self._registered[tenant_id] = (k, kwargs)
            if not self._pool.has_tenant(tenant_id):
                self._pool.register(tenant_id, k, **kwargs)
        elif kind == BATCH_KIND_EVENTS:
            events = [decode_event(part) for part in parts]
            if seq > self._watermarks.get(tenant_id, 0):
                if not self._pool.has_tenant(tenant_id):
                    raise ReplicationError(
                        f"shipped batch {seq} addresses unknown tenant "
                        f"{tenant_id!r} (bootstrap incomplete?)"
                    )
                self._pool.apply(tenant_id, events).result()
                self.stats["batches_applied"] += 1
        self._applied_seq = max(self._applied_seq, seq)
        self.stats["records_applied"] += 1

    def _persist(self, data: bytes) -> None:
        try:
            self._writer.append(data)
        except OSError:
            # Disk fault mid-append: the file may hold a torn prefix of
            # this record.  Repair to the verified offset now so the
            # shipper's rewind-and-retry appends onto clean bytes.
            self._writer.repair_to(self._offset)
            raise
        self._offset += len(data)

    def sync(self) -> None:
        """fsync the mirror's active segment."""
        self._writer.sync()

    # ------------------------------------------------------------------
    # Cold bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self, files: dict, segment: int, offset: int = 0) -> None:
        """Install a snapshot payload and position the mirror cursor.

        Only valid on a cold replica (nothing mirrored yet); the files
        come from :meth:`~repro.replication.hub.ReplicationHub.bootstrap`
        and land relative to the mirror directory.
        """
        self._ensure_live()
        if not self.is_cold:
            raise ReplicationError(
                "bootstrap is only valid on a cold replica"
            )
        for relative, data in files.items():
            target = self._directory / relative
            if not target.resolve().is_relative_to(self._directory.resolve()):
                raise ReplicationError(
                    f"bootstrap path escapes the mirror dir: {relative!r}"
                )
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
        if files:
            snapshots = SnapshotStore(self._directory)
            with snapshots.pin_latest() as snapshot:
                if snapshot is not None:
                    for tenant_snapshot in snapshot.tenants.values():
                        tenant_id = tenant_snapshot.tenant_id
                        self._pool.restore_tenant(
                            tenant_id, tenant_snapshot.load_state_blob()
                        )
                        self._watermarks[tenant_id] = (
                            tenant_snapshot.watermark
                        )
                        self._applied_seq = max(
                            self._applied_seq, tenant_snapshot.watermark
                        )
        if int(offset) != 0:
            raise ReplicationError("bootstrap cursors start at offset 0")
        self._writer.begin_segment(int(segment), truncate=True)
        self._offset = 0

    # ------------------------------------------------------------------
    # Read serving
    # ------------------------------------------------------------------
    def tenants(self) -> list[TenantId]:
        return self._pool.tenants()

    def query_topk(self, tenant_id: TenantId, *, max_lag: int | None = None):
        """The tenant's answer from the replica's applied state.

        Flagged ``stale=True`` whenever the replica knows the primary
        is ahead (``lag > 0``).  With ``max_lag`` set, a replica lagging
        beyond the bound raises :class:`ReplicationError` instead of
        serving an answer older than the caller tolerates — the
        router's staleness bound.
        """
        self._ensure_live()
        if max_lag is not None and self.lag > max_lag:
            raise ReplicationError(
                f"replica {self.node_id} lags {self.lag} batches "
                f"(> bound {max_lag})"
            )
        if not self._pool.has_tenant(tenant_id):
            raise ReproError(f"unknown tenant {tenant_id!r}")
        result = self._pool.query(tenant_id).result()
        if self.lag > 0:
            result = dataclasses.replace(result, stale=True)
        return result

    def health(self) -> dict:
        """Liveness/lag probe payload (see ``HealthMonitor``)."""
        segment, offset = self.durable_cursor
        return {
            "node": self.node_id,
            "role": "replica" if not self._promoted else "primary",
            "epoch": self._epoch,
            "fence_epoch": self._fence_epoch,
            "applied_seq": self._applied_seq,
            "primary_seq": self._primary_seq,
            "lag": self.lag,
            "segment": segment,
            "offset": offset,
            "tenants": len(self._pool.tenants()),
        }

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def promote(
        self,
        *,
        epoch_store=None,
        node_id: str | None = None,
        fsync: str = "flush",
        **service_kwargs,
    ) -> RiskService:
        """Become the primary: adopt the warm pool into a RiskService.

        Closes the mirror writer, then constructs a durable
        :class:`~repro.serving.service.RiskService` over the mirror
        directory with this replica's pool adopted — construction
        replays only the durable batches past ``applied_seq`` and, with
        an ``epoch_store``, claims and stamps the next fencing epoch
        before the first write.  The replica object is spent afterwards
        (``ingest`` raises); reads continue through the returned
        service.
        """
        self._ensure_live()
        self._writer.close()
        self._promoted = True
        service = RiskService(
            self._graph,
            wal_dir=self._directory,
            fsync=fsync,
            monitor_defaults=self._monitor_defaults or None,
            adopt=PromotionState(
                pool=self._pool,
                registered=dict(self._registered),
                applied_upto=self._applied_seq,
            ),
            epoch_store=epoch_store,
            node_id=node_id or self.node_id,
            **service_kwargs,
        )
        return service

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop serving (idempotent).  A promoted replica's pool lives
        on inside the service that adopted it."""
        if self._closed:
            return
        self._closed = True
        if not self._promoted:
            self._writer.close()
            self._pool.shutdown()

    def _ensure_live(self) -> None:
        if self._closed:
            raise ReplicationError("replica is closed")
        if self._promoted:
            raise ReplicationError(
                "replica was promoted; use the adopting service"
            )

    def __enter__(self) -> "ReplicaService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
