"""Heartbeat probing with bounded backoff before declaring death.

A :class:`HealthMonitor` polls a set of named probes (callables that
return a health dict — a local service's ``health()`` method or an HTTP
``/v1/health`` round trip) and tracks, per node, how many *consecutive*
probes failed.  A node is declared dead only after
``failure_threshold`` consecutive failures, with bounded exponential
backoff between the failing probes — one dropped heartbeat under load
never triggers a failover, and a genuinely dead node is confirmed in
``failure_threshold`` probes whose total delay is bounded and
predictable.

The clock and sleep are injectable so the unit tests run the whole
state machine in virtual time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = ["HealthMonitor", "HealthReport"]


@dataclass
class HealthReport:
    """Latest knowledge about one probed node."""

    node_id: str
    alive: bool = True
    consecutive_failures: int = 0
    #: Last successful probe payload (e.g. role / epoch / lag).
    status: dict = field(default_factory=dict)
    last_success: float | None = None
    last_error: str | None = None


class HealthMonitor:
    """Polls probes, escalates repeated failures into death verdicts.

    Parameters
    ----------
    probes:
        ``node_id -> callable`` returning that node's health dict;
        raising (or timing out internally) counts as a failed probe.
    interval:
        Delay between healthy probe rounds.
    failure_threshold:
        Consecutive failures before a node is declared dead.
    backoff / backoff_cap:
        After a failed probe the next probe of that node waits
        ``backoff * 2**(failures-1)`` seconds, capped — a struggling
        node gets breathing room, and the worst-case time to a death
        verdict stays bounded.
    """

    def __init__(
        self,
        probes: Mapping[str, Callable[[], dict]],
        *,
        interval: float = 0.05,
        failure_threshold: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._probes = dict(probes)
        self._interval = float(interval)
        self._threshold = int(failure_threshold)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._reports = {
            node: HealthReport(node_id=node) for node in self._probes
        }
        #: Nodes whose death has already been reported to ``on_death``.
        self._announced: set[str] = set()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def probe_once(self, node_id: str) -> HealthReport:
        """Run one probe of *node_id* and fold it into the report."""
        probe = self._probes[node_id]
        try:
            status = probe()
        except Exception as error:  # noqa: BLE001 - any failure counts
            with self._lock:
                report = self._reports[node_id]
                report.consecutive_failures += 1
                report.last_error = f"{type(error).__name__}: {error}"
                if report.consecutive_failures >= self._threshold:
                    report.alive = False
                return report
        with self._lock:
            report = self._reports[node_id]
            report.alive = True
            report.consecutive_failures = 0
            report.status = dict(status) if status else {}
            report.last_success = self._clock()
            report.last_error = None
            self._announced.discard(node_id)
            return report

    def poll_round(self) -> dict[str, HealthReport]:
        """Probe every node once; returns the updated reports."""
        for node in list(self._probes):
            self.probe_once(node)
        return self.reports()

    def reports(self) -> dict[str, HealthReport]:
        with self._lock:
            return {
                node: HealthReport(
                    node_id=report.node_id,
                    alive=report.alive,
                    consecutive_failures=report.consecutive_failures,
                    status=dict(report.status),
                    last_success=report.last_success,
                    last_error=report.last_error,
                )
                for node, report in self._reports.items()
            }

    def is_alive(self, node_id: str) -> bool:
        with self._lock:
            return self._reports[node_id].alive

    def dead_nodes(self) -> list[str]:
        with self._lock:
            return [
                node
                for node, report in self._reports.items()
                if not report.alive
            ]

    def failure_delay(self, failures: int) -> float:
        """Backoff before the next probe after *failures* consecutive
        failures (0.0 when the node is healthy)."""
        if failures <= 0:
            return 0.0
        return min(self._backoff * (2 ** (failures - 1)), self._backoff_cap)

    # ------------------------------------------------------------------
    def wait_for_death(
        self, node_id: str, *, timeout: float = 30.0
    ) -> HealthReport:
        """Probe *node_id* (with backoff) until it is declared dead.

        Used by failover drivers that already know which node they are
        watching; raises ``TimeoutError`` if the node stays healthy.
        """
        deadline = self._clock() + timeout
        while True:
            report = self.probe_once(node_id)
            if not report.alive:
                return report
            if self._clock() > deadline:
                raise TimeoutError(
                    f"node {node_id} still healthy after {timeout}s"
                )
            self._sleep(
                self.failure_delay(report.consecutive_failures)
                or self._interval
            )

    def run(
        self,
        *,
        on_death: Callable[[HealthReport], None] | None = None,
        stop: threading.Event | None = None,
    ) -> None:
        """Poll all nodes until *stop*; invoke *on_death* once per death.

        A node that recovers (probe succeeds again) is eligible for a
        fresh death announcement later.
        """
        stop = stop or self._stop
        while not stop.is_set():
            max_failures = 0
            for node in list(self._probes):
                report = self.probe_once(node)
                max_failures = max(
                    max_failures, report.consecutive_failures
                )
                if not report.alive and on_death is not None:
                    with self._lock:
                        fresh = node not in self._announced
                        self._announced.add(node)
                    if fresh:
                        on_death(report)
            stop.wait(self.failure_delay(max_failures) or self._interval)

    def start(
        self, *, on_death: Callable[[HealthReport], None] | None = None
    ) -> "HealthMonitor":
        if self._thread is not None:
            raise RuntimeError("health monitor already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run,
            kwargs={"on_death": on_death, "stop": self._stop},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, *, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
