"""Promotion choreography: pick the most-caught-up replica, fence, adopt.

:class:`FailoverCoordinator` turns a death verdict into a new primary:

1. **Choose** — among the surviving replicas, take the one with the
   highest ``(applied_seq, durable_cursor)``; ties break toward the
   smallest node id so two coordinators racing on the same inputs pick
   the same winner.
2. **Fence** — promotion claims the next epoch from the shared
   :class:`~repro.replication.epoch.EpochStore` *before* the new
   primary accepts writes; the deposed primary's next append window
   sees the newer epoch and raises
   :class:`~repro.core.errors.FencedError`.  Surviving replicas get
   :meth:`~repro.replication.replica.ReplicaService.fence_below` so
   late stream batches from the old lineage are rejected too.
3. **Adopt** — :meth:`ReplicaService.promote` re-opens the mirrored WAL
   as a real :class:`~repro.serving.service.RiskService`, replaying
   only the durable suffix past the replica's applied watermark: the
   warm serving pool is kept, so failover time is dominated by the
   un-acked suffix, not a cold rebuild.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import ReplicationError
from repro.replication.epoch import EpochStore
from repro.replication.replica import ReplicaService

__all__ = ["FailoverCoordinator", "FailoverEvent"]


@dataclass(frozen=True)
class FailoverEvent:
    """One promotion, for the coordinator's audit trail."""

    winner: str
    epoch: int
    applied_seq: int
    fenced: tuple = ()
    candidates: dict = field(default_factory=dict)


class FailoverCoordinator:
    def __init__(self, epoch_store: EpochStore) -> None:
        self._store = epoch_store
        self.events: list[FailoverEvent] = []

    @property
    def epoch_store(self) -> EpochStore:
        return self._store

    # ------------------------------------------------------------------
    @staticmethod
    def choose(replicas: Mapping[str, ReplicaService]) -> str:
        """Most-caught-up replica id; deterministic under ties."""
        if not replicas:
            raise ReplicationError("no replicas available for promotion")
        best = max(
            (replicas[node].applied_seq, replicas[node].durable_cursor)
            for node in replicas
        )
        return min(
            node
            for node in replicas
            if (replicas[node].applied_seq, replicas[node].durable_cursor)
            == best
        )

    def promote(
        self,
        replicas: Mapping[str, ReplicaService],
        *,
        fsync: str = "always",
        **service_kwargs,
    ):
        """Promote the best replica; returns ``(winner_id, service)``.

        The returned service has already claimed the new epoch,
        stamped it into the WAL, and replayed its un-acked durable
        suffix — it accepts writes the moment this returns.  All other
        replicas in *replicas* are fenced below the new epoch.
        """
        winner = self.choose(replicas)
        candidates = {
            node: {
                "applied_seq": replica.applied_seq,
                "durable_cursor": list(replica.durable_cursor),
            }
            for node, replica in replicas.items()
        }
        started = time.monotonic()
        service = replicas[winner].promote(
            epoch_store=self._store,
            node_id=winner,
            fsync=fsync,
            **service_kwargs,
        )
        for node, replica in replicas.items():
            if node != winner:
                replica.fence_below(service.epoch)
        self.events.append(
            FailoverEvent(
                winner=winner,
                epoch=service.epoch,
                applied_seq=service.durable_seq,
                fenced=tuple(
                    node for node in replicas if node != winner
                ),
                candidates=candidates,
            )
        )
        self.last_promotion_seconds = time.monotonic() - started
        return winner, service
