"""Replicated serving: WAL shipping, health-checked failover, fencing.

The package turns one durable :class:`~repro.serving.service.RiskService`
into a replicated topology with provable zero accepted-event loss:

* :mod:`~repro.replication.epoch` — file-backed fencing epochs; one
  writer generation at a time.
* :mod:`~repro.replication.hub` — primary-side fetch/bootstrap/ack
  endpoint; acks drive the WAL retain floor.
* :mod:`~repro.replication.shipper` — the pull loop: CRC-framed chunks,
  resumable cursors, corruption rewind, reconnect backoff.
* :mod:`~repro.replication.replica` — byte-identical WAL mirror plus a
  warm serving pool; promotes in place.
* :mod:`~repro.replication.health` — heartbeat probing with bounded
  backoff before a death verdict.
* :mod:`~repro.replication.failover` — choose the most-caught-up
  replica, fence the old lineage, adopt.
* :mod:`~repro.replication.router` — client-side failover writes and
  hedged, stale-bounded reads.
"""

from repro.replication.epoch import EpochRecord, EpochStore
from repro.replication.failover import FailoverCoordinator, FailoverEvent
from repro.replication.health import HealthMonitor, HealthReport
from repro.replication.hub import BootstrapResult, FetchResult, ReplicationHub
from repro.replication.replica import CorruptShippedError, ReplicaService
from repro.replication.router import (
    EwmaLatency,
    HttpNodeHandle,
    LocalPrimaryHandle,
    LocalReplicaHandle,
    ReplicatedClient,
)
from repro.replication.shipper import (
    HttpSource,
    LocalSource,
    WalShipper,
)

__all__ = [
    "EpochRecord",
    "EpochStore",
    "FailoverCoordinator",
    "FailoverEvent",
    "HealthMonitor",
    "HealthReport",
    "BootstrapResult",
    "FetchResult",
    "ReplicationHub",
    "CorruptShippedError",
    "ReplicaService",
    "EwmaLatency",
    "HttpNodeHandle",
    "LocalPrimaryHandle",
    "LocalReplicaHandle",
    "ReplicatedClient",
    "HttpSource",
    "LocalSource",
    "WalShipper",
]
