"""File-backed fencing epochs — who may write the cluster's WAL lineage.

One :class:`EpochStore` file (JSON, atomically renamed) is the cluster's
single source of truth for "which writer generation is current".  A
starting or promoted primary :meth:`claims <EpochStore.claim>` the next
epoch under an advisory file lock, stamps it into its WAL
(:meth:`~repro.persistence.wal.WriteAheadLog.append_epoch`), and checks
the store before every append window; a deposed primary's next flush
sees the newer epoch and raises
:class:`~repro.core.errors.FencedError` — its buffered events are never
made durable by the dead lineage.  Replicas additionally reject shipped
batches stamped below their fence epoch, which closes the small
check-then-append race a file-based fence alone cannot.

The store is deliberately a plain file, not a consensus service: the
chaos matrix runs primary and replicas on one host (or one shared
filesystem), which is exactly the regime where an atomic rename plus
``flock`` gives linearisable claims.  Swapping in an external
coordinator later only has to reimplement two methods.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.core.errors import ReplicationError

__all__ = ["EpochStore", "EpochRecord"]


@dataclass(frozen=True)
class EpochRecord:
    """The current fencing epoch and the node that claimed it."""

    epoch: int
    owner: str | None


class EpochStore:
    """Atomic, monotonic epoch register backed by one JSON file.

    Parameters
    ----------
    path:
        The register file (parent directories are created).  Every
        node of one logical cluster must point at the same path.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        # Same-process claims (tests promote in-process) also serialise
        # through a thread lock; flock alone is per-file-descriptor.
        self._thread_lock = threading.Lock()

    # ------------------------------------------------------------------
    def current(self) -> EpochRecord:
        """The latest claimed epoch (``epoch=0`` when never claimed)."""
        try:
            raw = self.path.read_text("utf-8")
        except FileNotFoundError:
            return EpochRecord(epoch=0, owner=None)
        try:
            data = json.loads(raw)
            return EpochRecord(
                epoch=int(data["epoch"]), owner=data.get("owner")
            )
        except (KeyError, ValueError) as error:
            raise ReplicationError(
                f"unreadable epoch register {self.path}: {error}"
            ) from None

    def claim(self, node_id: str) -> int:
        """Atomically claim the next epoch for *node_id*; returns it.

        Read-increment-publish runs under an advisory lock, and the
        publish is an atomic rename, so two concurrent claimants can
        never obtain the same epoch and a crash mid-claim can never
        leave a torn register.
        """
        with self._thread_lock, self._file_lock():
            epoch = self.current().epoch + 1
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(
                json.dumps({"epoch": epoch, "owner": str(node_id)}),
                encoding="utf-8",
            )
            fd = os.open(tmp, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            os.rename(tmp, self.path)
            return epoch

    def _file_lock(self):
        return _FlockGuard(self._lock_path)


class _FlockGuard:
    """Context manager holding an exclusive ``flock`` on a lock file."""

    def __init__(self, path: Path) -> None:
        self._path = path
        self._handle = None

    def __enter__(self) -> "_FlockGuard":
        self._handle = open(self._path, "a+")
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._handle is not None
        try:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        finally:
            self._handle.close()
            self._handle = None
