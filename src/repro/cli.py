"""Command-line interface for one-off detections and streaming replays.

Usage::

    repro-detect --graph loans.json --method BSRBK --k 10
    repro-detect --dataset guarantee --scale 0.05 --k-percent 5 --method BSR
    python -m repro.cli --graph loans.txt --format edgelist --k 3 --json

    repro-detect stream --dataset guarantee --k 10 --events 25 --verify
    repro-detect stream --panel --k-percent 2 --json

The default (no subcommand) form reads a graph (JSON or text edge list,
or a named synthetic dataset), runs one detection method, and prints the
ranked answer — as a table or as JSON for scripting.

The ``stream`` subcommand drives a :class:`~repro.streaming.monitor.
TopKMonitor` over an update stream — random single-entity monitoring
patches (``--events``) or the temporal guarantee panel's year-over-year
drift (``--panel``) — reporting per-step refresh telemetry and, with
``--verify``, checking each incremental answer bit-for-bit against a
fresh BSR detection.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.datasets.registry import available_datasets, load_dataset
from repro.io.edgelist import read_edgelist
from repro.io.jsonio import load_graph_json, result_to_dict
from repro.utils.tables import render_table

__all__ = ["build_parser", "build_stream_parser", "main", "stream_main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Detect the top-k vulnerable nodes of an uncertain graph.",
        epilog=(
            "For incremental monitoring over an update stream, use the "
            "'stream' subcommand: repro-detect stream --help"
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset instead of reading a file",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    parser.add_argument("--method", choices=ALL_METHODS, default="BSRBK")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--bk", type=int, default=16,
                        help="bottom-k threshold (BSRBK only)")
    parser.add_argument("--samples", type=int, default=20_000,
                        help="fixed sample budget (method N only)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the result as JSON instead of a table")
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``stream`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect stream",
        description=(
            "Replay an update stream through the incremental TopKMonitor."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset",
    )
    source.add_argument(
        "--panel",
        action="store_true",
        help=(
            "replay the temporal guarantee panel's year-over-year drift "
            "instead of random patches"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--events", type=int, default=20,
                        help="random single-entity patches to replay")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of patch drift (0 draws values fresh)")
    parser.add_argument(
        "--engine",
        choices=("indexed", "batched", "reference"),
        default="indexed",
        help="reverse-sampling engine backing the monitor",
    )
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after each step, run a fresh BSR detection and check the "
            "incremental answer is bit-identical (also reports speedup)"
        ),
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit per-step records as JSON")
    return parser


def _load_graph(args: argparse.Namespace) -> UncertainGraph:
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed).graph
    if args.format == "json":
        return load_graph_json(args.graph)
    return read_edgelist(args.graph)


def _stream_batches(args: argparse.Namespace):
    """Yield ``(description, events)`` batches plus the graph to monitor."""
    from repro.datasets.temporal import build_guarantee_panel
    from repro.streaming.replay import random_patch_stream

    if args.panel:
        panel = build_guarantee_panel(seed=args.seed)
        batches = [
            (f"year {year}", events) for year, events in panel.update_stream()
        ]
        return panel.graph, batches
    graph = _load_graph(args)
    drift = args.drift if args.drift > 0 else None
    events = random_patch_stream(
        graph, args.events, seed=args.seed, drift=drift
    )
    # Keep the patch stream lazy: drift events must read the *current*
    # (already-patched) value at yield time so month-over-month drift
    # compounds, exactly as the benchmark replays it.
    return graph, ((None, [event]) for event in events)


def stream_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``stream`` subcommand."""
    from repro.algorithms.bsr import BoundedSampleReverseDetector
    from repro.streaming.monitor import TopKMonitor

    args = build_stream_parser().parse_args(argv)
    try:
        graph, batches = _stream_batches(args)
        if args.k is not None:
            k = args.k
        else:
            if args.k_percent <= 0:
                raise ReproError("--k-percent must be positive")
            k = max(1, round(graph.num_nodes * args.k_percent / 100.0))
        monitor = TopKMonitor(
            graph,
            k,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.seed,
            engine=args.engine,
        )
        rows: list[dict] = []
        incremental_total = fresh_total = 0.0
        for step, (description, events) in enumerate(batches):
            monitor.apply(events)
            # refresh() returns *this* step's report even when the batch
            # turns out to be a no-op (a "clean" report) — top_k() alone
            # would skip the refresh and leave last_report stale.
            report = monitor.refresh()
            result = monitor.top_k()
            incremental_total += report.elapsed_seconds
            row = {
                "step": step,
                "event": description
                or "; ".join(event.describe() for event in events),
                "mode": report.mode,
                "sampling": report.sampling,
                "worlds": f"{report.worlds_repaired}/{report.samples}",
                "ms": round(report.elapsed_seconds * 1e3, 2),
            }
            if args.verify:
                detector = BoundedSampleReverseDetector(
                    epsilon=args.epsilon,
                    delta=args.delta,
                    seed=args.seed,
                    engine=args.engine,
                )
                started = time.perf_counter()
                fresh = detector.detect(graph, k)
                fresh_seconds = time.perf_counter() - started
                fresh_total += fresh_seconds
                row["fresh_ms"] = round(fresh_seconds * 1e3, 2)
                row["match"] = (
                    result.nodes == fresh.nodes
                    and result.scores == fresh.scores
                    and result.samples_used == fresh.samples_used
                )
            rows.append(row)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps({"k": k, "steps": rows}, indent=1))
    else:
        title = (
            f"streaming top-{k} over {graph.num_nodes} nodes "
            f"({len(rows)} update batches, engine={args.engine})"
        )
        print(render_table(rows, title=title))
        if args.verify and rows:
            mismatches = sum(1 for row in rows if not row["match"])
            speedup = fresh_total / max(incremental_total, 1e-12)
            print(
                f"verify: {len(rows) - mismatches}/{len(rows)} steps "
                f"bit-identical to fresh BSR; incremental "
                f"{incremental_total:.3f}s vs fresh {fresh_total:.3f}s "
                f"({speedup:.1f}x)"
            )
    if args.verify and any(not row["match"] for row in rows):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        return stream_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        graph = _load_graph(args)
        if args.k is not None:
            k = args.k
        else:
            if args.k_percent <= 0:
                raise ReproError("--k-percent must be positive")
            k = max(1, round(graph.num_nodes * args.k_percent / 100.0))
        detector = make_detector(
            args.method,
            samples=args.samples,
            epsilon=args.epsilon,
            delta=args.delta,
            bk=args.bk,
            seed=args.seed,
        )
        result = detector.detect(graph, k)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(result_to_dict(result), indent=1))
    else:
        rows = [
            {
                "rank": rank,
                "node": str(label),
                "score": round(result.scores[label], 6),
            }
            for rank, label in enumerate(result.nodes, start=1)
        ]
        print(render_table(
            rows,
            title=(
                f"{result.method}: top-{result.k} of {graph.num_nodes} nodes "
                f"({result.samples_used} worlds, "
                f"{result.k_verified} bound-verified, "
                f"{result.elapsed_seconds:.3f}s)"
            ),
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
