"""Command-line interface for one-off detections and streaming replays.

Usage::

    repro-detect --graph loans.json --method BSRBK --k 10
    repro-detect --dataset guarantee --scale 0.05 --k-percent 5 --method BSR
    python -m repro.cli --graph loans.txt --format edgelist --k 3 --json

    repro-detect stream --dataset guarantee --k 10 --events 25 --verify
    repro-detect stream --panel --k-percent 2 --json

    repro-detect query --list-families
    repro-detect query --dataset guarantee --family kcore --params '{"k": 3}'
    repro-detect query --graph loans.json --family reliability \
        --params '{"pairs": [[0, 7]]}' --worlds 8192 --json
    repro-detect query --dataset guarantee --scale 0.01 --family skyline --exact

    repro-detect serve --dataset guarantee --tenants 8 --k 10 --events 20
    repro-detect serve --dataset wiki --tenants 32 --k-percent 1 --verify
    repro-detect serve --dataset guarantee --k 10 --wal-dir state/ \
        --fsync always --snapshot-interval 30
    repro-detect serve --dataset guarantee --k 10 --port 8080 \
        --slo-ms 200 --rate-limit 25 --auth desk-a=s3cret

    repro-detect crawl --dataset wiki --strategy avrachenkov \
        --budget 60 --seeds 4 --k 5 --verify

    repro-detect replicate --dataset guarantee --tenants 4 --k 10 \
        --rounds 6 --replicas 2 --verify

The default (no subcommand) form reads a graph (JSON or text edge list,
or a named synthetic dataset), runs one detection method, and prints the
ranked answer — as a table or as JSON for scripting.

The ``query`` subcommand runs any registered query family
(:mod:`repro.queries`) — top-k, k-core membership probability,
pairwise/cluster reliability, risk-profile skylines — over **one shared
set** of sampled possible worlds (``--worlds``), or exhaustively with
``--exact`` on small graphs.  ``--list-families`` enumerates what is
registered.

The ``stream`` subcommand drives a :class:`~repro.streaming.monitor.
TopKMonitor` over an update stream — random single-entity monitoring
patches (``--events``) or the temporal guarantee panel's year-over-year
drift (``--panel``) — reporting per-step refresh telemetry and, with
``--verify``, checking each incremental answer bit-for-bit against a
fresh BSR detection.

The ``serve`` subcommand stands up the multi-tenant
:class:`~repro.serving.service.RiskService`: many per-portfolio monitors
over copy-on-write views of one shared graph, fed through the async
ingestion queue.  It replays a per-tenant event stream, then reports
each tenant's top-k, the sustained update throughput, and what the
windowed coalescing and buffer sharing saved; ``--verify`` checks every
tenant's final answer bit-for-bit against fresh detection.  With
``--port`` it instead binds the SLO-enforced HTTP front end
(:mod:`repro.frontend`): per-tenant bearer auth (``--auth``),
token-bucket rate limits, latency budgets with degraded bounds-only
answers, and 429 + ``Retry-After`` load shedding.

The ``crawl`` subcommand treats the loaded graph as *hidden* ground
truth and discovers it by budgeted crawling (:mod:`repro.crawling`):
a strategy (``--strategy``) spends ``--budget`` crawl steps from
``--seeds`` seed nodes while a stable-counter-layout
:class:`~repro.streaming.monitor.TopKMonitor` ingests each step's
topology events incrementally — crawl-while-monitoring.  ``--verify``
checks every post-step answer bit-for-bit against fresh detection on an
independently replayed observed subgraph; the summary reports the final
answer's recall of the hidden graph's true top-k.

The ``replicate`` subcommand runs a self-contained failover drill
(:mod:`repro.replication`): a durable primary serves tenant streams
while WAL shippers mirror every accepted batch to ``--replicas``
replicas; the primary is then crashed, the most-caught-up replica is
promoted behind an epoch fence, and the deposed primary's late write
is proven rejected.  The report covers per-batch replication lag,
promotion time, and — with ``--verify`` — bit-identity of every
replica's and the promoted service's answers against the pre-crash
primary.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.datasets.registry import available_datasets, load_dataset
from repro.io.edgelist import read_edgelist
from repro.io.jsonio import load_graph_json, result_to_dict
from repro.utils.tables import render_table

__all__ = [
    "build_parser",
    "build_stream_parser",
    "build_serve_parser",
    "build_query_parser",
    "build_crawl_parser",
    "build_replicate_parser",
    "main",
    "stream_main",
    "serve_main",
    "query_main",
    "crawl_main",
    "replicate_main",
]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Detect the top-k vulnerable nodes of an uncertain graph.",
        epilog=(
            "For incremental monitoring over an update stream, use the "
            "'stream' subcommand: repro-detect stream --help"
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset instead of reading a file",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    parser.add_argument("--method", choices=ALL_METHODS, default="BSRBK")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--bk", type=int, default=16,
                        help="bottom-k threshold (BSRBK only)")
    parser.add_argument("--samples", type=int, default=20_000,
                        help="fixed sample budget (method N only)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the result as JSON instead of a table")
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``stream`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect stream",
        description=(
            "Replay an update stream through the incremental TopKMonitor."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset",
    )
    source.add_argument(
        "--panel",
        action="store_true",
        help=(
            "replay the temporal guarantee panel's year-over-year drift "
            "instead of random patches"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--events", type=int, default=20,
                        help="random single-entity patches to replay")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of patch drift (0 draws values fresh)")
    parser.add_argument(
        "--grow",
        type=int,
        default=0,
        help=(
            "interleave this many topology-growth batches (one new node "
            "plus attaching edges each) into the stream"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("indexed", "batched", "reference"),
        default="indexed",
        help="reverse-sampling engine backing the monitor",
    )
    parser.add_argument(
        "--counter-layout",
        choices=("packed", "stable"),
        default="packed",
        help=(
            "counter-PRF layout; 'stable' (indexed engine only) ingests "
            "--grow topology batches incrementally instead of falling "
            "back to full recomputation"
        ),
    )
    parser.add_argument(
        "--algorithm",
        choices=("bsr", "bsrbk"),
        default="bsr",
        help="maintained detection algorithm (bsrbk needs --engine indexed)",
    )
    parser.add_argument("--bk", type=int, default=16,
                        help="bottom-k counter threshold (bsrbk only)")
    parser.add_argument(
        "--world-state",
        choices=("packed", "dense"),
        default="packed",
        help="touched-entity representation backing per-world repair",
    )
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after each step, run a fresh detection and check the "
            "incremental answer is bit-identical (also reports speedup)"
        ),
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit per-step records as JSON")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``serve`` subcommand."""
    from repro.serving.pool import available_modes, default_mode

    parser = argparse.ArgumentParser(
        prog="repro-detect serve",
        description=(
            "Serve many tenant monitors over one shared graph through "
            "the async ingestion queue."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--tenants", type=int, default=8,
                        help="portfolio monitors to multiplex (default: 8)")
    parser.add_argument("--events", type=int, default=20,
                        help="update events replayed per tenant")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of patch drift (0 draws values fresh)")
    parser.add_argument(
        "--mode",
        choices=available_modes(),
        default=default_mode(),
        help="worker pool execution mode",
    )
    parser.add_argument("--shards", type=int, default=None,
                        help="execution lanes (default: CPU count, max 8)")
    parser.add_argument("--flush-interval", type=float, default=0.02,
                        help="ingestion flush window in seconds")
    parser.add_argument(
        "--wal-dir",
        default=None,
        help=(
            "durability directory (write-ahead log + rotated snapshots); "
            "a directory holding earlier state is recovered on startup"
        ),
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "flush", "never"),
        default="flush",
        help="WAL fsync policy (with --wal-dir; default: flush)",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=float,
        default=None,
        help="seconds between rotated disk snapshots (with --wal-dir)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="per-tenant ingestion backlog bound (default: 4096)",
    )
    parser.add_argument(
        "--overflow",
        choices=("wake", "error", "shed"),
        default="wake",
        help=(
            "full-backlog policy: wake the pump (unbounded, default), "
            "raise BackpressureError, or shed with a counter"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("indexed", "batched", "reference"),
        default="indexed",
        help="reverse-sampling engine backing the tenant monitors",
    )
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after serving, run a fresh BSR detection per tenant and "
            "check each served answer is bit-identical"
        ),
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit per-tenant records as JSON")
    network = parser.add_argument_group(
        "network front end",
        "with --port, serve over HTTP (SLO-enforced) instead of "
        "running the replay demo",
    )
    network.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind this TCP port (0 picks a free one) and serve HTTP",
    )
    network.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    network.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="default per-query latency budget in ms (default: 250)",
    )
    network.add_argument(
        "--rate-limit",
        type=float,
        default=50.0,
        help="per-tenant sustained requests/second (default: 50)",
    )
    network.add_argument(
        "--burst",
        type=float,
        default=None,
        help="token-bucket burst capacity (default: rate-limit / 2)",
    )
    network.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="global cap on concurrent full queries (default: 8)",
    )
    network.add_argument(
        "--queue-limit",
        type=int,
        default=4096,
        help="reject ingestion past this buffered-event backlog",
    )
    network.add_argument(
        "--auth",
        action="append",
        default=None,
        metavar="TENANT=TOKEN",
        help=(
            "tenant bearer token (repeatable); default: "
            "token-<tenant> for each replay tenant"
        ),
    )
    return parser


def build_query_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``query`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect query",
        description=(
            "Run a registered query family over one shared set of "
            "sampled (or, with --exact, exhaustively enumerated) "
            "possible worlds."
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    parser.add_argument(
        "--family",
        default="topk",
        help="registered query family to run (default: topk; "
             "see --list-families)",
    )
    parser.add_argument(
        "--params",
        default=None,
        metavar="JSON",
        help="family parameters as a JSON object, e.g. '{\"k\": 5}'",
    )
    parser.add_argument(
        "--worlds",
        type=int,
        default=4096,
        help="sampled worlds shared by every family (default: 4096)",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="enumerate every possible world instead of sampling "
             "(small graphs only)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--list-families",
        action="store_true",
        help="print the registered family names and exit",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the result as JSON instead of a table")
    return parser


def query_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``query`` subcommand."""
    import numpy as np

    from repro.queries import (
        QueryEngine,
        available_families,
        get_query_family,
    )
    from repro.sampling.worldstate import WorldView

    args = build_query_parser().parse_args(argv)
    if args.list_families:
        for name in available_families():
            print(name)
        return 0
    try:
        if args.graph is None and args.dataset is None:
            raise ReproError(
                "one of --graph / --dataset is required "
                "(or --list-families)"
            )
        graph = _load_graph(args)
        params: dict = {}
        if args.params:
            try:
                params = json.loads(args.params)
            except ValueError as error:
                raise ReproError(f"--params is not valid JSON: {error}")
            if not isinstance(params, dict):
                raise ReproError(
                    f"--params must be a JSON object, got {args.params!r}"
                )
        if args.exact:
            result = get_query_family(args.family).exact(graph, **params)
        else:
            if args.worlds < 1:
                raise ReproError(
                    f"--worlds must be >= 1, got {args.worlds}"
                )
            view = WorldView(
                graph,
                np.arange(args.worlds, dtype=np.int64),
                seed=args.seed,
            )
            result = QueryEngine(view).run(args.family, **params)
    except (ReproError, OSError, TypeError) as error:
        # TypeError covers params that the family's signature rejects
        # (e.g. {"kk": 3}) — a user input problem, not a crash.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=1))
        return 0
    title = (
        f"{result.family} ({result.method}) over {result.worlds_used} "
        f"worlds of {graph.num_nodes} nodes "
        f"({result.elapsed_seconds:.3f}s)"
    )
    rows = [
        {"node": int(node), "value": round(float(value), 6)}
        for node, value in zip(result.nodes, result.values)
    ]
    if rows:
        print(render_table(rows, title=title))
    else:
        print(title)
    if not rows and result.details:
        # Families without per-node answers (reliability) report
        # through details.
        print(json.dumps(result.details, indent=1))
    return 0


def _load_graph(args: argparse.Namespace) -> UncertainGraph:
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed).graph
    if args.format == "json":
        return load_graph_json(args.graph)
    return read_edgelist(args.graph)


def _resolve_k(args: argparse.Namespace, graph: UncertainGraph) -> int:
    """The answer size from ``--k`` / ``--k-percent`` (shared validation)."""
    if args.k is not None:
        return args.k
    if args.k_percent <= 0:
        raise ReproError("--k-percent must be positive")
    return max(1, round(graph.num_nodes * args.k_percent / 100.0))


def _growth_batches(graph: UncertainGraph, grow: int, seed: int):
    """``grow`` topology batches: one new node plus attaching edges each.

    Labels and attachment targets are drawn deterministically from
    *seed*; targets come from the pre-growth label set, so batches stay
    valid regardless of how they interleave with probability patches.
    """
    import numpy as np

    from repro.streaming.events import EdgeAdd, NodeAdd

    rng = np.random.default_rng(np.uint64(seed) ^ np.uint64(0x9E3779B9))
    labels = graph.labels()
    for i in range(grow):
        label = f"grown-{i}"
        events = [
            NodeAdd(
                label, float(rng.uniform(0.05, 0.5)), source="stream:grow"
            )
        ]
        fan = min(int(rng.integers(1, 3)), len(labels))
        targets = rng.choice(len(labels), size=fan, replace=False)
        for j in targets:
            other = labels[int(j)]
            prob = float(rng.uniform(0.1, 0.9))
            if rng.random() < 0.5:
                events.append(
                    EdgeAdd(other, label, prob, source="stream:grow")
                )
            else:
                events.append(
                    EdgeAdd(label, other, prob, source="stream:grow")
                )
        yield f"+grow {label}", events


def _with_growth(batches, graph: UncertainGraph, grow: int, seed: int):
    """Interleave one growth batch after each stream batch (then drain)."""
    growth = _growth_batches(graph, grow, seed)
    for batch in batches:
        yield batch
        pending = next(growth, None)
        if pending is not None:
            yield pending
    yield from growth


def _stream_batches(args: argparse.Namespace):
    """Yield ``(description, events)`` batches plus the graph to monitor."""
    from repro.datasets.temporal import build_guarantee_panel
    from repro.streaming.replay import random_patch_stream

    if args.panel:
        panel = build_guarantee_panel(seed=args.seed)
        batches = [
            (f"year {year}", events) for year, events in panel.update_stream()
        ]
        graph = panel.graph
    else:
        graph = _load_graph(args)
        drift = args.drift if args.drift > 0 else None
        events = random_patch_stream(
            graph, args.events, seed=args.seed, drift=drift
        )
        # Keep the patch stream lazy: drift events must read the *current*
        # (already-patched) value at yield time so month-over-month drift
        # compounds, exactly as the benchmark replays it.
        batches = ((None, [event]) for event in events)
    if getattr(args, "grow", 0):
        batches = _with_growth(batches, graph, args.grow, args.seed)
    return graph, batches


def stream_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``stream`` subcommand."""
    from repro.algorithms.bsr import BoundedSampleReverseDetector
    from repro.algorithms.bsrbk import BottomKDetector
    from repro.streaming.events import EdgeAdd, NodeAdd
    from repro.streaming.monitor import TopKMonitor

    args = build_stream_parser().parse_args(argv)
    try:
        graph, batches = _stream_batches(args)
        k = _resolve_k(args, graph)
        monitor = TopKMonitor(
            graph,
            k,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.seed,
            algorithm=args.algorithm,
            bk=args.bk,
            engine=args.engine,
            world_state=args.world_state,
            counter_layout=args.counter_layout,
        )
        rows: list[dict] = []
        incremental_total = fresh_total = 0.0
        topology_events = probability_events = 0
        for step, (description, events) in enumerate(batches):
            events = list(events)
            for event in events:
                if isinstance(event, (NodeAdd, EdgeAdd)):
                    topology_events += 1
                else:
                    probability_events += 1
            monitor.apply(events)
            # refresh() returns *this* step's report even when the batch
            # turns out to be a no-op (a "clean" report) — top_k() alone
            # would skip the refresh and leave last_report stale.
            report = monitor.refresh()
            result = monitor.top_k()
            incremental_total += report.elapsed_seconds
            row = {
                "step": step,
                "event": description
                or "; ".join(event.describe() for event in events),
                "mode": report.mode,
                "sampling": report.sampling,
                "worlds": f"{report.worlds_repaired}/{report.samples}",
                "ms": round(report.elapsed_seconds * 1e3, 2),
            }
            if args.verify:
                started = time.perf_counter()
                if args.counter_layout != "packed":
                    # The stand-alone detectors draw packed-layout
                    # worlds; a stable-layout monitor draws a different
                    # (equally exact) realisation, so the bit-identity
                    # oracle must be a fresh monitor in the same layout.
                    fresh = TopKMonitor(
                        graph,
                        k,
                        epsilon=args.epsilon,
                        delta=args.delta,
                        seed=args.seed,
                        algorithm=args.algorithm,
                        bk=args.bk,
                        engine=args.engine,
                        world_state=args.world_state,
                        counter_layout=args.counter_layout,
                    ).top_k()
                    fresh_seconds = time.perf_counter() - started
                    fresh_total += fresh_seconds
                    row["fresh_ms"] = round(fresh_seconds * 1e3, 2)
                    row["match"] = result.same_answer(fresh)
                    rows.append(row)
                    continue
                if args.algorithm == "bsrbk":
                    detector = BottomKDetector(
                        bk=args.bk,
                        epsilon=args.epsilon,
                        delta=args.delta,
                        seed=args.seed,
                        engine=args.engine,
                    )
                else:
                    detector = BoundedSampleReverseDetector(
                        epsilon=args.epsilon,
                        delta=args.delta,
                        seed=args.seed,
                        engine=args.engine,
                    )
                started = time.perf_counter()
                fresh = detector.detect(graph, k)
                fresh_seconds = time.perf_counter() - started
                fresh_total += fresh_seconds
                row["fresh_ms"] = round(fresh_seconds * 1e3, 2)
                row["match"] = result.same_answer(fresh)
            rows.append(row)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps({
            "k": k,
            "steps": rows,
            "topology_events": topology_events,
            "probability_events": probability_events,
        }, indent=1))
    else:
        title = (
            f"streaming top-{k} over {graph.num_nodes} nodes "
            f"({len(rows)} update batches, engine={args.engine})"
        )
        print(render_table(rows, title=title))
        if args.verify and rows:
            mismatches = sum(1 for row in rows if not row["match"])
            speedup = fresh_total / max(incremental_total, 1e-12)
            print(
                f"verify: {len(rows) - mismatches}/{len(rows)} steps "
                f"bit-identical to fresh {args.algorithm.upper()} "
                f"({topology_events} topology + {probability_events} "
                f"probability events verified); "
                f"incremental {incremental_total:.3f}s vs fresh "
                f"{fresh_total:.3f}s ({speedup:.1f}x)"
            )
    if args.verify and any(not row["match"] for row in rows):
        return 1
    return 0


def _serve_network(args: argparse.Namespace, service, k: int) -> int:
    """Run ``serve --port``: the SLO-enforced HTTP front end.

    Binds :class:`~repro.frontend.server.FrontendServer` over the
    already-constructed service and runs until SIGINT/SIGTERM; prints
    the final overload-control counters on the way out.
    """
    import asyncio
    import signal

    from repro.frontend.server import FrontendServer

    if args.auth:
        tokens: dict[str, str] = {}
        for spec in args.auth:
            tenant, sep, token = spec.partition("=")
            if not sep or not tenant or not token:
                raise ReproError(
                    f"--auth expects TENANT=TOKEN, got {spec!r}"
                )
            tokens[tenant] = token
    else:
        tokens = {
            tenant: f"token-{tenant}"
            for tenant in (
                f"portfolio-{i:02d}" for i in range(args.tenants)
            )
        }
    recovered = set(service.tenants())
    for tenant_id in tokens:
        if tenant_id not in recovered:
            service.register_tenant(tenant_id, k)
    server = FrontendServer(
        service,
        tokens,
        host=args.host,
        port=args.port,
        slo_ms=args.slo_ms,
        rate_limit=args.rate_limit,
        burst=args.burst,
        max_inflight=args.max_inflight,
        queue_depth_limit=args.queue_limit,
        flush_interval=args.flush_interval,
        snapshot_interval=args.snapshot_interval,
    )

    async def run() -> tuple[str, dict]:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / unsupported platform
        await server.start()
        address = server.address
        print(
            f"serving {len(tokens)} tenant(s) on {address} "
            f"(SLO {args.slo_ms:.0f}ms, rate {args.rate_limit:.0f}/s, "
            f"inflight {args.max_inflight}; Ctrl-C stops)",
            file=sys.stderr,
        )
        try:
            await stop.wait()
        finally:
            for signum in handled:
                loop.remove_signal_handler(signum)
            await server.stop()
        return address, server._stats_payload()

    address, stats = asyncio.run(run())
    if args.as_json:
        print(json.dumps({"address": address, **stats}, indent=1))
    else:
        frontend = stats["frontend"]
        print(
            f"served {frontend['received']} requests: "
            f"{frontend['completed']} completed, "
            f"{frontend['degraded']} degraded, "
            f"{frontend['rejected_rate'] + frontend['rejected_capacity'] + frontend['rejected_backlog']} rejected "
            f"(accounted {stats['accounted']}/{frontend['received']}); "
            f"cache {stats['cache']['hits']} hits / "
            f"{stats['cache']['misses']} misses"
        )
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``serve`` subcommand."""
    import asyncio
    import signal

    from repro.algorithms.bsr import BoundedSampleReverseDetector
    from repro.serving import RiskService
    from repro.streaming.events import apply_event
    from repro.streaming.replay import random_patch_stream

    args = build_serve_parser().parse_args(argv)
    service = None
    try:
        graph = _load_graph(args)
        k = _resolve_k(args, graph)
        if args.tenants < 1:
            raise ReproError(f"--tenants must be >= 1, got {args.tenants}")
        if args.events < 1:
            raise ReproError(f"--events must be >= 1, got {args.events}")
        if args.snapshot_interval is not None and args.wal_dir is None:
            raise ReproError("--snapshot-interval requires --wal-dir")
        service = RiskService(
            graph,
            mode=args.mode,
            shards=args.shards,
            monitor_defaults={
                "seed": args.seed,
                "engine": args.engine,
                "epsilon": args.epsilon,
                "delta": args.delta,
            },
            max_pending=args.max_pending,
            overflow=args.overflow,
            wal_dir=args.wal_dir,
            fsync=args.fsync,
        )
        recovered = set(service.tenants())
        if recovered:
            print(
                f"recovered {len(recovered)} tenant(s) from "
                f"{args.wal_dir}",
                file=sys.stderr,
            )
        if args.port is not None:
            return _serve_network(args, service, k)
        tenant_ids = [f"portfolio-{i:02d}" for i in range(args.tenants)]
        for tenant_id in tenant_ids:
            if tenant_id not in recovered:
                service.register_tenant(tenant_id, k)
        # Each tenant's stream compounds drift against a shadow copy —
        # the single-threaded reference state the served answers are
        # verified against.
        shadows = {tenant_id: graph.copy() for tenant_id in tenant_ids}
        drift = args.drift if args.drift > 0 else None
        streams = {
            tenant_id: random_patch_stream(
                shadows[tenant_id],
                args.events,
                seed=args.seed + 101 + position,
                drift=drift,
            )
            for position, tenant_id in enumerate(tenant_ids)
        }

        async def drive() -> None:
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            # Graceful shutdown: SIGINT/SIGTERM set the stop event, the
            # pump runs its final drain cycle (with --wal-dir nothing
            # accepted is lost — see RiskService.close), and the normal
            # reporting path below still runs.
            handled: list[signal.Signals] = []
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                    handled.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread / unsupported platform
            try:
                pump = asyncio.create_task(
                    service.serve(
                        flush_interval=args.flush_interval,
                        stop=stop,
                        snapshot_interval=args.snapshot_interval,
                    )
                )
                for _ in range(args.events):
                    if stop.is_set():
                        break
                    for tenant_id in tenant_ids:
                        event = next(streams[tenant_id])
                        service.submit_update(tenant_id, event)
                        apply_event(shadows[tenant_id], event)
                    await asyncio.sleep(0)
                stop.set()
                await pump
            finally:
                for signum in handled:
                    loop.remove_signal_handler(signum)

        started = time.perf_counter()
        asyncio.run(drive())
        results = {
            tenant_id: service.query_topk(tenant_id)
            for tenant_id in tenant_ids
        }
        elapsed = time.perf_counter() - started
        rows: list[dict] = []
        mismatches = 0
        for tenant_id in tenant_ids:
            result = results[tenant_id]
            row = {
                "tenant": tenant_id,
                "events": args.events,
                "top": ", ".join(str(node) for node in result.nodes[:3]),
                "samples": result.samples_used,
            }
            if args.verify:
                detector = BoundedSampleReverseDetector(
                    epsilon=args.epsilon,
                    delta=args.delta,
                    seed=args.seed,
                    engine=args.engine,
                )
                fresh = detector.detect(shadows[tenant_id], k)
                row["match"] = result.same_answer(fresh)
                mismatches += not row["match"]
            rows.append(row)
        queue_stats = service.queue.stats.as_dict()
        shard_stats = service.snapshot().shards
        # Per-worker deduplicated vs unshared bytes; summing keeps the
        # ratio honest in fork mode too (each term is within-worker).
        shared_bytes = sum(int(row["graph_bytes"]) for row in shard_stats)
        naive_bytes = sum(
            int(row["graph_bytes_unshared"]) for row in shard_stats
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        # Shut worker shards down on every exit path — an error after
        # pool construction must not leak fork worker processes.
        if service is not None:
            service.close()
    total_events = args.events * len(tenant_ids)
    summary = {
        "k": k,
        "tenants": len(tenant_ids),
        "mode": service.pool.mode,
        "events": total_events,
        "elapsed_seconds": round(elapsed, 4),
        "updates_per_second": round(total_events / max(elapsed, 1e-12), 1),
        "queue": queue_stats,
        "graph_bytes_shared": shared_bytes,
        "graph_bytes_naive": naive_bytes,
    }
    if args.as_json:
        print(json.dumps({**summary, "tenants_detail": rows}, indent=1))
    else:
        print(render_table(
            rows,
            title=(
                f"serving top-{k} to {len(tenant_ids)} tenants over "
                f"{graph.num_nodes} nodes (mode={service.pool.mode})"
            ),
        ))
        print(
            f"throughput: {summary['updates_per_second']} updates/s "
            f"({total_events} events in {elapsed:.3f}s); coalescing "
            f"absorbed {queue_stats['coalesced_away']} events in "
            f"{queue_stats['flushes']} flushes; graph buffers "
            f"{shared_bytes / 1e6:.2f}MB shared vs {naive_bytes / 1e6:.2f}MB "
            f"unshared"
        )
        if args.verify:
            print(
                f"verify: {len(rows) - mismatches}/{len(rows)} tenants "
                f"bit-identical to fresh detection"
            )
    return 1 if mismatches else 0


def build_crawl_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``crawl`` subcommand."""
    from repro.crawling import CRAWL_STRATEGIES

    parser = argparse.ArgumentParser(
        prog="repro-detect crawl",
        description=(
            "Discover a hidden graph by budgeted crawling while a "
            "TopKMonitor ingests the topology events incrementally."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to the hidden graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset as the hidden graph",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    parser.add_argument(
        "--strategy",
        choices=sorted(CRAWL_STRATEGIES),
        default="avrachenkov",
        help="budget-spending crawl strategy",
    )
    parser.add_argument("--budget", type=int, default=50,
                        help="crawl-step budget")
    parser.add_argument(
        "--seeds",
        default="3",
        help=(
            "comma-separated seed node labels, or an integer count of "
            "deterministically chosen random seeds (default: 3)"
        ),
    )
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of hidden |V|")
    parser.add_argument(
        "--algorithm",
        choices=("bsr", "bsrbk"),
        default="bsr",
        help="maintained detection algorithm",
    )
    parser.add_argument("--bk", type=int, default=16,
                        help="bottom-k counter threshold (bsrbk only)")
    parser.add_argument(
        "--world-state",
        choices=("packed", "dense"),
        default="packed",
        help="touched-entity representation backing per-world repair",
    )
    parser.add_argument(
        "--counter-layout",
        choices=("stable", "packed"),
        default="stable",
        help=(
            "counter-PRF layout; 'stable' ingests crawl steps "
            "incrementally, 'packed' falls back to full recomputation "
            "per step (the comparison baseline)"
        ),
    )
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after each crawl step, check the monitor's answer is "
            "bit-identical to fresh detection on an independently "
            "replayed observed subgraph"
        ),
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the replay as JSON instead of a table")
    return parser


def build_replicate_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``replicate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-detect replicate",
        description=(
            "Run a replication drill: ship the primary's WAL to "
            "replicas, crash the primary, promote, and prove the old "
            "lineage fenced."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--tenants", type=int, default=4,
                        help="tenant monitors on the primary (default: 4)")
    parser.add_argument("--rounds", type=int, default=6,
                        help="flushed event batches per tenant (default: 6)")
    parser.add_argument("--events-per-round", type=int, default=4,
                        help="events per tenant per batch (default: 4)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="WAL-shipped replicas (default: 2)")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of the per-patch probability drift")
    parser.add_argument(
        "--state-dir",
        default=None,
        help=(
            "directory for the primary WAL, mirrors, and epoch register "
            "(default: a temp directory, removed afterwards)"
        ),
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "flush"),
        default="flush",
        help="primary WAL fsync policy (default: flush)",
    )
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "check every replica's and the promoted service's answers "
            "bit-for-bit against the pre-crash primary"
        ),
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the drill report as JSON")
    return parser


def _resolve_seeds(args: argparse.Namespace, hidden: UncertainGraph):
    """Seed labels from ``--seeds`` (explicit list or random count)."""
    import numpy as np

    spec = str(args.seeds)
    try:
        count = int(spec)
    except ValueError:
        return [part.strip() for part in spec.split(",") if part.strip()]
    if count < 1:
        raise ReproError(f"--seeds count must be >= 1, got {count}")
    count = min(count, hidden.num_nodes)
    rng = np.random.default_rng(args.seed)
    picks = rng.choice(hidden.num_nodes, size=count, replace=False)
    return [hidden.label(int(index)) for index in sorted(picks)]


def crawl_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``crawl`` subcommand."""
    from repro.crawling import ObservedGraphSession
    from repro.streaming.events import apply_events
    from repro.streaming.monitor import TopKMonitor

    args = build_crawl_parser().parse_args(argv)

    def make_monitor(graph: UncertainGraph, k: int) -> TopKMonitor:
        return TopKMonitor(
            graph,
            k,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.seed,
            algorithm=args.algorithm,
            bk=args.bk,
            engine="indexed",
            world_state=args.world_state,
            counter_layout=args.counter_layout,
        )

    try:
        hidden = _load_graph(args)
        k = _resolve_k(args, hidden)
        seeds = _resolve_seeds(args, hidden)
        truth = set(make_monitor(hidden, k).top_k().nodes)
        session = ObservedGraphSession(
            hidden,
            seeds,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
        )
        # The monitor consumes the session's event stream into its own
        # live graph — the consumer side of crawl-while-monitoring —
        # starting as soon as the observed subgraph can hold a top-k.
        live = UncertainGraph()
        replay = UncertainGraph() if args.verify else None
        monitor = None
        result = None
        rows: list[dict] = []
        incremental_total = fresh_total = 0.0
        topology_events = 0
        for batch in session.run():
            topology_events += len(batch.events)
            if replay is not None:
                apply_events(replay, batch.events)
            if monitor is None:
                apply_events(live, batch.events)
                if live.num_nodes < k:
                    continue
                monitor = make_monitor(live, k)
                report = monitor.refresh()
            else:
                monitor.apply(batch.events)
                report = monitor.refresh()
            result = monitor.top_k()
            incremental_total += report.elapsed_seconds
            row = {
                "step": batch.step,
                "crawled": "(seeds)" if batch.target is None
                else str(batch.target),
                "observed": f"{live.num_nodes}n/{live.num_edges}e",
                "mode": report.mode,
                "sampling": report.sampling,
                "worlds": f"{report.worlds_repaired}/{report.samples}",
                "ms": round(report.elapsed_seconds * 1e3, 2),
            }
            if args.verify:
                started = time.perf_counter()
                fresh = make_monitor(replay, k).top_k()
                fresh_seconds = time.perf_counter() - started
                fresh_total += fresh_seconds
                row["fresh_ms"] = round(fresh_seconds * 1e3, 2)
                row["match"] = result.same_answer(fresh)
            rows.append(row)
        if monitor is None:
            raise ReproError(
                f"budget {args.budget} never observed {k} nodes; "
                "raise --budget or add seeds"
            )
        recall = len(set(result.nodes) & truth) / float(k)
        frontier = session.frontier
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    coverage = {
        "observed_nodes": frontier.num_observed,
        "hidden_nodes": hidden.num_nodes,
        "observed_edges": frontier.num_observed_edges,
        "hidden_edges": hidden.num_edges,
        "crawls_spent": frontier.num_crawled,
    }
    if args.as_json:
        print(json.dumps({
            "k": k,
            "strategy": session.strategy_name,
            "budget": args.budget,
            "recall": recall,
            "coverage": coverage,
            "topology_events": topology_events,
            "steps": rows,
        }, indent=1))
    else:
        print(render_table(rows, title=(
            f"crawl({session.strategy_name}): top-{k} while discovering "
            f"{frontier.num_observed}/{hidden.num_nodes} nodes, "
            f"{frontier.num_observed_edges}/{hidden.num_edges} edges "
            f"in {frontier.num_crawled} crawls"
        )))
        print(
            f"recall of hidden true top-{k}: {recall:.2f}; "
            f"{topology_events} topology events ingested"
        )
        if args.verify and rows:
            mismatches = sum(
                1 for row in rows if not row.get("match", True)
            )
            checked = sum(1 for row in rows if "match" in row)
            speedup = fresh_total / max(incremental_total, 1e-12)
            print(
                f"verify: {checked - mismatches}/{checked} steps "
                f"bit-identical to fresh detection on the observed "
                f"subgraph; incremental {incremental_total:.3f}s vs "
                f"fresh {fresh_total:.3f}s ({speedup:.1f}x)"
            )
    if args.verify and any(not row.get("match", True) for row in rows):
        return 1
    return 0


def replicate_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``replicate`` subcommand."""
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.errors import FencedError
    from repro.replication import (
        EpochStore,
        FailoverCoordinator,
        LocalSource,
        ReplicaService,
        ReplicationHub,
        WalShipper,
    )
    from repro.serving import RiskService
    from repro.streaming.events import apply_event
    from repro.streaming.replay import random_patch_stream

    args = build_replicate_parser().parse_args(argv)
    primary = None
    promoted = None
    scratch = None
    try:
        graph = _load_graph(args)
        k = _resolve_k(args, graph)
        if args.tenants < 1:
            raise ReproError(f"--tenants must be >= 1, got {args.tenants}")
        if args.rounds < 1:
            raise ReproError(f"--rounds must be >= 1, got {args.rounds}")
        if args.replicas < 1:
            raise ReproError(
                f"--replicas must be >= 1, got {args.replicas}"
            )
        if args.state_dir is not None:
            state_dir = Path(args.state_dir)
            state_dir.mkdir(parents=True, exist_ok=True)
        else:
            scratch = Path(tempfile.mkdtemp(prefix="repro-replicate-"))
            state_dir = scratch
        monitor_defaults = {
            "seed": args.seed,
            "engine": "indexed",
            "epsilon": args.epsilon,
            "delta": args.delta,
        }
        primary = RiskService(
            graph,
            mode="serial",
            monitor_defaults=monitor_defaults,
            wal_dir=state_dir / "primary",
            fsync=args.fsync,
            epoch_store=EpochStore(state_dir / "epoch.json"),
            node_id="primary",
        )
        tenant_ids = [f"portfolio-{i:02d}" for i in range(args.tenants)]
        for tenant_id in tenant_ids:
            primary.register_tenant(tenant_id, k)
        hub = ReplicationHub(primary)
        fleet = {}
        for index in range(args.replicas):
            node = f"r{index + 1}"
            replica = ReplicaService(
                graph,
                state_dir / node,
                node_id=node,
                mode="serial",
                monitor_defaults=monitor_defaults,
                fsync="flush",
            )
            fleet[node] = (replica, WalShipper(LocalSource(hub), replica))
        shadows = {tenant_id: graph.copy() for tenant_id in tenant_ids}
        drift = args.drift if args.drift > 0 else None
        streams = {
            tenant_id: random_patch_stream(
                shadows[tenant_id],
                # One spare event per stream: the deposed primary's
                # provably-fenced late write after promotion.
                args.rounds * args.events_per_round + 1,
                seed=args.seed + 101 + position,
                drift=drift,
            )
            for position, tenant_id in enumerate(tenant_ids)
        }
        # Drive the stream; after every durable flush, step each
        # shipper until the batch is applied everywhere and record the
        # replication lag.
        lags: list[float] = []
        for _ in range(args.rounds):
            for tenant_id in tenant_ids:
                for _ in range(args.events_per_round):
                    event = next(streams[tenant_id])
                    primary.submit_update(tenant_id, event)
                    apply_event(shadows[tenant_id], event)
            primary.flush()
            target = primary.durable_seq
            started = time.perf_counter()
            for replica, shipper in fleet.values():
                while replica.applied_seq < target:
                    shipper.step()
            lags.append(time.perf_counter() - started)
        primary_answers = {
            tenant_id: primary.query_topk(tenant_id, flush=False)
            for tenant_id in tenant_ids
        }
        replica_matches = args.verify and all(
            primary_answers[tenant_id].same_answer(
                replica.query_topk(tenant_id)
            )
            for _, (replica, _) in fleet.items()
            for tenant_id in tenant_ids
        )
        # The operator declares the primary dead (here: simply stops
        # routing to it) and promotes the most-caught-up replica.  The
        # deposed primary is left running so its late write can be
        # proven fenced.
        coordinator = FailoverCoordinator(
            EpochStore(state_dir / "epoch.json")
        )
        winner, promoted = coordinator.promote(
            {node: replica for node, (replica, _) in fleet.items()},
            fsync=args.fsync,
        )
        promoted_answers = {
            tenant_id: promoted.query_topk(tenant_id, flush=False)
            for tenant_id in tenant_ids
        }
        try:
            primary.submit_and_sync(
                tenant_ids[0], next(streams[tenant_ids[0]])
            )
            fenced = False
        except FencedError:
            fenced = True
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        for service in (primary, promoted):
            if service is not None:
                # Crash-style release: the deposed primary's graceful
                # close would raise through the fence, and the drill
                # must not mutate state after its verdict.
                service._wal.close()
                service._pool.shutdown()
                service._closed = True
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    lags_ms = sorted(lag * 1e3 for lag in lags)
    mismatches = 0
    rows = []
    for tenant_id in tenant_ids:
        result = promoted_answers[tenant_id]
        row = {
            "tenant": tenant_id,
            "top": ", ".join(str(node) for node in result.nodes[:3]),
            "samples": result.samples_used,
        }
        if args.verify:
            row["match"] = result.same_answer(primary_answers[tenant_id])
            mismatches += not row["match"]
        rows.append(row)
    summary = {
        "k": k,
        "tenants": len(tenant_ids),
        "replicas": args.replicas,
        "rounds": args.rounds,
        "events": args.tenants * args.rounds * args.events_per_round,
        "lag_p50_ms": round(lags_ms[len(lags_ms) // 2], 3),
        "lag_max_ms": round(lags_ms[-1], 3),
        "failover_winner": winner,
        "failover_epoch": promoted.epoch,
        "promotion_seconds": round(
            coordinator.last_promotion_seconds, 4
        ),
        "deposed_primary_fenced": fenced,
    }
    if args.verify:
        summary["replicas_bit_identical"] = bool(replica_matches)
    if args.as_json:
        print(json.dumps({**summary, "tenants_detail": rows}, indent=1))
    else:
        print(render_table(
            rows,
            title=(
                f"promoted {winner} (epoch {promoted.epoch}) serving "
                f"top-{k} to {len(tenant_ids)} tenants after failover"
            ),
        ))
        print(
            f"replication lag: p50 {summary['lag_p50_ms']}ms, "
            f"max {summary['lag_max_ms']}ms over {args.rounds} batches; "
            f"promotion took {summary['promotion_seconds']}s; "
            f"deposed primary fenced: {fenced}"
        )
        if args.verify:
            print(
                f"verify: {len(rows) - mismatches}/{len(rows)} tenants "
                f"bit-identical to the pre-crash primary; replicas "
                f"bit-identical: {bool(replica_matches)}"
            )
    if not fenced:
        return 1
    if args.verify and (mismatches or not replica_matches):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        return stream_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "query":
        return query_main(argv[1:])
    if argv and argv[0] == "crawl":
        return crawl_main(argv[1:])
    if argv and argv[0] == "replicate":
        return replicate_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        graph = _load_graph(args)
        k = _resolve_k(args, graph)
        detector = make_detector(
            args.method,
            samples=args.samples,
            epsilon=args.epsilon,
            delta=args.delta,
            bk=args.bk,
            seed=args.seed,
        )
        result = detector.detect(graph, k)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(result_to_dict(result), indent=1))
    else:
        rows = [
            {
                "rank": rank,
                "node": str(label),
                "score": round(result.scores[label], 6),
            }
            for rank, label in enumerate(result.nodes, start=1)
        ]
        print(render_table(
            rows,
            title=(
                f"{result.method}: top-{result.k} of {graph.num_nodes} nodes "
                f"({result.samples_used} worlds, "
                f"{result.k_verified} bound-verified, "
                f"{result.elapsed_seconds:.3f}s)"
            ),
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
