"""Command-line interface for one-off detections.

Usage::

    repro-detect --graph loans.json --method BSRBK --k 10
    repro-detect --dataset guarantee --scale 0.05 --k-percent 5 --method BSR
    python -m repro.cli --graph loans.txt --format edgelist --k 3 --json

Reads a graph (JSON or text edge list, or a named synthetic dataset),
runs one detection method, and prints the ranked answer — as a table or
as JSON for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.datasets.registry import available_datasets, load_dataset
from repro.io.edgelist import read_edgelist
from repro.io.jsonio import load_graph_json, result_to_dict
from repro.utils.tables import render_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Detect the top-k vulnerable nodes of an uncertain graph.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a graph file")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="generate a named synthetic dataset instead of reading a file",
    )
    parser.add_argument(
        "--format",
        choices=("json", "edgelist"),
        default="json",
        help="graph file format (default: json)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (synthetic datasets only)")
    parser.add_argument("--method", choices=ALL_METHODS, default="BSRBK")
    size = parser.add_mutually_exclusive_group(required=True)
    size.add_argument("--k", type=int, help="answer size (absolute)")
    size.add_argument("--k-percent", type=float,
                      help="answer size as a percentage of |V|")
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--bk", type=int, default=16,
                        help="bottom-k threshold (BSRBK only)")
    parser.add_argument("--samples", type=int, default=20_000,
                        help="fixed sample budget (method N only)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the result as JSON instead of a table")
    return parser


def _load_graph(args: argparse.Namespace) -> UncertainGraph:
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed).graph
    if args.format == "json":
        return load_graph_json(args.graph)
    return read_edgelist(args.graph)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        graph = _load_graph(args)
        if args.k is not None:
            k = args.k
        else:
            if args.k_percent <= 0:
                raise ReproError("--k-percent must be positive")
            k = max(1, round(graph.num_nodes * args.k_percent / 100.0))
        detector = make_detector(
            args.method,
            samples=args.samples,
            epsilon=args.epsilon,
            delta=args.delta,
            bk=args.bk,
            seed=args.seed,
        )
        result = detector.detect(graph, k)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(result_to_dict(result), indent=1))
    else:
        rows = [
            {
                "rank": rank,
                "node": str(label),
                "score": round(result.scores[label], 6),
            }
            for rank, label in enumerate(result.nodes, start=1)
        ]
        print(render_table(
            rows,
            title=(
                f"{result.method}: top-{result.k} of {graph.num_nodes} nodes "
                f"({result.samples_used} worlds, "
                f"{result.k_verified} bound-verified, "
                f"{result.elapsed_seconds:.3f}s)"
            ),
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
