"""Contagion analytics on top of the sampling engines.

The detectors answer "who is most likely to default"; risk managers next
ask "*because of whom*".  This module quantifies that:

* :func:`systemic_importance` — for every node, the expected number of
  *other* nodes it drags down per world (its contagion footprint under
  the full model, self-risks included — unlike the IC-model InfMax
  baseline, which ignores ``ps``);
* :func:`default_correlation` — pairwise co-default correlations between
  selected nodes, exposing guarantee-circle coupling;
* :func:`attribution` — for one target node, how often each upstream
  node was the *source* that infected it, estimated over sampled worlds.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import NodeLabel, UncertainGraph
from repro.sampling.forward import ForwardSampler
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["systemic_importance", "default_correlation", "attribution"]


def systemic_importance(
    graph: UncertainGraph, samples: int = 2000, seed: SeedLike = None
) -> np.ndarray:
    """Expected number of downstream defaults each node *causes*.

    For every sampled world, each self-defaulting node is credited with
    the nodes it (alone among the seeds) can reach through surviving
    edges; nodes reachable from several seeds split the credit equally.
    The returned vector is the per-node average credit — a risk-adjusted
    contagion footprint.

    Parameters
    ----------
    graph:
        The uncertain graph.
    samples:
        Number of possible worlds to average over.
    seed:
        Randomness control.
    """
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    rng = make_rng(seed)
    n, m = graph.num_nodes, graph.num_edges
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    out_csr = graph.out_csr()
    credit = np.zeros(n, dtype=np.float64)
    reach_count = np.zeros(n, dtype=np.int64)
    stamp = np.full(n, -1, dtype=np.int64)
    for world_index in range(samples):
        self_default = rng.random(n) <= ps
        seeds = np.flatnonzero(self_default)
        if seeds.size == 0:
            continue
        edge_survives = rng.random(m) <= pe
        # Count, per node, how many seeds reach it (to split credit).
        reach_count[:] = 0
        reach_sets: list[tuple[int, list[int]]] = []
        for seed_node in seeds:
            visited: list[int] = []
            queue: deque[int] = deque((int(seed_node),))
            stamp[seed_node] = world_index * n + seed_node  # unique stamp
            local_stamp = stamp[seed_node]
            while queue:
                u = queue.popleft()
                start, stop = out_csr.indptr[u], out_csr.indptr[u + 1]
                for pos in range(start, stop):
                    v = int(out_csr.indices[pos])
                    if stamp[v] == local_stamp:
                        continue
                    if edge_survives[out_csr.edge_ids[pos]]:
                        stamp[v] = local_stamp
                        visited.append(v)
                        queue.append(v)
            downstream = [v for v in visited if v != seed_node]
            for v in downstream:
                reach_count[v] += 1
            reach_sets.append((int(seed_node), downstream))
        for seed_node, downstream in reach_sets:
            for v in downstream:
                credit[seed_node] += 1.0 / reach_count[v]
    return credit / samples


def default_correlation(
    graph: UncertainGraph,
    labels: list[NodeLabel],
    samples: int = 2000,
    seed: SeedLike = None,
) -> np.ndarray:
    """Pairwise Pearson correlation of default indicators.

    Returns a ``(len(labels), len(labels))`` matrix; entry ``(i, j)`` is
    the correlation between "labels[i] defaults" and "labels[j]
    defaults" over sampled worlds.  Degenerate nodes (never/always
    defaulting in the sample) get zero off-diagonal correlation.
    """
    if not labels:
        raise SamplingError("labels must not be empty")
    indices = np.array([graph.index(label) for label in labels])
    sampler = ForwardSampler(graph, seed=seed)
    outcomes = np.zeros((samples, indices.size), dtype=bool)
    collected = 0
    while collected < samples:
        batch = sampler.sample_batch(min(256, samples - collected))
        outcomes[collected : collected + batch.shape[0]] = batch[:, indices]
        collected += batch.shape[0]
    x = outcomes.astype(np.float64)
    std = x.std(axis=0)
    centred = x - x.mean(axis=0)
    cov = centred.T @ centred / samples
    denom = np.outer(std, std)
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denom > 0, cov / denom, 0.0)
    np.fill_diagonal(corr, 1.0)
    return corr


def attribution(
    graph: UncertainGraph,
    target: NodeLabel,
    samples: int = 2000,
    seed: SeedLike = None,
) -> dict[NodeLabel, float]:
    """Where does *target*'s default risk come from?

    Over sampled worlds in which the target defaults, counts how often
    each node was a self-defaulting seed with a surviving path to the
    target (the target itself counts when it self-defaults).  Returned
    values are fractions of the target's defaulting worlds and can sum
    to more than 1 (several seeds can hit the target in one world).
    """
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    rng = make_rng(seed)
    n, m = graph.num_nodes, graph.num_edges
    target_index = graph.index(target)
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    in_csr = graph.in_csr()
    blame = np.zeros(n, dtype=np.int64)
    target_defaults = 0
    visited = np.full(n, -1, dtype=np.int64)
    for world in range(samples):
        self_default = rng.random(n) <= ps
        edge_survives = rng.random(m) <= pe
        # Backward reachability from the target through surviving edges:
        # every self-defaulting node in that set infected the target.
        sources: list[int] = []
        queue: deque[int] = deque((target_index,))
        visited[target_index] = world
        while queue:
            u = queue.popleft()
            if self_default[u]:
                sources.append(u)
            start, stop = in_csr.indptr[u], in_csr.indptr[u + 1]
            for pos in range(start, stop):
                v = int(in_csr.indices[pos])
                if visited[v] == world:
                    continue
                if edge_survives[in_csr.edge_ids[pos]]:
                    visited[v] = world
                    queue.append(v)
        if sources:
            target_defaults += 1
            blame[sources] += 1
    if target_defaults == 0:
        return {}
    return {
        graph.label(int(i)): float(blame[i] / target_defaults)
        for i in np.flatnonzero(blame)
    }
