"""Risk analytics beyond detection: attribution and what-if analysis."""

from repro.analysis.contagion import (
    attribution,
    default_correlation,
    systemic_importance,
)
from repro.analysis.whatif import (
    InterventionImpact,
    cut_guarantee_impact,
    derisk_impact,
    rank_interventions,
)

__all__ = [
    "attribution",
    "default_correlation",
    "systemic_importance",
    "InterventionImpact",
    "cut_guarantee_impact",
    "derisk_impact",
    "rank_interventions",
]
