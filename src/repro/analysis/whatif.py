"""What-if intervention analysis.

The deployed system's purpose (paper §5) is to *act* on vulnerability:
restructure a guarantee, de-risk an enterprise, dissolve a circle.  This
module quantifies interventions before they are taken:

* :func:`derisk_impact` — lower one node's self-risk and measure how
  every node's default probability responds;
* :func:`cut_guarantee_impact` — remove (or weaken) one guarantee edge
  and measure the system-wide response;
* :func:`rank_interventions` — greedily score a set of candidate
  single-node interventions by total system risk reduction, giving the
  risk manager an ordered action list.

All impacts are estimated with common random numbers (same seed for the
baseline and intervened runs), which cancels most Monte-Carlo noise in
the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import NodeLabel, UncertainGraph
from repro.sampling.forward import ForwardSampler
from repro.sampling.rng import SeedLike

__all__ = ["InterventionImpact", "derisk_impact", "cut_guarantee_impact", "rank_interventions"]


@dataclass(frozen=True)
class InterventionImpact:
    """Measured effect of one intervention.

    Attributes
    ----------
    description:
        Human-readable intervention summary.
    baseline:
        Per-node default-probability estimates before the intervention.
    intervened:
        Per-node estimates after it.
    """

    description: str
    baseline: np.ndarray
    intervened: np.ndarray

    @property
    def delta(self) -> np.ndarray:
        """Per-node probability change (negative = risk reduced)."""
        return self.intervened - self.baseline

    @property
    def total_risk_reduction(self) -> float:
        """Expected number of defaults prevented across the system."""
        return float(-self.delta.sum())

    def top_beneficiaries(
        self, graph: UncertainGraph, count: int = 5
    ) -> list[tuple[NodeLabel, float]]:
        """Nodes whose risk fell the most, as (label, reduction) pairs."""
        order = np.argsort(self.delta)[:count]
        return [
            (graph.label(int(i)), float(-self.delta[i]))
            for i in order
            if self.delta[i] < 0
        ]


def _estimate(graph: UncertainGraph, samples: int, seed: SeedLike) -> np.ndarray:
    return ForwardSampler(graph, seed=seed).estimate_probabilities(samples)


def derisk_impact(
    graph: UncertainGraph,
    label: NodeLabel,
    new_self_risk: float,
    samples: int = 4000,
    seed: SeedLike = 0,
    baseline: np.ndarray | None = None,
) -> InterventionImpact:
    """Impact of setting ``ps(label)`` to *new_self_risk*.

    Models actions like additional collateral or a capital injection for
    one enterprise.  Uses common random numbers for noise cancellation.
    A precomputed *baseline* (the seed-*seed*, *samples*-world estimate
    of the unmodified graph) can be passed to share one baseline run
    across many candidate interventions, as
    :func:`rank_interventions` does.
    """
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    if baseline is None:
        baseline = _estimate(graph, samples, seed)
    original = graph.self_risk(label)
    modified = graph.copy()
    modified.set_self_risk(label, new_self_risk)
    intervened = _estimate(modified, samples, seed)
    return InterventionImpact(
        description=(
            f"self-risk of {label!r}: {original:.3f} -> {new_self_risk:.3f}"
        ),
        baseline=baseline,
        intervened=intervened,
    )


def cut_guarantee_impact(
    graph: UncertainGraph,
    src: NodeLabel,
    dst: NodeLabel,
    new_probability: float = 0.0,
    samples: int = 4000,
    seed: SeedLike = 0,
) -> InterventionImpact:
    """Impact of weakening the contagion edge ``src -> dst``.

    ``new_probability = 0`` models dissolving the guarantee entirely.
    """
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    baseline = _estimate(graph, samples, seed)
    original = graph.edge_probability(src, dst)
    modified = graph.copy()
    modified.set_edge_probability(src, dst, new_probability)
    intervened = _estimate(modified, samples, seed)
    return InterventionImpact(
        description=(
            f"guarantee {src!r} -> {dst!r}: p {original:.3f} -> "
            f"{new_probability:.3f}"
        ),
        baseline=baseline,
        intervened=intervened,
    )


def rank_interventions(
    graph: UncertainGraph,
    candidates: list[NodeLabel],
    new_self_risk: float = 0.01,
    samples: int = 2000,
    seed: SeedLike = 0,
) -> list[tuple[NodeLabel, float]]:
    """Order candidate de-risking interventions by system-wide benefit.

    Evaluates :func:`derisk_impact` for every candidate independently
    (against the same common-random-number baseline) and returns
    ``(label, total_risk_reduction)`` pairs, best first — the ordered
    action list a risk manager works through.

    The baseline estimate is identical for every candidate (same graph,
    same seed, same budget), so it is computed once and shared — one
    Monte-Carlo pass instead of one per candidate.
    """
    if not candidates:
        raise SamplingError("candidates must not be empty")
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    baseline = _estimate(graph, samples, seed)
    results: list[tuple[NodeLabel, float]] = []
    for label in candidates:
        impact = derisk_impact(
            graph,
            label,
            new_self_risk,
            samples=samples,
            seed=seed,
            baseline=baseline,
        )
        results.append((label, impact.total_risk_reduction))
    results.sort(key=lambda pair: -pair[1])
    return results
