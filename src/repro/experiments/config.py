"""Experiment configuration presets.

Three presets trade fidelity for runtime:

* ``quick``   — CI-sized: small scales, few ground-truth samples.  The
  benchmark suite uses this preset so ``pytest benchmarks/`` finishes in
  minutes.
* ``default`` — laptop-sized: the scales of DESIGN.md's substitution
  table and enough samples for stable curves.
* ``paper``   — the paper's settings (20 000-world ground truth, k from
  1% to 10%); hours of compute on the larger datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import ExperimentError

__all__ = ["ExperimentConfig", "PRESETS", "get_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes
    ----------
    name:
        Preset name.
    seed:
        Master seed; every experiment derives child streams from it.
    epsilon, delta:
        Approximation parameters (paper: 0.3 / 0.1).
    k_percents:
        The "k as % of |V|" grid of Figures 4/6/7.
    ground_truth_samples:
        Possible worlds for the ground-truth ranking (paper: 20 000).
    naive_samples:
        Fixed budget of method N.
    bound_order:
        Default order for Algorithms 2/3 (paper settles on 2).
    bk:
        Default bottom-k threshold (paper settles on 16).
    scale_override:
        When set, every dataset is loaded at this scale instead of its
        spec default.
    efficiency_datasets, effectiveness_datasets:
        Dataset line-ups of Figures 6 and 7.
    panel_nodes, panel_edges:
        Temporal-panel size for Table 3.
    """

    name: str
    seed: int = 7
    epsilon: float = 0.3
    delta: float = 0.1
    k_percents: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 10.0)
    ground_truth_samples: int = 8_000
    naive_samples: int = 8_000
    bound_order: int = 2
    bk: int = 16
    scale_override: float | None = None
    efficiency_datasets: tuple[str, ...] = (
        "fraud",
        "guarantee",
        "interbank",
        "citation",
        "wiki",
        "p2p",
        "bitcoin",
        "facebook",
    )
    effectiveness_datasets: tuple[str, ...] = (
        "fraud",
        "guarantee",
        "interbank",
        "citation",
    )
    panel_nodes: int = 1_500
    panel_edges: int = 1_725

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


PRESETS: dict[str, ExperimentConfig] = {
    "quick": ExperimentConfig(
        name="quick",
        k_percents=(2.0, 6.0, 10.0),
        ground_truth_samples=2_000,
        naive_samples=2_000,
        scale_override=None,
        panel_nodes=700,
        panel_edges=805,
    ),
    "default": ExperimentConfig(name="default"),
    "paper": ExperimentConfig(
        name="paper",
        k_percents=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0),
        ground_truth_samples=20_000,
        naive_samples=20_000,
        scale_override=1.0,
        panel_nodes=31_309,
        panel_edges=35_987,
    ),
}


def get_config(name: str = "default") -> ExperimentConfig:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown preset {name!r}; known presets: {sorted(PRESETS)}"
        ) from None
