"""Experiment E-F6 — Figure 6: efficiency of the five methods.

For all eight datasets and every k in the grid, run N, SN, SR, BSR and
BSRBK and record wall time plus the telemetry that explains it (sample
count, candidate size, verified count).  Shapes to reproduce: runtime
ordering N > SN > SR > BSR > BSRBK, with BSRBK up to two orders of
magnitude faster than N on the larger graphs.
"""

from __future__ import annotations

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig, get_config
from repro.utils.tables import render_table

__all__ = ["run", "speedup_summary", "main"]


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] | None = None,
    methods: tuple[str, ...] = ALL_METHODS,
) -> list[dict[str, object]]:
    """Produce Figure 6's series: one row per (dataset, method, k%)."""
    config = config or get_config()
    datasets = datasets or config.efficiency_datasets
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:
        loaded = load_dataset(
            dataset_name, scale=config.scale_override, seed=config.seed
        )
        for percent in config.k_percents:
            k = loaded.k_for_percent(percent)
            for method in methods:
                detector = make_detector(
                    method,
                    samples=config.naive_samples,
                    epsilon=config.epsilon,
                    delta=config.delta,
                    bound_order=config.bound_order,
                    lower_order=config.bound_order,
                    upper_order=config.bound_order,
                    bk=config.bk,
                    seed=config.seed,
                    # Work counts must reproduce Algorithm 5's exact
                    # early-exit draw semantics; the batched engine's
                    # union closure draws more, so pin the reference.
                    engine="reference",
                )
                result = detector.detect(loaded.graph, k)
                work = int(result.details.get("nodes_touched", 0)) + int(
                    result.details.get("edges_touched", 0)
                )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "method": method,
                        "k_percent": percent,
                        "k": k,
                        "seconds": round(result.elapsed_seconds, 4),
                        "work": work,
                        "samples": result.samples_used,
                        "candidates": result.candidate_size,
                        "verified": result.k_verified,
                    }
                )
    return rows


def speedup_summary(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """Per-dataset speedup of every method over N (mean across k).

    The headline number of the paper's §4.3 is BSRBK's up-to-100×
    acceleration.  Two speedups are reported:

    * ``*_speedup`` — wall-clock, which mixes the algorithmic savings
      with engine differences (our N/SN run on a numpy-vectorised world
      materialiser, an extra constant-factor optimisation the paper's
      implementation does not have);
    * ``*_work_x`` — engine-neutral: the ratio of per-world node draws +
      edge examinations, which isolates exactly the savings the paper's
      pruning/early-stop techniques claim.
    """
    by_dataset: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for row in rows:
        by_dataset.setdefault(str(row["dataset"]), {}).setdefault(
            str(row["method"]), []
        ).append((float(row["seconds"]), float(row.get("work", 0))))
    summary: list[dict[str, object]] = []
    for dataset, methods in by_dataset.items():
        base_entries = methods.get("N", [(0.0, 0.0)])
        base_time = sum(t for t, _ in base_entries) / len(base_entries)
        base_work = sum(w for _, w in base_entries) / len(base_entries)
        entry: dict[str, object] = {"dataset": dataset}
        for method, pairs in methods.items():
            mean_time = sum(t for t, _ in pairs) / len(pairs)
            mean_work = sum(w for _, w in pairs) / len(pairs)
            entry[f"{method}_s"] = round(mean_time, 4)
            if method != "N":
                if mean_time > 0 and base_time > 0:
                    entry[f"{method}_speedup"] = round(base_time / mean_time, 1)
                if mean_work > 0 and base_work > 0:
                    entry[f"{method}_work_x"] = round(base_work / mean_work, 1)
        summary.append(entry)
    return summary


def main() -> None:
    """CLI entry point: print the Figure-6 tables."""
    rows = run()
    print(render_table(rows, title="Figure 6 — efficiency (per dataset, method, k)"))
    print()
    print(render_table(speedup_summary(rows), title="Speedup over N"))


if __name__ == "__main__":
    main()
