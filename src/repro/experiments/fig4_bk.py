"""Experiment E-F4 — Figure 4: tuning the bottom-k parameter ``bk``.

For each of the four datasets (Fraud, Guarantee, Interbank, Citation) and
each ``bk`` in {4, 8, 16, 32, 64}, run BSRBK over the k-grid and report
precision against the Monte-Carlo ground truth.  The paper's finding to
reproduce: precision converges rapidly in ``bk`` and is already stable
around ``bk = 8``–16.
"""

from __future__ import annotations

from repro.algorithms.bsrbk import BottomKDetector
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.ground_truth import ground_truth_for
from repro.metrics.ranking import precision_at_k
from repro.utils.tables import render_table

__all__ = ["BK_GRID", "FIG4_DATASETS", "run", "main"]

#: The bk values Figure 4 sweeps.
BK_GRID: tuple[int, ...] = (4, 8, 16, 32, 64)

#: The four datasets of Figure 4(a)-(d).
FIG4_DATASETS: tuple[str, ...] = ("fraud", "guarantee", "interbank", "citation")


def run(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Produce Figure 4's series as one row per (dataset, bk, k%)."""
    config = config or get_config()
    rows: list[dict[str, object]] = []
    for dataset_name in FIG4_DATASETS:
        loaded = load_dataset(
            dataset_name, scale=config.scale_override, seed=config.seed
        )
        truth = ground_truth_for(loaded, config.ground_truth_samples)
        for bk in BK_GRID:
            for percent in config.k_percents:
                k = loaded.k_for_percent(percent)
                detector = BottomKDetector(
                    bk=bk,
                    epsilon=config.epsilon,
                    delta=config.delta,
                    lower_order=config.bound_order,
                    upper_order=config.bound_order,
                    seed=config.seed + bk,
                )
                result = detector.detect(loaded.graph, k)
                truth_set = truth.top_k_labels(loaded.graph, k)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "bk": bk,
                        "k_percent": percent,
                        "k": k,
                        "precision": round(
                            precision_at_k(result.nodes, truth_set), 4
                        ),
                        "samples": result.samples_used,
                    }
                )
    return rows


def main() -> None:
    """CLI entry point: print the Figure-4 table."""
    rows = run()
    print(render_table(rows, title="Figure 4 — BSRBK precision vs bk"))


if __name__ == "__main__":
    main()
