"""Experiment E-T2 — Table 2: dataset statistics.

Generates every dataset at its configured scale and prints the published
vs measured node/edge/degree statistics side by side, documenting how
faithfully the synthetic substrate matches the paper's corpora.
"""

from __future__ import annotations

from repro.datasets.registry import table2_rows
from repro.experiments.config import ExperimentConfig, get_config
from repro.utils.tables import render_table

__all__ = ["run", "main"]


def run(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Produce the Table-2 comparison rows."""
    config = config or get_config()
    return table2_rows(scale=config.scale_override, seed=config.seed)


def main() -> None:
    """CLI entry point: print the Table-2 comparison."""
    rows = run()
    print(render_table(rows, title="Table 2 — paper vs generated statistics"))


if __name__ == "__main__":
    main()
