"""Experiment E-T3 — Table 3: loan default prediction case study.

Reproduces the deployed-system evaluation of §5.2 on the simulated
guaranteed-loan panel: train every baseline on the 2012 snapshot, predict
defaults in 2014/2015/2016, and report per-year AUC.

Method line-up (the paper's rows):

* feature models — Wide, Wide & Deep, GBDT, CNN-max, crDNN;
* graph-aware feature models — INDDP, HGAR;
* structural scorers — Betweenness, PageRank, K-core, InfMax;
* our detectors — BSRBK and BSR, scoring nodes by estimated default
  probability on the uncertain graph whose self-risks come from a
  feature-trained risk model (the p-wkNN stand-in).

Shape to reproduce: BSR ≥ BSRBK > HGAR/INDDP > the other feature models >
InfMax > K-core > PageRank ≈ Betweenness.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier
from repro.baselines.ml.cnn_max import CNNMaxClassifier
from repro.baselines.ml.crdnn import CompetingRisksDNN
from repro.baselines.ml.gbdt import GradientBoostedTrees
from repro.baselines.ml.hgar import HGARClassifier
from repro.baselines.ml.inddp import INDDPClassifier
from repro.baselines.ml.linear import WideLogisticRegression
from repro.baselines.ml.wide_deep import WideDeepClassifier
from repro.baselines.structural import STRUCTURAL_SCORERS
from repro.datasets.temporal import GuaranteePanel, build_guarantee_panel
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.scoring import bsr_scores, bsrbk_scores
from repro.metrics.auc import roc_auc
from repro.utils.tables import render_table

__all__ = ["run", "main", "METHOD_ORDER"]

#: Row order of the paper's Table 3.
METHOD_ORDER: tuple[str, ...] = (
    "Wide",
    "Wide & Deep",
    "GBDT",
    "CNN-max",
    "crDNN",
    "INDDP",
    "HGAR",
    "Betweenness",
    "PageRank",
    "K-core",
    "InfMax",
    "BSRBK",
    "BSR",
)


def _feature_classifiers(
    panel: GuaranteePanel, seed: int
) -> list[BinaryClassifier]:
    """Instantiate the seven trainable baselines of Table 3."""
    return [
        WideLogisticRegression(),
        WideDeepClassifier(seed=seed),
        GradientBoostedTrees(),
        CNNMaxClassifier(seed=seed),
        CompetingRisksDNN(seed=seed),
        INDDPClassifier(panel.graph),
        HGARClassifier(panel.graph),
    ]


def run(
    config: ExperimentConfig | None = None,
    panel: GuaranteePanel | None = None,
    self_risk_scale: float = 0.75,
    k_percent: float = 10.0,
) -> list[dict[str, object]]:
    """Produce Table 3: one row per method, one AUC column per test year.

    Parameters
    ----------
    config:
        Experiment preset (panel size, seeds, bk, epsilon/delta).
    panel:
        Pre-built panel (tests inject small ones); default builds one from
        the config.
    self_risk_scale:
        Shrinkage applied to the risk model's probabilities before they
        become graph self-risks — observed default rates include contagion,
        self-risks must not.
    k_percent:
        The k (as % of |V|) that drives BSR/BSRBK pruning.
    """
    config = config or get_config()
    if panel is None:
        panel = build_guarantee_panel(
            num_nodes=config.panel_nodes,
            num_edges=config.panel_edges,
            seed=config.seed,
        )
    graph = panel.graph
    original_risks = graph.self_risk_array
    train = panel.train
    auc: dict[str, dict[int, float]] = {name: {} for name in METHOD_ORDER}

    # --- trainable feature/graph-feature baselines -----------------------
    classifiers = _feature_classifiers(panel, seed=config.seed)
    for classifier in classifiers:
        classifier.fit(train.features, train.labels.astype(np.float64))
    for year in panel.test_years:
        snapshot = panel.test(year)
        for classifier in classifiers:
            scores = classifier.predict_proba(snapshot.features)
            auc[classifier.name][year] = roc_auc(snapshot.labels, scores)

    # --- structural scorers (topology/probabilities fixed across years) --
    for name, scorer in STRUCTURAL_SCORERS.items():
        scores = scorer(graph, seed=config.seed)
        for year in panel.test_years:
            snapshot = panel.test(year)
            auc[name][year] = roc_auc(snapshot.labels, scores)

    # --- our detectors: risk model feeds the uncertain graph -------------
    risk_model = WideLogisticRegression().fit(
        train.features, train.labels.astype(np.float64)
    )
    k = max(1, round(graph.num_nodes * k_percent / 100.0))
    try:
        for year in panel.test_years:
            snapshot = panel.test(year)
            predicted = np.clip(
                risk_model.predict_proba(snapshot.features) * self_risk_scale,
                0.001,
                0.95,
            )
            graph.set_all_self_risks(predicted)
            bsr = bsr_scores(
                graph,
                k,
                epsilon=config.epsilon,
                delta=config.delta,
                bound_order=config.bound_order,
                seed=config.seed + year,
            )
            bsrbk = bsrbk_scores(
                graph,
                k,
                bk=config.bk,
                epsilon=config.epsilon,
                delta=config.delta,
                bound_order=config.bound_order,
                seed=config.seed + year,
            )
            auc["BSR"][year] = roc_auc(snapshot.labels, bsr)
            auc["BSRBK"][year] = roc_auc(snapshot.labels, bsrbk)
    finally:
        graph.set_all_self_risks(original_risks)

    rows: list[dict[str, object]] = []
    for name in METHOD_ORDER:
        row: dict[str, object] = {"method": name}
        for year in panel.test_years:
            row[f"AUC({year})"] = round(auc[name][year], 5)
        rows.append(row)
    return rows


def main() -> None:
    """CLI entry point: print the Table-3 reproduction."""
    rows = run()
    print(render_table(rows, title="Table 3 — default prediction AUC"))


if __name__ == "__main__":
    main()
