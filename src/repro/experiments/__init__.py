"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.config import PRESETS, ExperimentConfig, get_config
from repro.experiments.ground_truth import (
    GroundTruth,
    clear_ground_truth_cache,
    ground_truth_for,
)
from repro.experiments.reporting import ExperimentReport, ReportSection
from repro.experiments.scoring import bsr_scores, bsrbk_scores

__all__ = [
    "PRESETS",
    "ExperimentConfig",
    "get_config",
    "GroundTruth",
    "clear_ground_truth_cache",
    "ground_truth_for",
    "ExperimentReport",
    "ReportSection",
    "bsr_scores",
    "bsrbk_scores",
]
