"""Supplementary experiment: empirical validation of Theorem 4.

Not a numbered figure in the extended abstract, but the natural check a
reproduction owes the theory: as the sample budget grows, (a) the mean
absolute estimation error of the forward sampler must shrink like
``O(1/sqrt(t))``, and (b) the top-k precision at the Equation-(3) budget
must meet the (ε, δ) guarantee — the fraction of trials violating the
Definition-2 conditions must stay below δ.

Run with ``python -m repro.experiments.convergence``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.topk import top_k_indices
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.ground_truth import ground_truth_for
from repro.sampling.forward import ForwardSampler
from repro.sampling.sample_size import basic_sample_size
from repro.utils.tables import render_table

__all__ = ["error_curve", "guarantee_check", "run", "main"]

#: Sample budgets swept by the error curve.
BUDGETS: tuple[int, ...] = (50, 100, 200, 400, 800, 1600, 3200)


def error_curve(
    dataset: str = "citation",
    scale: float | None = None,
    seed: int = 7,
    truth_samples: int = 20_000,
) -> list[dict[str, object]]:
    """Mean absolute error of ``p̂(v)`` vs sample budget.

    The reference values come from a much larger independent run; the
    reported ``mae * sqrt(t)`` column should be roughly constant if the
    estimator converges at the Monte-Carlo rate.
    """
    loaded = load_dataset(dataset, scale=scale, seed=seed)
    truth = ground_truth_for(loaded, samples=truth_samples)
    rows: list[dict[str, object]] = []
    for budget in BUDGETS:
        estimate = ForwardSampler(loaded.graph, seed=seed + budget)
        probabilities = estimate.estimate_probabilities(budget)
        mae = float(np.mean(np.abs(probabilities - truth.probabilities)))
        rows.append(
            {
                "dataset": dataset,
                "samples": budget,
                "mae": round(mae, 5),
                "mae*sqrt(t)": round(mae * math.sqrt(budget), 4),
            }
        )
    return rows


def guarantee_check(
    dataset: str = "citation",
    scale: float | None = None,
    epsilon: float = 0.3,
    delta: float = 0.1,
    k_percent: float = 5.0,
    trials: int = 20,
    seed: int = 7,
    truth_samples: int = 20_000,
) -> dict[str, object]:
    """Empirical (ε, δ) check of Definition 2 at the Theorem-4 budget.

    Runs *trials* independent SN-style detections and counts violations:
    a trial violates when some returned node's true probability is below
    ``Pk - ε`` or some excluded node's is at least ``Pk + ε``.  The
    violation rate must not exceed δ (it is usually far below — the
    union bound is loose).
    """
    loaded = load_dataset(dataset, scale=scale, seed=seed)
    truth = ground_truth_for(loaded, samples=truth_samples)
    graph = loaded.graph
    n = graph.num_nodes
    k = loaded.k_for_percent(k_percent)
    budget = basic_sample_size(n, k, epsilon, delta)
    true_p = truth.probabilities
    kth_value = float(np.sort(true_p)[-k])
    violations = 0
    for trial in range(trials):
        sampler = ForwardSampler(graph, seed=seed * 1000 + trial)
        estimates = sampler.estimate_probabilities(budget)
        chosen = set(int(i) for i in top_k_indices(estimates, k))
        violated = any(
            true_p[i] < kth_value - epsilon for i in chosen
        ) or any(
            true_p[i] >= kth_value + epsilon
            for i in range(n)
            if i not in chosen
        )
        violations += bool(violated)
    return {
        "dataset": dataset,
        "k": k,
        "budget(Eq.3)": budget,
        "epsilon": epsilon,
        "delta": delta,
        "trials": trials,
        "violations": violations,
        "violation_rate": round(violations / trials, 3),
        "meets_guarantee": violations / trials <= delta,
    }


def run(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Error curve + guarantee check on the citation dataset."""
    config = config or get_config()
    rows = error_curve(
        "citation",
        scale=config.scale_override,
        seed=config.seed,
        truth_samples=max(config.ground_truth_samples, 5_000),
    )
    rows.append(
        guarantee_check(
            "citation",
            scale=config.scale_override,
            epsilon=config.epsilon,
            delta=config.delta,
            seed=config.seed,
            truth_samples=max(config.ground_truth_samples, 5_000),
        )
    )
    return rows


def main() -> None:
    """CLI entry point."""
    config = get_config()
    curve = error_curve("citation", scale=config.scale_override)
    print(render_table(curve, title="Estimator convergence (MAE vs budget)"))
    print()
    check = guarantee_check("citation", scale=config.scale_override)
    print(render_table([check], title="(epsilon, delta) guarantee check"))


if __name__ == "__main__":
    main()
