"""Persisting experiment output as markdown (EXPERIMENTS.md sections).

The runner collects every experiment's rows and renders one markdown
report so a fresh clone can regenerate the full paper-vs-measured record
with a single command.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.utils.tables import render_markdown_table, render_table

__all__ = ["ExperimentReport", "ReportSection"]


@dataclass
class ReportSection:
    """One experiment's output: a heading, commentary, and row data."""

    title: str
    rows: list[dict[str, object]]
    commentary: str = ""

    def to_markdown(self) -> str:
        """Render the section as markdown."""
        parts = [f"## {self.title}", ""]
        if self.commentary:
            parts.extend([self.commentary, ""])
        parts.append(render_markdown_table(self.rows))
        parts.append("")
        return "\n".join(parts)

    def to_text(self) -> str:
        """Render the section as an aligned terminal table."""
        prefix = f"{self.commentary}\n" if self.commentary else ""
        return prefix + render_table(self.rows, title=self.title)


@dataclass
class ExperimentReport:
    """A collection of sections destined for one markdown file."""

    heading: str
    preamble: str = ""
    sections: list[ReportSection] = field(default_factory=list)

    def add(self, section: ReportSection) -> None:
        """Append one section."""
        self.sections.append(section)

    def to_markdown(self) -> str:
        """Render the whole report."""
        parts = [f"# {self.heading}", ""]
        if self.preamble:
            parts.extend([self.preamble, ""])
        for section in self.sections:
            parts.append(section.to_markdown())
        return "\n".join(parts)

    def write(self, path: str | os.PathLike) -> None:
        """Write the markdown report to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown())
