"""Run every experiment and write the consolidated markdown report.

Usage::

    python -m repro.experiments.runner --preset quick --output results.md
    repro-experiments --preset default

Each experiment can also be run standalone via its own module
(``python -m repro.experiments.fig6_efficiency`` etc.); this runner exists
so "regenerate everything the paper reports" is one command.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig4_bk,
    fig5_bounds,
    fig6_efficiency,
    fig7_effectiveness,
    table2_datasets,
    table3_prediction,
)
from repro.experiments.config import PRESETS, get_config
from repro.experiments.reporting import ExperimentReport, ReportSection

__all__ = ["run_all", "main"]

_EXPERIMENTS = (
    ("Table 2 — dataset statistics (paper vs generated)", table2_datasets.run),
    ("Figure 4 — BSRBK precision vs bottom-k parameter", fig4_bk.run),
    ("Figure 5 — candidate size vs bound orders", fig5_bounds.run),
    ("Figure 6 — efficiency of N/SN/SR/BSR/BSRBK", fig6_efficiency.run),
    ("Figure 7 — precision vs Monte-Carlo ground truth", fig7_effectiveness.run),
    ("Table 3 — loan default prediction AUC", table3_prediction.run),
)


def run_all(preset: str = "quick", verbose: bool = True) -> ExperimentReport:
    """Execute every experiment under *preset* and collect the report."""
    config = get_config(preset)
    report = ExperimentReport(
        heading="Reproduction results",
        preamble=(
            f"Preset `{preset}` (seed={config.seed}, eps={config.epsilon}, "
            f"delta={config.delta}, ground truth={config.ground_truth_samples} "
            "worlds).  See EXPERIMENTS.md for the paper-vs-measured analysis."
        ),
    )
    for title, experiment in _EXPERIMENTS:
        started = time.perf_counter()
        rows = experiment(config)
        elapsed = time.perf_counter() - started
        section = ReportSection(
            title=title,
            rows=rows,
            commentary=f"_{len(rows)} rows, computed in {elapsed:.1f}s._",
        )
        report.add(section)
        if verbose:
            print(section.to_text())
            print()
    if preset == "quick" and verbose:
        extra = fig6_efficiency.speedup_summary(report.sections[3].rows)
        print(ReportSection(title="Speedup over N", rows=extra).to_text())
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="quick",
        help="fidelity/runtime trade-off (default: quick)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the consolidated markdown report to this path",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-experiment printing"
    )
    args = parser.parse_args(argv)
    report = run_all(preset=args.preset, verbose=not args.quiet)
    if args.output:
        report.write(args.output)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
