"""Experiment E-F7 — Figure 7: effectiveness (precision) of the methods.

For the four effectiveness datasets and every k in the grid, run all five
methods and report precision against the Monte-Carlo ground truth.
Shapes to reproduce: all methods within a few points of each other, N
marginally best (it spends the most samples), and Interbank at k = 1%
detected perfectly (the paper's |V|·1% = 1 special case).
"""

from __future__ import annotations

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.ground_truth import ground_truth_for
from repro.metrics.ranking import precision_at_k
from repro.utils.tables import render_table

__all__ = ["run", "main"]


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] | None = None,
    methods: tuple[str, ...] = ALL_METHODS,
) -> list[dict[str, object]]:
    """Produce Figure 7's series: one row per (dataset, method, k%)."""
    config = config or get_config()
    datasets = datasets or config.effectiveness_datasets
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:
        loaded = load_dataset(
            dataset_name, scale=config.scale_override, seed=config.seed
        )
        truth = ground_truth_for(loaded, config.ground_truth_samples)
        for percent in config.k_percents:
            k = loaded.k_for_percent(percent)
            truth_set = truth.top_k_labels(loaded.graph, k)
            for method in methods:
                detector = make_detector(
                    method,
                    samples=config.naive_samples,
                    epsilon=config.epsilon,
                    delta=config.delta,
                    bound_order=config.bound_order,
                    lower_order=config.bound_order,
                    upper_order=config.bound_order,
                    bk=config.bk,
                    seed=config.seed,
                )
                result = detector.detect(loaded.graph, k)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "method": method,
                        "k_percent": percent,
                        "k": k,
                        "precision": round(
                            precision_at_k(result.nodes, truth_set), 4
                        ),
                        "samples": result.samples_used,
                    }
                )
    return rows


def main() -> None:
    """CLI entry point: print the Figure-7 table."""
    rows = run()
    print(render_table(rows, title="Figure 7 — precision vs ground truth"))


if __name__ == "__main__":
    main()
