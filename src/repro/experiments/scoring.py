"""Full-graph vulnerability score vectors for the Table-3 case study.

The detectors of :mod:`repro.algorithms` return top-k *sets*; the
default-prediction case study needs a *score for every node* so an AUC
can be computed.  This module reruns the BSR / BSRBK machinery and pieces
together a complete score vector:

* pruned nodes keep their Algorithm-2 lower bound (the information the
  pruning decision was based on);
* candidate nodes get their reverse-sampling estimate — full-budget
  frequencies for BSR, bottom-k early-stop estimates for BSRBK (noisier,
  which is why BSR edges out BSRBK in Table 3);
* verified nodes take the maximum of bound and estimate, preserving their
  certified rank.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import bound_pair
from repro.core.errors import ExperimentError
from repro.core.graph import UncertainGraph
from repro.sampling.reverse import ReverseSampler
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.sample_size import reduced_sample_size
from repro.sketch.bottom_k import BottomKStopper

__all__ = ["bsr_scores", "bsrbk_scores"]


def _prepare(
    graph: UncertainGraph, k: int, bound_order: int
) -> tuple[np.ndarray, np.ndarray, object]:
    lower, upper = bound_pair(graph, bound_order, bound_order)
    reduction = reduce_candidates(graph, lower, upper, k)
    return lower, upper, reduction


def bsr_scores(
    graph: UncertainGraph,
    k: int,
    epsilon: float = 0.3,
    delta: float = 0.1,
    bound_order: int = 2,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Full-node score vector using the BSR pipeline.

    Parameters
    ----------
    graph:
        Uncertain graph with calibrated probabilities.
    k:
        Answer size driving the pruning (e.g. 10% of |V|).
    epsilon, delta, bound_order, seed:
        BSR configuration.
    """
    if not 1 <= k <= graph.num_nodes:
        raise ExperimentError(f"k must be in [1, {graph.num_nodes}], got {k}")
    lower, _, reduction = _prepare(graph, k, bound_order)
    scores = lower.astype(np.float64).copy()
    if reduction.k_remaining > 0 and reduction.candidate_size > 0:
        samples = reduced_sample_size(
            reduction.candidate_size, k, reduction.k_verified, epsilon, delta
        )
        sampler = ReverseSampler(graph, reduction.candidates, seed=seed)
        estimates = sampler.run(samples).probabilities
        scores[reduction.candidates] = estimates
    scores[reduction.verified] = np.maximum(
        scores[reduction.verified], lower[reduction.verified]
    )
    return scores


def bsrbk_scores(
    graph: UncertainGraph,
    k: int,
    bk: int = 16,
    epsilon: float = 0.3,
    delta: float = 0.1,
    bound_order: int = 2,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Full-node score vector using the BSRBK pipeline (early stop)."""
    if not 1 <= k <= graph.num_nodes:
        raise ExperimentError(f"k must be in [1, {graph.num_nodes}], got {k}")
    rng = make_rng(seed)
    lower, _, reduction = _prepare(graph, k, bound_order)
    scores = lower.astype(np.float64).copy()
    if reduction.k_remaining > 0 and reduction.candidate_size > 0:
        budget = reduced_sample_size(
            reduction.candidate_size, k, reduction.k_verified, epsilon, delta
        )
        hashes = np.sort(rng.random(budget))
        stopper = BottomKStopper(
            num_candidates=reduction.candidate_size,
            bk=bk,
            total_samples=budget,
            stop_after=reduction.k_remaining,
        )
        sampler = ReverseSampler(graph, reduction.candidates, seed=rng)
        for sample_hash, outcome in zip(hashes, sampler.iter_samples(budget)):
            stopper.offer(float(sample_hash), outcome)
            if stopper.should_stop:
                break
        scores[reduction.candidates] = np.clip(stopper.estimates(), 0.0, 1.0)
    scores[reduction.verified] = np.maximum(
        scores[reduction.verified], lower[reduction.verified]
    )
    return scores
