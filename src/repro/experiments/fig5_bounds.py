"""Experiment E-F5 — Figure 5: tuning the order of the bounds.

For each of the four datasets and every (lower order, upper order) pair in
{1..5}², run Algorithm 4 at k = 5%·|V| and report the candidate-set size —
the quantity the paper's heatmaps visualise.  Shape to reproduce: the
candidate count drops sharply from order 1 to 2, then plateaus.
"""

from __future__ import annotations

from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import lower_bounds, upper_bounds
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.fig4_bk import FIG4_DATASETS
from repro.utils.tables import render_table

__all__ = ["ORDER_GRID", "run", "main"]

#: Bound orders swept on each axis of the Figure 5 heatmaps.
ORDER_GRID: tuple[int, ...] = (1, 2, 3, 4, 5)


def run(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Produce Figure 5's heatmap cells, one row per (dataset, zl, zu)."""
    config = config or get_config()
    rows: list[dict[str, object]] = []
    for dataset_name in FIG4_DATASETS:
        loaded = load_dataset(
            dataset_name, scale=config.scale_override, seed=config.seed
        )
        k = loaded.k_for_percent(5.0)
        # Precompute bound vectors once per order; pairs reuse them.
        lowers = {z: lower_bounds(loaded.graph, z) for z in ORDER_GRID}
        uppers = {z: upper_bounds(loaded.graph, z) for z in ORDER_GRID}
        for lower_order in ORDER_GRID:
            for upper_order in ORDER_GRID:
                reduction = reduce_candidates(
                    loaded.graph, lowers[lower_order], uppers[upper_order], k
                )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "lower_order": lower_order,
                        "upper_order": upper_order,
                        "k": k,
                        "candidates": reduction.candidate_size,
                        "verified": reduction.k_verified,
                    }
                )
    return rows


def main() -> None:
    """CLI entry point: print the Figure-5 table."""
    rows = run()
    print(render_table(rows, title="Figure 5 — candidate size vs bound orders"))


if __name__ == "__main__":
    main()
