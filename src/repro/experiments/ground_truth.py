"""Ground-truth rankings for the effectiveness experiments.

The paper: "For the ground truth, we use 20000 sampled possible worlds to
obtain the results."  This module computes exactly that (with the sample
count configurable), caches it per dataset within a process so Figures 4
and 7 do not recompute it for every method, and exposes the derived
top-k answer sets precision is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.topk import top_k_indices
from repro.datasets.registry import LoadedDataset
from repro.sampling.forward import ForwardSampler

__all__ = ["GroundTruth", "ground_truth_for", "clear_ground_truth_cache"]


@dataclass(frozen=True)
class GroundTruth:
    """Monte-Carlo ground truth for one dataset instance.

    Attributes
    ----------
    probabilities:
        Estimated ``p(v)`` per internal node index.
    samples:
        Number of possible worlds used.
    """

    probabilities: np.ndarray
    samples: int

    def top_k_labels(self, graph: UncertainGraph, k: int) -> frozenset:
        """The ground-truth top-k answer set (labels)."""
        indices = top_k_indices(self.probabilities, k)
        return frozenset(graph.label(int(i)) for i in indices)


_CACHE: dict[tuple, GroundTruth] = {}


def clear_ground_truth_cache() -> None:
    """Drop all cached ground truths (tests use this)."""
    _CACHE.clear()


def ground_truth_for(
    loaded: LoadedDataset, samples: int, seed: int = 990_001
) -> GroundTruth:
    """Ground truth of a loaded dataset, cached per (dataset, settings).

    The cache key includes the dataset identity (name, scale, build seed)
    and the ground-truth settings, so distinct configurations never
    collide.
    """
    key = (loaded.name, loaded.scale, loaded.seed, samples, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    sampler = ForwardSampler(loaded.graph, seed=seed)
    estimate = sampler.run(samples)
    truth = GroundTruth(probabilities=estimate.probabilities, samples=samples)
    _CACHE[key] = truth
    return truth
