"""Ground-truth rankings for the effectiveness experiments.

The paper: "For the ground truth, we use 20000 sampled possible worlds to
obtain the results."  This module computes exactly that (with the sample
count configurable) and exposes the derived top-k answer sets precision
is measured against.

Worlds are materialised in bounded chunks — ``(chunk, n)`` self-default
and ``(chunk, m)`` edge-survival draws resolved by the shared
multi-world propagation engine
(:func:`repro.core.propagation.propagate_defaults_block`) — so huge
sample counts stream instead of allocating one giant batch.  Results are
cached twice over:

* **in process**, keyed by the dataset identity and every sampling
  setting, so Figures 4 and 7 never recompute a truth within one run;
* optionally **on disk** (``cache_dir=`` or the
  ``REPRO_GROUND_TRUTH_CACHE`` environment variable): each truth is one
  ``.npz`` keyed by the same tuple, so repeated experiment runs skip the
  20k-world resampling entirely.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.propagation import propagate_defaults_block
from repro.core.topk import top_k_indices
from repro.datasets.registry import LoadedDataset
from repro.sampling.rng import make_rng

__all__ = [
    "GroundTruth",
    "ground_truth_for",
    "clear_ground_truth_cache",
    "DEFAULT_CHUNK_SIZE",
]

#: Worlds materialised per sampling chunk; bounds memory at
#: ``chunk * (n + m)`` booleans regardless of the total sample count.
DEFAULT_CHUNK_SIZE = 512

#: Environment variable naming a default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_GROUND_TRUTH_CACHE"


@dataclass(frozen=True)
class GroundTruth:
    """Monte-Carlo ground truth for one dataset instance.

    Attributes
    ----------
    probabilities:
        Estimated ``p(v)`` per internal node index.
    samples:
        Number of possible worlds used.
    """

    probabilities: np.ndarray
    samples: int

    def top_k_labels(self, graph: UncertainGraph, k: int) -> frozenset:
        """The ground-truth top-k answer set (labels)."""
        indices = top_k_indices(self.probabilities, k)
        return frozenset(graph.label(int(i)) for i in indices)


_CACHE: dict[tuple, GroundTruth] = {}


def clear_ground_truth_cache() -> None:
    """Drop all in-process cached ground truths (tests use this)."""
    _CACHE.clear()


def _sample_probabilities(
    graph: UncertainGraph, samples: int, seed: int, chunk_size: int
) -> np.ndarray:
    """Estimate ``p(v)`` from *samples* worlds, streamed in chunks.

    Each chunk draws its node and edge realisations in canonical order
    and resolves contagion with the shared block propagation engine.
    The chunking changes only memory use and the RNG's block structure;
    for a fixed ``(seed, chunk_size)`` the estimate is deterministic.
    """
    rng = make_rng(seed)
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    n, m = graph.num_nodes, graph.num_edges
    counts = np.zeros(n, dtype=np.int64)
    remaining = int(samples)
    while remaining > 0:
        chunk = min(chunk_size, remaining)
        self_default = rng.random((chunk, n)) <= ps
        edge_survives = rng.random((chunk, m)) <= pe
        defaulted = propagate_defaults_block(graph, self_default, edge_survives)
        counts += defaulted.sum(axis=0)
        remaining -= chunk
    return counts / float(samples)


def _disk_cache_path(cache_dir: Path, key: tuple) -> Path:
    """Stable, filesystem-safe path for one ground-truth key."""
    digest = hashlib.sha256(repr(key).encode()).hexdigest()[:16]
    name, scale, build_seed, samples, seed, chunk_size = key
    stem = f"gt_{name}_x{scale}_b{build_seed}_t{samples}_s{seed}_c{chunk_size}"
    safe = "".join(c if c.isalnum() or c in "._-" else "-" for c in stem)
    return cache_dir / f"{safe}_{digest}.npz"


def _load_from_disk(path: Path, samples: int) -> GroundTruth | None:
    """Read one cached truth; ``None`` on any mismatch or corruption."""
    try:
        with np.load(path) as data:
            probabilities = np.asarray(data["probabilities"], dtype=np.float64)
            stored_samples = int(data["samples"])
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None
    if stored_samples != samples:
        return None
    return GroundTruth(probabilities=probabilities, samples=stored_samples)


def ground_truth_for(
    loaded: LoadedDataset,
    samples: int,
    seed: int = 990_001,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache_dir: str | Path | None = None,
) -> GroundTruth:
    """Ground truth of a loaded dataset, cached per (dataset, settings).

    The cache key includes the dataset identity (name, scale, build seed)
    and every ground-truth setting — sample count, sampling seed, and
    chunk size (chunking shapes the random stream) — so distinct
    configurations never collide.

    Parameters
    ----------
    loaded:
        The dataset instance whose graph is sampled.
    samples:
        Number of possible worlds to draw.
    seed:
        Sampling seed (independent of the dataset build seed).
    chunk_size:
        Worlds materialised per chunk; bounds peak memory for huge
        sample counts.
    cache_dir:
        Directory for the on-disk cache.  Defaults to the
        ``REPRO_GROUND_TRUTH_CACHE`` environment variable; when neither
        is set, only the in-process cache is used.
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    key = (loaded.name, loaded.scale, loaded.seed, samples, seed, chunk_size)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    directory = cache_dir if cache_dir is not None else os.environ.get(CACHE_DIR_ENV)
    path: Path | None = None
    if directory:
        path = _disk_cache_path(Path(directory), key)
        truth = _load_from_disk(path, samples)
        if truth is not None:
            _CACHE[key] = truth
            return truth
    probabilities = _sample_probabilities(
        loaded.graph, samples, seed, chunk_size
    )
    truth = GroundTruth(probabilities=probabilities, samples=int(samples))
    if path is not None:
        # Write-then-rename so an interrupted run never leaves a
        # truncated archive at the keyed path for later runs to trip on.
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_suffix(f".tmp{os.getpid()}.npz")
        try:
            np.savez_compressed(
                scratch, probabilities=truth.probabilities, samples=truth.samples
            )
            os.replace(scratch, path)
        finally:
            scratch.unlink(missing_ok=True)
    _CACHE[key] = truth
    return truth
