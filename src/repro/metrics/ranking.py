"""Ranking-quality metrics used by the effectiveness experiments.

The paper's Figures 4 and 7 report *precision*: the fraction of the
returned top-k set that belongs to the ground-truth top-k set.  This
module also provides recall@k (identical to precision@k when both sets
have size k, kept separate for clarity when sizes differ), Kendall-tau
rank agreement, and mean absolute estimation error — the extra metrics the
library's own ablation benches report.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import ExperimentError

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "jaccard",
    "kendall_tau",
    "mean_absolute_error",
]


def precision_at_k(returned: Iterable, truth: Iterable) -> float:
    """|returned ∩ truth| / |returned| — the paper's precision.

    Raises
    ------
    ExperimentError
        If *returned* is empty.
    """
    returned_set = set(returned)
    truth_set = set(truth)
    if not returned_set:
        raise ExperimentError("returned set is empty; precision undefined")
    return len(returned_set & truth_set) / len(returned_set)


def recall_at_k(returned: Iterable, truth: Iterable) -> float:
    """|returned ∩ truth| / |truth|."""
    returned_set = set(returned)
    truth_set = set(truth)
    if not truth_set:
        raise ExperimentError("truth set is empty; recall undefined")
    return len(returned_set & truth_set) / len(truth_set)


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity of two answer sets."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        raise ExperimentError("both sets empty; Jaccard undefined")
    return len(set_a & set_b) / len(union)


def kendall_tau(order_a: Sequence, order_b: Sequence) -> float:
    """Kendall tau-a between two rankings of the same item set.

    Items must coincide; returns a value in ``[-1, 1]`` where 1 means the
    orders agree on every pair.
    """
    if set(order_a) != set(order_b):
        raise ExperimentError("rankings must contain the same items")
    n = len(order_a)
    if n < 2:
        return 1.0
    position_b = {item: i for i, item in enumerate(order_b)}
    mapped = [position_b[item] for item in order_a]
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if mapped[i] < mapped[j]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def mean_absolute_error(
    estimates: Sequence[float] | np.ndarray,
    truth: Sequence[float] | np.ndarray,
) -> float:
    """Mean |estimate - truth| over aligned probability vectors."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.shape != truth.shape:
        raise ExperimentError(
            f"shape mismatch: {estimates.shape} vs {truth.shape}"
        )
    if estimates.size == 0:
        raise ExperimentError("empty vectors; MAE undefined")
    return float(np.mean(np.abs(estimates - truth)))
