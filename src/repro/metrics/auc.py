"""AUC (area under the ROC curve) for the Table-3 case study.

Implemented as the Mann–Whitney U statistic: the probability that a
randomly chosen positive example is scored above a randomly chosen
negative one, with the standard 1/2 credit for score ties.  Pure numpy,
no sklearn dependency.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ExperimentError

__all__ = ["roc_auc", "roc_curve"]


def roc_auc(labels, scores) -> float:
    """AUC of *scores* against binary *labels* (1 = positive/default).

    Raises
    ------
    ExperimentError
        If either class is absent (AUC undefined).
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ExperimentError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    positives = labels == 1
    n_pos = int(positives.sum())
    n_neg = int(labels.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ExperimentError(
            f"AUC needs both classes; got {n_pos} positives, {n_neg} negatives"
        )
    # Midranks handle ties: rank-sum of positives gives the U statistic.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0  # midrank, 1-based
        i = j + 1
    rank_sum_pos = float(ranks[positives].sum())
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)


def roc_curve(labels, scores, thresholds: int = 101):
    """(false-positive-rate, true-positive-rate) arrays over a threshold grid.

    Intended for plotting / example scripts; AUC itself uses the exact
    rank formulation in :func:`roc_auc`.
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ExperimentError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    grid = np.linspace(scores.max(), scores.min(), thresholds)
    positives = labels == 1
    n_pos = positives.sum()
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ExperimentError("ROC curve needs both classes")
    tpr = np.empty(thresholds)
    fpr = np.empty(thresholds)
    for i, threshold in enumerate(grid):
        predicted = scores >= threshold
        tpr[i] = (predicted & positives).sum() / n_pos
        fpr[i] = (predicted & ~positives).sum() / n_neg
    return fpr, tpr
