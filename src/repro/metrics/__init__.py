"""Evaluation metrics: precision@k, AUC, rank agreement."""

from repro.metrics.auc import roc_auc, roc_curve
from repro.metrics.ranking import (
    jaccard,
    kendall_tau,
    mean_absolute_error,
    precision_at_k,
    recall_at_k,
)

__all__ = [
    "roc_auc",
    "roc_curve",
    "jaccard",
    "kendall_tau",
    "mean_absolute_error",
    "precision_at_k",
    "recall_at_k",
]
