"""Crawl frontier: crawled/observed bookkeeping over a hidden graph.

The visibility model, chosen to match budgeted-discovery studies of
hidden networks (Avrachenkov et al.'s hub-detection setting, adapted to
directed uncertain graphs):

* A node is **observed** once it is a seed or appears as an endpoint of
  a revealed edge.  Observation reveals the node's identity and its
  true self-risk ``ps(v)`` (the attribute travels with discovery).
* **Crawling** an observed node reveals *all* of its incident edges —
  in- and out- — with their true diffusion probabilities, and thereby
  observes every neighbour.  An edge is revealed exactly when its first
  endpoint is crawled; budget is spent per crawl, never per edge.

Everything is deterministic given the crawl order: newly revealed
entities come back in hidden-graph edge-id order, so two sessions that
crawl the same targets emit byte-identical event streams — the property
the replay/oracle tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import NodeLabel, UncertainGraph

__all__ = ["CrawlFrontier", "CrawlStep"]


@dataclass(frozen=True)
class CrawlStep:
    """Everything one crawl newly revealed.

    Attributes
    ----------
    target:
        The crawled node's label.
    new_nodes:
        ``(label, self_risk)`` pairs newly observed by this crawl, in
        revelation order (scanning the target's incident edges by
        hidden edge id).
    new_edges:
        ``(src_label, dst_label, probability)`` triples newly revealed,
        in hidden edge-id order.
    """

    target: NodeLabel
    new_nodes: tuple[tuple[NodeLabel, float], ...]
    new_edges: tuple[tuple[NodeLabel, NodeLabel, float], ...]


class CrawlFrontier:
    """Track crawled/observed sets over a hidden ground-truth graph.

    Parameters
    ----------
    hidden:
        The ground-truth graph.  The frontier only ever *reads* it; the
        observed subgraph is materialised elsewhere (see
        :class:`~repro.crawling.session.ObservedGraphSession`).
    seeds:
        Initially observed node labels (budget-free).  Must be known to
        the hidden graph and non-empty — a crawl has to start somewhere.
    """

    def __init__(
        self, hidden: UncertainGraph, seeds: list[NodeLabel]
    ) -> None:
        if not seeds:
            raise GraphError("crawl frontier needs at least one seed")
        self._hidden = hidden
        src, dst, probs = hidden.edge_array
        self._src, self._dst, self._probs = src, dst, probs
        n, m = hidden.num_nodes, hidden.num_edges
        # Incidence CSR (undirected view over the directed edges): for
        # node v, the hidden edge ids touching v in ascending order.
        endpoint = np.concatenate([src, dst])
        edge_id = np.concatenate(
            [np.arange(m, dtype=np.int64)] * 2
        )
        order = np.lexsort((edge_id, endpoint))
        self._incident_ids = edge_id[order]
        self._incident_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(endpoint, minlength=n), out=self._incident_ptr[1:]
        )
        self._risks = hidden.self_risk_array
        self._observed = np.zeros(n, dtype=bool)
        self._crawled = np.zeros(n, dtype=bool)
        self._edge_seen = np.zeros(m, dtype=bool)
        self._observed_degree = np.zeros(n, dtype=np.int64)
        # Insertion-ordered observation log (determinism anchor).
        self._observed_order: list[int] = []
        self._crawl_order: list[int] = []
        for label in seeds:
            index = hidden.index(label)
            if not self._observed[index]:
                self._observed[index] = True
                self._observed_order.append(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hidden(self) -> UncertainGraph:
        """The ground-truth graph being discovered."""
        return self._hidden

    @property
    def num_observed(self) -> int:
        """Observed node count (crawled or discovered)."""
        return len(self._observed_order)

    @property
    def num_crawled(self) -> int:
        """Crawl budget spent so far."""
        return len(self._crawl_order)

    @property
    def num_observed_edges(self) -> int:
        """Edges revealed so far."""
        return int(self._edge_seen.sum())

    def observed_labels(self) -> list[NodeLabel]:
        """Observed node labels in observation order."""
        return [self._hidden.label(i) for i in self._observed_order]

    def crawled_labels(self) -> list[NodeLabel]:
        """Crawled node labels in crawl order."""
        return [self._hidden.label(i) for i in self._crawl_order]

    def uncrawled_observed(self) -> list[NodeLabel]:
        """Crawlable targets (observed, not yet crawled), observation
        order — the deterministic tie-break every strategy shares."""
        return [
            self._hidden.label(i)
            for i in self._observed_order
            if not self._crawled[i]
        ]

    def observed_degree(self, label: NodeLabel) -> int:
        """How many *revealed* edges touch *label* so far.

        This is the crawler's-eye degree — the quantity observed-degree
        strategies rank by — not the hidden true degree.
        """
        return int(self._observed_degree[self._hidden.index(label)])

    def self_risk(self, label: NodeLabel) -> float:
        """The (revealed-at-observation) true self-risk of *label*."""
        index = self._hidden.index(label)
        if not self._observed[index]:
            raise GraphError(f"node {label!r} is not observed yet")
        return float(self._risks[index])

    def is_exhausted(self) -> bool:
        """Whether no crawlable target remains."""
        return bool((self._crawled | ~self._observed).all())

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def crawl(self, label: NodeLabel) -> CrawlStep:
        """Crawl *label*, revealing its incident edges; returns the step.

        The target must be observed and not yet crawled — a crawler
        cannot query an entity it has never seen, and re-crawling burns
        budget for nothing (the model reveals everything on first
        visit), so both are errors rather than no-ops.
        """
        index = self._hidden.index(label)
        if not self._observed[index]:
            raise GraphError(f"cannot crawl unobserved node {label!r}")
        if self._crawled[index]:
            raise GraphError(f"node {label!r} is already crawled")
        self._crawled[index] = True
        self._crawl_order.append(index)
        start, stop = (
            self._incident_ptr[index],
            self._incident_ptr[index + 1],
        )
        incident = self._incident_ids[start:stop]
        fresh = incident[~self._edge_seen[incident]]
        fresh = np.unique(fresh)  # ascending edge ids; determinism
        self._edge_seen[fresh] = True
        new_nodes: list[tuple[NodeLabel, float]] = []
        new_edges: list[tuple[NodeLabel, NodeLabel, float]] = []
        for edge in fresh.tolist():
            endpoints = (int(self._src[edge]), int(self._dst[edge]))
            for node in endpoints:
                if not self._observed[node]:
                    self._observed[node] = True
                    self._observed_order.append(node)
                    new_nodes.append(
                        (self._hidden.label(node), float(self._risks[node]))
                    )
                self._observed_degree[node] += 1
            new_edges.append(
                (
                    self._hidden.label(endpoints[0]),
                    self._hidden.label(endpoints[1]),
                    float(self._probs[edge]),
                )
            )
        return CrawlStep(
            target=label,
            new_nodes=tuple(new_nodes),
            new_edges=tuple(new_edges),
        )
