"""Observed-graph crawl sessions: discovery as a topology-event stream.

An :class:`ObservedGraphSession` drives one crawl strategy against one
:class:`~repro.crawling.frontier.CrawlFrontier` and renders every crawl
step as a batch of :class:`~repro.streaming.events.NodeAdd` /
:class:`~repro.streaming.events.EdgeAdd` events — the streaming layer's
ordinary vocabulary.  That single design decision buys the whole stack
at once: a :class:`~repro.streaming.monitor.TopKMonitor` ingests the
batches incrementally (crawl-while-monitoring), the persistence codec
WALs them (a crash mid-crawl replays to the same observed graph), and
the coalescer passes them through untouched (adds never collapse).

Every event is provenance-stamped ``source="crawl:<strategy>/<step>"``
(seeds: ``"crawl:seed"``) with ``confidence=1.0`` — crawling reveals
*true* values in this model; noisy-observation sources can lower the
confidence without any schema change.

The session also maintains its own materialised observed subgraph by
applying each batch as it is emitted — strategies rank against it, and
it is byte-for-byte the graph any consumer replaying the same batches
would build (the oracle tests rebuild it independently and compare).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.graph import NodeLabel, UncertainGraph
from repro.crawling.frontier import CrawlFrontier
from repro.crawling.strategies import CrawlStrategy, resolve_strategy
from repro.sampling.rng import SeedLike
from repro.streaming.events import (
    EdgeAdd,
    NodeAdd,
    UpdateEvent,
    apply_events,
)

__all__ = ["CrawlBatch", "ObservedGraphSession"]


@dataclass(frozen=True)
class CrawlBatch:
    """One emitted step: who was crawled and the events it produced.

    ``step`` is -1 for the bootstrap batch (seed observation, no budget
    spent, ``target`` is ``None``), 0-based for budgeted crawls.
    """

    step: int
    target: NodeLabel | None
    events: tuple[UpdateEvent, ...]


class ObservedGraphSession:
    """Budgeted discovery of a hidden graph as a topology-event stream.

    Parameters
    ----------
    hidden:
        Ground-truth graph (read-only here).
    seeds:
        Initially observed labels; emitted as the bootstrap batch.
    strategy:
        Name from ``CRAWL_STRATEGIES`` or a strategy instance.
    budget:
        Crawl-step budget; ``None`` means crawl until exhaustion.
    seed:
        RNG seed for stochastic strategies — (strategy, seed) fully
        determines the event stream.
    """

    def __init__(
        self,
        hidden: UncertainGraph,
        seeds: list[NodeLabel],
        *,
        strategy: str | CrawlStrategy = "random",
        budget: int | None = None,
        seed: SeedLike = 0,
    ) -> None:
        self._frontier = CrawlFrontier(hidden, seeds)
        self._strategy = resolve_strategy(strategy)
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._budget = budget
        self._rng = np.random.default_rng(seed)
        self._observed = UncertainGraph()
        self._steps = 0
        bootstrap = tuple(
            NodeAdd(
                label,
                self._frontier.self_risk(label),
                source="crawl:seed",
                confidence=1.0,
            )
            for label in self._frontier.observed_labels()
        )
        apply_events(self._observed, bootstrap)
        self._bootstrap = CrawlBatch(step=-1, target=None, events=bootstrap)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def frontier(self) -> CrawlFrontier:
        """The underlying crawled/observed bookkeeping."""
        return self._frontier

    @property
    def observed_graph(self) -> UncertainGraph:
        """The materialised observed subgraph (live; do not mutate)."""
        return self._observed

    @property
    def rng(self) -> np.random.Generator:
        """The session RNG strategies draw from."""
        return self._rng

    @property
    def strategy_name(self) -> str:
        """The active strategy's registered name."""
        return self._strategy.name

    @property
    def budget(self) -> int | None:
        """Total crawl-step budget (``None`` = unbounded)."""
        return self._budget

    @property
    def steps_taken(self) -> int:
        """Budgeted crawl steps emitted so far."""
        return self._steps

    @property
    def bootstrap(self) -> CrawlBatch:
        """The seed-observation batch (step -1)."""
        return self._bootstrap

    def budget_left(self) -> bool:
        """Whether another crawl step may be taken."""
        if self._frontier.is_exhausted():
            return False
        return self._budget is None or self._steps < self._budget

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def step(self) -> CrawlBatch | None:
        """Crawl one node; returns its batch, or ``None`` when done.

        The batch orders ``NodeAdd`` before ``EdgeAdd`` so it validates
        as a unit: every edge's endpoints exist by the time the edge
        applies, which is what lets consumers apply a whole step
        transactionally.
        """
        if not self.budget_left():
            return None
        target = self._strategy.select(self)
        crawl = self._frontier.crawl(target)
        source = f"crawl:{self._strategy.name}/{self._steps}"
        events: list[UpdateEvent] = [
            NodeAdd(label, risk, source=source, confidence=1.0)
            for label, risk in crawl.new_nodes
        ]
        events.extend(
            EdgeAdd(src, dst, prob, source=source, confidence=1.0)
            for src, dst, prob in crawl.new_edges
        )
        batch = CrawlBatch(
            step=self._steps, target=target, events=tuple(events)
        )
        apply_events(self._observed, batch.events)
        self._steps += 1
        return batch

    def run(self) -> Iterator[CrawlBatch]:
        """Yield the bootstrap batch, then crawl batches until done."""
        yield self._bootstrap
        while True:
            batch = self.step()
            if batch is None:
                return
            yield batch
