"""Partial-observation crawling over a hidden uncertain graph.

Real contagion networks are rarely fully known up front: monitoring
starts from a handful of seed entities and *discovers* topology by
spending a crawl budget.  This package models that regime over a hidden
ground-truth :class:`~repro.core.graph.UncertainGraph`:

* :class:`~repro.crawling.frontier.CrawlFrontier` — the bookkeeping
  core: which nodes are *crawled* (incident edges revealed), which are
  merely *observed* (discovered as an endpoint, true self-risk known),
  and what each crawl newly reveals.
* :mod:`~repro.crawling.strategies` — pluggable budget-spending
  policies: ``random``, ``degree`` (max observed degree),
  ``avrachenkov`` (two-stage hub detection: random warm-up, then top
  observed degree) and ``risk`` (highest current Eq-(1) upper bound on
  the observed subgraph).
* :class:`~repro.crawling.session.ObservedGraphSession` — drives a
  strategy against a frontier and emits every crawl step as a batch of
  provenance-stamped :class:`~repro.streaming.events.NodeAdd` /
  :class:`~repro.streaming.events.EdgeAdd` topology events — the same
  vocabulary the streaming monitor ingests incrementally and the WAL
  codec makes durable, so crawl-while-monitoring and replay-after-crash
  are the ordinary serving paths, not special cases.
"""

from repro.crawling.frontier import CrawlFrontier, CrawlStep
from repro.crawling.session import CrawlBatch, ObservedGraphSession
from repro.crawling.strategies import (
    CRAWL_STRATEGIES,
    AvrachenkovStrategy,
    CrawlStrategy,
    MaxObservedDegreeStrategy,
    RandomStrategy,
    RiskAwareStrategy,
    resolve_strategy,
)

__all__ = [
    "CRAWL_STRATEGIES",
    "AvrachenkovStrategy",
    "CrawlBatch",
    "CrawlFrontier",
    "CrawlStep",
    "CrawlStrategy",
    "MaxObservedDegreeStrategy",
    "ObservedGraphSession",
    "RandomStrategy",
    "RiskAwareStrategy",
    "resolve_strategy",
]
