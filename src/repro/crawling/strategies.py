"""Budget-spending crawl strategies.

A strategy picks the next crawl target from the frontier's crawlable
set.  All four are deterministic given the session's seeded RNG and the
frontier's observation order (ties break toward the earliest-observed
node), so a strategy name + seed fully determines the emitted event
stream.

``random``
    Uniform over the crawlable set — the baseline every other strategy
    must beat for its extra machinery to be worth anything (the CI gate
    holds ``avrachenkov`` to exactly that standard).
``degree``
    Greedy max observed degree: crawl the node the revealed subgraph
    already shows to be best connected.
``avrachenkov``
    Two-stage hub detection (Avrachenkov et al., "Quick Detection of
    High-degree Entities in Large Directed Networks"): spend the first
    ``n1`` crawls uniformly at random to seed degree observations, then
    go greedy on observed degree for the remainder.  ``n1`` defaults to
    half the session budget.
``risk``
    Risk-aware: rank crawlable nodes by their current Eq-(1) *upper*
    bound on the observed subgraph and crawl the highest.  The upper
    bound is exactly the quantity Algorithm 4 prunes with — an
    optimistic envelope of how vulnerable a node could still turn out
    to be — so budget flows toward nodes that could still matter to the
    top-k, not toward well-understood ones.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.iterative import bound_pair
from repro.core.errors import GraphError
from repro.core.graph import NodeLabel

__all__ = [
    "CRAWL_STRATEGIES",
    "AvrachenkovStrategy",
    "CrawlStrategy",
    "MaxObservedDegreeStrategy",
    "RandomStrategy",
    "RiskAwareStrategy",
    "resolve_strategy",
]


class CrawlStrategy:
    """Base crawl strategy: pick the next target for a session."""

    name = "abstract"

    def select(self, session) -> NodeLabel:
        """The next node to crawl; *session* is an
        :class:`~repro.crawling.session.ObservedGraphSession`."""
        raise NotImplementedError

    def _candidates(self, session) -> list[NodeLabel]:
        candidates = session.frontier.uncrawled_observed()
        if not candidates:
            raise GraphError("no crawlable node remains")
        return candidates


class RandomStrategy(CrawlStrategy):
    """Uniform over the crawlable set (the recall baseline)."""

    name = "random"

    def select(self, session) -> NodeLabel:
        candidates = self._candidates(session)
        return candidates[int(session.rng.integers(len(candidates)))]


class MaxObservedDegreeStrategy(CrawlStrategy):
    """Greedy on observed degree, earliest-observed tie-break."""

    name = "degree"

    def select(self, session) -> NodeLabel:
        candidates = self._candidates(session)
        frontier = session.frontier
        degrees = np.array(
            [frontier.observed_degree(label) for label in candidates]
        )
        return candidates[int(np.argmax(degrees))]


class AvrachenkovStrategy(CrawlStrategy):
    """Two-stage hub detection: ``n1`` random crawls, then greedy degree."""

    name = "avrachenkov"

    def __init__(self, n1: int | None = None) -> None:
        if n1 is not None and n1 < 0:
            raise GraphError(f"n1 must be >= 0, got {n1}")
        self._n1 = n1
        self._random = RandomStrategy()
        self._degree = MaxObservedDegreeStrategy()

    def select(self, session) -> NodeLabel:
        n1 = self._n1
        if n1 is None:
            budget = session.budget
            n1 = 0 if budget is None else budget // 2
        if session.steps_taken < n1:
            return self._random.select(session)
        return self._degree.select(session)


class RiskAwareStrategy(CrawlStrategy):
    """Crawl the highest Eq-(1) upper bound on the observed subgraph."""

    name = "risk"

    def __init__(self, lower_order: int = 2, upper_order: int = 2) -> None:
        self._lower_order = int(lower_order)
        self._upper_order = int(upper_order)

    def select(self, session) -> NodeLabel:
        candidates = self._candidates(session)
        observed = session.observed_graph
        _, upper = bound_pair(
            observed, self._lower_order, self._upper_order
        )
        scores = np.array(
            [upper[observed.index(label)] for label in candidates]
        )
        return candidates[int(np.argmax(scores))]


#: Registered strategy factories, keyed by CLI/bench name.
CRAWL_STRATEGIES = {
    "random": RandomStrategy,
    "degree": MaxObservedDegreeStrategy,
    "avrachenkov": AvrachenkovStrategy,
    "risk": RiskAwareStrategy,
}


def resolve_strategy(strategy: str | CrawlStrategy) -> CrawlStrategy:
    """A strategy instance from a name or a ready-made instance."""
    if isinstance(strategy, CrawlStrategy):
        return strategy
    try:
        factory = CRAWL_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(CRAWL_STRATEGIES))
        raise GraphError(
            f"unknown crawl strategy {strategy!r} (known: {known})"
        ) from None
    return factory()
