"""Dataset registry: one call builds any Table-2 dataset at any scale.

``load_dataset("guarantee", scale=0.1, seed=7)`` returns the topology from
the matching generator with probabilities assigned per the paper's
protocol (uniform for benchmarks, feature-driven for financial networks),
plus the synthetic features when the financial model produced them.

For the public SNAP benchmarks, the *real* edge list is used whenever
the downloaded file is present (``scripts/download_datasets.py``; see
:mod:`repro.datasets.snap`), and the synthetic shape-matched generator
otherwise — :attr:`LoadedDataset.source` records which one a run got.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.datasets.benchmark import benchmark_graph
from repro.datasets.fraud import fraud_graph
from repro.datasets.guarantee import guarantee_graph
from repro.datasets.interbank import interbank_graph
from repro.datasets.probabilities import (
    NodeFeatures,
    assign_financial,
    assign_uniform,
)
from repro.datasets.snap import find_snap_file, load_snap_graph
from repro.datasets.specs import TABLE2_SPECS, DatasetSpec, spec_for
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["LoadedDataset", "load_dataset", "available_datasets", "table2_rows"]


@dataclass(frozen=True)
class LoadedDataset:
    """A generated dataset ready for experiments.

    Attributes
    ----------
    name:
        Dataset name (Table 2 row).
    graph:
        The uncertain graph with probabilities assigned.
    spec:
        The published statistics / generator binding.
    scale:
        Scale factor actually used.
    seed:
        Seed the build was derived from (for provenance in reports).
    features:
        Node features when the financial probability model was used,
        otherwise ``None``.
    source:
        ``"snap"`` when the topology came from a downloaded real edge
        list, ``"synthetic"`` when a generator stood in.
    """

    name: str
    graph: UncertainGraph
    spec: DatasetSpec
    scale: float
    seed: int | None
    features: NodeFeatures | None
    source: str = "synthetic"

    def k_for_percent(self, percent: float) -> int:
        """The paper's "k = X%|V|" convention, at least 1."""
        if percent <= 0:
            raise DatasetError(f"percent must be positive, got {percent}")
        return max(1, round(self.graph.num_nodes * percent / 100.0))


def available_datasets() -> list[str]:
    """Names of all registered datasets, in Table-2 order."""
    return [spec.name for spec in TABLE2_SPECS]


def load_dataset(
    name: str,
    scale: float | None = None,
    seed: SeedLike = 0,
) -> LoadedDataset:
    """Build the dataset *name* at *scale* (default: spec's default scale).

    The topology and the probability assignment consume independent
    streams of one seed, so the same seed yields the same dataset across
    runs and platforms — *given the same data directory contents*: when
    a real SNAP file is present (see :mod:`repro.datasets.snap`) the
    topology comes from it instead of the seeded generator, and
    :attr:`LoadedDataset.source` records which one a run got.  Set
    ``REPRO_DATA_DIR`` to an empty directory to force the synthetic
    generators (the test suite does exactly this).
    """
    spec = spec_for(name)
    scale = spec.default_scale if scale is None else float(scale)
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    rng = make_rng(seed)
    topology_rng, probability_rng = rng.spawn(2)
    n = spec.scaled_nodes(scale)
    m = spec.scaled_edges(scale)
    snap_path = find_snap_file(spec.name)
    source = "synthetic"
    if snap_path is not None:
        # Real SNAP topology; at sub-unit scale, a deterministic
        # degree-stratified node sample keeps the scaled row close to
        # the published degree statistics.
        graph = load_snap_graph(
            snap_path, max_nodes=n if scale != 1.0 else None
        )
        features = None
        source = "snap"
    elif spec.generator == "interbank":
        graph = interbank_graph(n=n, m=min(m, n * (n - 1) - 1), seed=topology_rng)
        features = None  # probabilities are built into the ME model
    elif spec.generator == "guarantee":
        graph = guarantee_graph(n, m, seed=topology_rng)
        features = None
    elif spec.generator == "fraud":
        graph = fraud_graph(n, m, seed=topology_rng)
        features = None
    else:
        graph = benchmark_graph(spec, scale, seed=topology_rng)
        features = None
    if spec.generator != "interbank":  # interbank assigns its own probabilities
        if spec.probability_model == "uniform":
            assign_uniform(graph, seed=probability_rng)
        elif spec.probability_model == "financial":
            features = assign_financial(graph, seed=probability_rng)
        else:
            raise DatasetError(
                f"unknown probability model {spec.probability_model!r}"
            )
    seed_value = seed if isinstance(seed, int) else None
    return LoadedDataset(
        name=spec.name,
        graph=graph,
        spec=spec,
        scale=scale,
        seed=seed_value,
        features=features,
        source=source,
    )


def table2_rows(
    scale: float | None = None, seed: SeedLike = 0
) -> list[dict[str, object]]:
    """Rows comparing published Table-2 statistics with generated graphs.

    One row per dataset with both the paper's numbers and the generated
    graph's measured statistics — the output of experiment E-T2.
    """
    rows: list[dict[str, object]] = []
    for spec in TABLE2_SPECS:
        loaded = load_dataset(spec.name, scale=scale, seed=seed)
        stats = loaded.graph.stats()
        rows.append(
            {
                "dataset": spec.name,
                "source": loaded.source,
                "scale": loaded.scale,
                "paper_nodes": spec.paper_nodes,
                "nodes": stats.num_nodes,
                "paper_edges": spec.paper_edges,
                "edges": stats.num_edges,
                "paper_avg_deg": spec.paper_avg_degree,
                "avg_deg": round(stats.avg_degree, 2),
                "paper_max_deg": spec.paper_max_degree,
                "max_deg": stats.max_degree,
            }
        )
    return rows
