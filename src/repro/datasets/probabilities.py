"""Probability assignment models for dataset graphs.

The paper's §4.1: "For Fraud and Guarantee datasets, the self-risk and
diffusion probability are obtained in our previous research [20, 15].
For the other datasets, the probability is randomly selected from [0, 1]."

Two models reproduce that setup offline:

* :func:`assign_uniform` — i.i.d. U[0,1] node and edge probabilities
  (public benchmarks).
* :func:`assign_financial` — a stand-in for the learned models of
  [10, 15]: synthetic node features (balance-sheet style) feed a logistic
  self-risk score, and edge probabilities are Beta-distributed exposure
  strengths.  The generated features are returned so the Table-3 case
  study can train prediction baselines against the *same* risk ground
  truth the graph encodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.sampling.rng import SeedLike, make_rng

__all__ = [
    "FEATURE_NAMES",
    "NodeFeatures",
    "assign_uniform",
    "assign_financial",
    "generate_features",
    "sigmoid",
]

#: Synthetic balance-sheet features used by the financial model.
FEATURE_NAMES: tuple[str, ...] = (
    "registered_capital",
    "debt_ratio",
    "profit_margin",
    "liquidity",
    "revenue_growth",
    "overdue_count",
    "sector_risk",
    "guarantee_exposure",
)

#: Ground-truth logistic weights mapping features to latent self-risk.
_TRUE_WEIGHTS = np.array([-0.8, 1.6, -1.2, -0.9, -0.5, 1.4, 0.9, 1.1])
_TRUE_BIAS = -1.1


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


@dataclass(frozen=True)
class NodeFeatures:
    """Feature matrix aligned with a graph's internal node indices.

    Attributes
    ----------
    matrix:
        ``(n, d)`` float64 feature matrix.
    names:
        Column names (length ``d``).
    latent_risk:
        The noise-free logistic risk score each row encodes — the ground
        truth the financial probability model is built from.  Kept so
        tests can verify the feature→risk pipeline, and hidden from the
        prediction baselines (they only see ``matrix``).
    """

    matrix: np.ndarray
    names: tuple[str, ...]
    latent_risk: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Rows of the feature matrix."""
        return int(self.matrix.shape[0])

    @property
    def num_features(self) -> int:
        """Columns of the feature matrix."""
        return int(self.matrix.shape[1])


def generate_features(n: int, seed: SeedLike = None) -> NodeFeatures:
    """Draw synthetic enterprise features with a known risk structure.

    Features are standard-normal-ish with realistic correlations (high
    debt ratio correlates with overdue counts, etc.); the latent risk is
    the logistic score under :data:`_TRUE_WEIGHTS`.
    """
    if n <= 0:
        raise DatasetError(f"n must be positive, got {n}")
    rng = make_rng(seed)
    d = len(FEATURE_NAMES)
    base = rng.normal(size=(n, d))
    # Correlate a few columns to make the learning task realistic.
    base[:, 5] = 0.6 * base[:, 1] + 0.8 * base[:, 5]  # overdue ~ debt
    base[:, 7] = 0.5 * base[:, 1] + 0.85 * base[:, 7]  # exposure ~ debt
    base[:, 3] = -0.4 * base[:, 1] + 0.9 * base[:, 3]  # liquidity ~ -debt
    latent = sigmoid(base @ _TRUE_WEIGHTS + _TRUE_BIAS)
    return NodeFeatures(matrix=base, names=FEATURE_NAMES, latent_risk=latent)


def assign_uniform(graph: UncertainGraph, seed: SeedLike = None) -> None:
    """U[0,1] self-risk and diffusion probabilities, in place (§4.1)."""
    rng = make_rng(seed)
    graph.set_all_self_risks(rng.random(graph.num_nodes))
    graph.set_all_edge_probabilities(rng.random(graph.num_edges))


def assign_financial(
    graph: UncertainGraph,
    seed: SeedLike = None,
    risk_scale: float = 0.5,
    noise: float = 0.05,
    edge_alpha: float = 2.0,
    edge_beta: float = 5.0,
) -> NodeFeatures:
    """Feature-driven probabilities, in place; returns the features.

    Self-risk is the latent logistic risk scaled by *risk_scale* plus
    truncation noise — mimicking a learned model's calibrated output
    ([10]'s HGAR / [15]'s p-wkNN role).  Edge probabilities are
    ``Beta(edge_alpha, edge_beta)`` exposure strengths, mildly boosted for
    edges whose source is risky (riskier borrowers transmit more).
    """
    rng = make_rng(seed)
    features = generate_features(graph.num_nodes, seed=rng)
    risks = np.clip(
        features.latent_risk * risk_scale + rng.normal(0.0, noise, graph.num_nodes),
        0.005,
        0.95,
    )
    graph.set_all_self_risks(risks)
    edge_src, _, _ = graph.edge_array
    base = rng.beta(edge_alpha, edge_beta, graph.num_edges)
    boost = 0.3 * risks[edge_src]
    graph.set_all_edge_probabilities(np.clip(base + boost, 0.01, 0.95))
    return features
