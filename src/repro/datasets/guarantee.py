"""Guaranteed-loan network generator.

The paper's Guarantee dataset (proprietary bank data) is a very sparse
network — average degree 1.15 — with an extreme hub (max degree 14 362):
a few professional guarantors back thousands of small enterprises, while
most firms sit in tiny mutual-guarantee circles.  This generator
reproduces that shape:

* a handful of *mega-guarantor* hubs each guaranteeing a large block of
  SMEs (edge SME -> guarantor means "guarantor guarantees SME"? —
  in the paper the edge from B to A means B guarantees A; contagion runs
  from borrower A to guarantor B.  We orient edges in contagion
  direction: borrower -> guarantor);
* many small guarantee circles of 2–8 firms (rings and mutual pairs),
  matching the "guarantee circle" phenomenon the introduction describes;
* a sprinkle of chain edges linking circles into short chains.

Edge counts are balanced so the realised average degree matches the spec.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["guarantee_edges", "guarantee_graph"]


def guarantee_edges(
    n: int,
    m: int,
    seed: SeedLike = None,
    hub_degree_fraction: float = 0.45,
    num_hubs: int = 3,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the edge lists of a hub-dominated guarantee network.

    Parameters
    ----------
    n, m:
        Node/edge targets; ``m`` close to ``n`` (avg degree ≈ 1.15).
    seed:
        Randomness control.
    hub_degree_fraction:
        Fraction of all edges attached to the mega-hubs (Table 2's
        max-degree/edges ratio is ≈ 0.4).
    num_hubs:
        Number of professional guarantor hubs.

    Returns
    -------
    tuple
        ``(src, dst)`` arrays; contagion direction borrower → guarantor.
    """
    if n < 20:
        raise DatasetError(f"guarantee generator needs n >= 20, got {n}")
    if m > n * (n - 1):
        raise DatasetError(f"cannot place {m} simple edges on {n} nodes")
    rng = make_rng(seed)
    seen: set[tuple[int, int]] = set()
    src_list: list[int] = []
    dst_list: list[int] = []

    def add(s: int, d: int) -> bool:
        if s == d or (s, d) in seen or len(src_list) >= m:
            return False
        seen.add((s, d))
        src_list.append(s)
        dst_list.append(d)
        return True

    hubs = list(range(num_hubs))
    hub_edges = int(m * hub_degree_fraction)
    # Hub 0 takes the lion's share (the 14 362-degree guarantor), the rest
    # split geometrically.
    shares = np.array([0.72, 0.19, 0.09][:num_hubs])
    shares = shares / shares.sum()
    for hub, share in zip(hubs, shares):
        quota = int(hub_edges * share)
        # The hub guarantees distinct SMEs: edge SME -> hub.
        smes = rng.choice(
            np.arange(num_hubs, n), size=min(quota, n - num_hubs), replace=False
        )
        for sme in smes.tolist():
            add(int(sme), hub)
    # Guarantee circles: partition part of the remaining nodes into rings.
    node = num_hubs
    while len(src_list) < m and node < n - 1:
        circle_size = int(rng.integers(2, 9))
        members = list(range(node, min(node + circle_size, n)))
        node += circle_size
        if len(members) < 2:
            break
        for i, member in enumerate(members):
            add(member, members[(i + 1) % len(members)])
    # Chain edges between random nodes fill any remaining budget.
    attempts = 0
    while len(src_list) < m and attempts < 50 * m:
        attempts += 1
        s = int(rng.integers(num_hubs, n))
        d = int(rng.integers(num_hubs, n))
        add(s, d)
    if len(src_list) < m:
        raise DatasetError(
            f"could not reach {m} edges (placed {len(src_list)}); "
            "lower the edge target or raise n"
        )
    return (
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
    )


def guarantee_graph(
    n: int,
    m: int,
    seed: SeedLike = None,
) -> UncertainGraph:
    """Guarantee network with placeholder probabilities.

    Self-risk and diffusion probabilities are assigned afterwards by
    :mod:`repro.datasets.probabilities` (the financial model); this
    function fills in neutral 0 / 1 placeholders.
    """
    rng = make_rng(seed)
    src, dst = guarantee_edges(n, m, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=np.zeros(n),
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.ones(src.size),
        labels=[f"sme_{i:05d}" for i in range(n)],
    )
