"""Synthetic dataset substrate mirroring the paper's Table 2 and §5.2."""

from repro.datasets.fraud import fraud_edges, fraud_graph
from repro.datasets.guarantee import guarantee_edges, guarantee_graph
from repro.datasets.interbank import (
    BalanceSheets,
    draw_balance_sheets,
    interbank_graph,
    ras_matrix,
)
from repro.datasets.powerlaw import (
    citation_edges,
    directed_powerlaw_edges,
    powerlaw_weights,
)
from repro.datasets.perturbation import perturb_probabilities, stress_self_risks
from repro.datasets.probabilities import (
    FEATURE_NAMES,
    NodeFeatures,
    assign_financial,
    assign_uniform,
    generate_features,
)
from repro.datasets.registry import (
    LoadedDataset,
    available_datasets,
    load_dataset,
    table2_rows,
)
from repro.datasets.snap import (
    SNAP_SOURCES,
    SnapParseReport,
    find_snap_file,
    load_snap_graph,
    parse_snap_edges,
    snap_data_dir,
)
from repro.datasets.specs import BENCHMARKS, FINANCIAL, TABLE2_SPECS, DatasetSpec, spec_for
from repro.datasets.temporal import GuaranteePanel, YearSnapshot, build_guarantee_panel

__all__ = [
    "fraud_edges",
    "fraud_graph",
    "guarantee_edges",
    "guarantee_graph",
    "BalanceSheets",
    "draw_balance_sheets",
    "interbank_graph",
    "ras_matrix",
    "citation_edges",
    "directed_powerlaw_edges",
    "powerlaw_weights",
    "perturb_probabilities",
    "stress_self_risks",
    "FEATURE_NAMES",
    "NodeFeatures",
    "assign_financial",
    "assign_uniform",
    "generate_features",
    "LoadedDataset",
    "available_datasets",
    "load_dataset",
    "table2_rows",
    "SNAP_SOURCES",
    "SnapParseReport",
    "find_snap_file",
    "load_snap_graph",
    "parse_snap_edges",
    "snap_data_dir",
    "BENCHMARKS",
    "FINANCIAL",
    "TABLE2_SPECS",
    "DatasetSpec",
    "spec_for",
    "GuaranteePanel",
    "YearSnapshot",
    "build_guarantee_panel",
]
