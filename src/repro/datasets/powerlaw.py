"""Chung–Lu style directed power-law topology generator.

Used to reproduce the *shape* (node count, edge count, degree skew) of the
public SNAP benchmarks in Table 2.  Nodes receive heavy-tailed expected
out-/in-degree weights; edges are drawn by sampling endpoints
proportionally to those weights, rejecting self-loops and duplicates, so
the realised degree sequence follows the target power law while the edge
count is hit exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DatasetError
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["powerlaw_weights", "directed_powerlaw_edges", "citation_edges"]


def powerlaw_weights(
    n: int, exponent: float, rng: np.random.Generator, w_min: float = 1.0
) -> np.ndarray:
    """Draw *n* Pareto-tailed positive weights with the given tail exponent.

    The weights are used as expected degrees; ``exponent`` around 2–3
    matches most social/financial networks.
    """
    if n <= 0:
        raise DatasetError(f"n must be positive, got {n}")
    if exponent <= 1.0:
        raise DatasetError(f"exponent must exceed 1, got {exponent}")
    u = rng.random(n)
    return w_min * (1.0 - u) ** (-1.0 / (exponent - 1.0))


def _sample_endpoints(
    weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    probabilities = weights / weights.sum()
    return rng.choice(weights.size, size=count, replace=True, p=probabilities)


def directed_powerlaw_edges(
    n: int,
    m: int,
    exponent_out: float = 2.5,
    exponent_in: float = 2.2,
    seed: SeedLike = None,
    max_degree_cap: int | None = None,
    max_rounds: int = 60,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate *m* distinct directed edges on *n* nodes.

    Parameters
    ----------
    n, m:
        Node and edge counts.  ``m`` must not exceed ``n (n - 1)``.
    exponent_out, exponent_in:
        Tail exponents of the out- and in-degree weight distributions
        (lower = heavier tail = bigger hubs).
    seed:
        Randomness control.
    max_degree_cap:
        Optional cap on any node's total degree; endpoints of rejected
        edges are resampled.  Used to match a published max-degree value.
    max_rounds:
        Rejection-sampling rounds before giving up.

    Returns
    -------
    tuple
        ``(src, dst)`` int64 arrays of length *m*.
    """
    if m > n * (n - 1):
        raise DatasetError(f"cannot place {m} simple directed edges on {n} nodes")
    rng = make_rng(seed)
    out_weights = powerlaw_weights(n, exponent_out, rng)
    in_weights = powerlaw_weights(n, exponent_in, rng)
    seen: set[tuple[int, int]] = set()
    src_list: list[int] = []
    dst_list: list[int] = []
    degree = np.zeros(n, dtype=np.int64)
    need = m
    for _ in range(max_rounds):
        if need <= 0:
            break
        batch = max(64, int(need * 1.6))
        candidates_src = _sample_endpoints(out_weights, batch, rng)
        candidates_dst = _sample_endpoints(in_weights, batch, rng)
        for s, d in zip(candidates_src.tolist(), candidates_dst.tolist()):
            if need <= 0:
                break
            if s == d or (s, d) in seen:
                continue
            if max_degree_cap is not None and (
                degree[s] >= max_degree_cap or degree[d] >= max_degree_cap
            ):
                continue
            seen.add((s, d))
            src_list.append(s)
            dst_list.append(d)
            degree[s] += 1
            degree[d] += 1
            need -= 1
    if need > 0:
        # Heavy-tail sampling occasionally saturates; fall back to uniform
        # endpoints for the remainder so the edge count is exact.  Bail
        # out if the degree cap makes the target infeasible.
        attempts = 0
        attempt_budget = 500 * m + 10_000
        while need > 0:
            attempts += 1
            if attempts > attempt_budget:
                raise DatasetError(
                    f"could not place {m} edges on {n} nodes under "
                    f"max_degree_cap={max_degree_cap}; raise the cap"
                )
            s = int(rng.integers(n))
            d = int(rng.integers(n))
            if s == d or (s, d) in seen:
                continue
            if max_degree_cap is not None and (
                degree[s] >= max_degree_cap or degree[d] >= max_degree_cap
            ):
                continue
            seen.add((s, d))
            src_list.append(s)
            dst_list.append(d)
            degree[s] += 1
            degree[d] += 1
            need -= 1
    return (
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
    )


def citation_edges(
    n: int, m: int, seed: SeedLike = None, hub_fraction: float = 0.02
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse layered DAG-like edges mimicking a citation network.

    Papers only cite older papers: node ``i`` may link to ``j < i``, which
    guarantees acyclicity.  A small fraction of early "seminal" nodes
    attract a disproportionate share of citations, reproducing the
    max-degree ≈ 44 vs average ≈ 1.14 contrast of Table 2.
    """
    if m > n * (n - 1) // 2:
        raise DatasetError(f"cannot place {m} DAG edges on {n} nodes")
    rng = make_rng(seed)
    hubs = max(1, int(n * hub_fraction))
    seen: set[tuple[int, int]] = set()
    src_list: list[int] = []
    dst_list: list[int] = []
    while len(src_list) < m:
        s = int(rng.integers(1, n))
        if rng.random() < 0.35:  # cite a seminal early paper
            d = int(rng.integers(min(hubs, s)))
        else:  # cite a recent paper
            d = int(rng.integers(s))
        if s == d or (s, d) in seen:
            continue
        seen.add((s, d))
        src_list.append(s)
        dst_list.append(d)
    return (
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
    )
