"""Dataset specifications mirroring Table 2 of the paper.

Each spec records the published structural statistics of one evaluation
dataset plus which synthetic generator reproduces its shape.  The real
datasets (SNAP downloads, proprietary bank data) are unavailable offline;
DESIGN.md documents the substitution rationale per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import DatasetError

__all__ = ["DatasetSpec", "TABLE2_SPECS", "spec_for", "FINANCIAL", "BENCHMARKS"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics and generator binding for one dataset.

    Attributes
    ----------
    name:
        Dataset name as it appears in Table 2.
    paper_nodes, paper_edges:
        Node/edge counts reported in Table 2.
    paper_avg_degree, paper_max_degree:
        Degree statistics reported in Table 2.
    generator:
        Key of the synthetic generator that reproduces the shape.
    probability_model:
        ``"uniform"`` — i.i.d. U[0,1] node/edge probabilities (what the
        paper uses for public benchmarks) — or ``"financial"`` — feature
        driven probabilities standing in for the learned models of
        [10, 15].
    default_scale:
        Scale factor applied by :func:`repro.datasets.registry.load_dataset`
        when the caller does not specify one; tuned so that the full
        experiment suite finishes on a laptop.
    notes:
        Substitution caveats (also summarised in DESIGN.md).
    """

    name: str
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float
    paper_max_degree: int
    generator: str
    probability_model: str
    default_scale: float
    notes: str = ""

    def scaled_nodes(self, scale: float) -> int:
        """Target node count at *scale* (at least 10 nodes)."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return max(10, round(self.paper_nodes * scale))

    def scaled_edges(self, scale: float) -> int:
        """Target edge count at *scale* (at least 10 edges)."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return max(10, round(self.paper_edges * scale))


#: The eight datasets of Table 2, in the paper's row order.
TABLE2_SPECS: tuple[DatasetSpec, ...] = (
    DatasetSpec(
        name="bitcoin",
        paper_nodes=3_783,
        paper_edges=24_186,
        paper_avg_degree=6.39,
        paper_max_degree=888,
        generator="powerlaw",
        probability_model="uniform",
        default_scale=0.25,
        notes="SNAP soc-sign-bitcoin-otc shape: mid-density power law.",
    ),
    DatasetSpec(
        name="facebook",
        paper_nodes=4_039,
        paper_edges=88_234,
        paper_avg_degree=21.85,
        paper_max_degree=1_045,
        generator="powerlaw",
        probability_model="uniform",
        default_scale=0.15,
        notes="SNAP ego-Facebook; undirected original, edges directed here.",
    ),
    DatasetSpec(
        name="wiki",
        paper_nodes=7_115,
        paper_edges=103_689,
        paper_avg_degree=14.57,
        paper_max_degree=1_167,
        generator="powerlaw",
        probability_model="uniform",
        default_scale=0.12,
        notes="SNAP wiki-Vote shape.",
    ),
    DatasetSpec(
        name="p2p",
        paper_nodes=62_586,
        paper_edges=147_892,
        paper_avg_degree=2.36,
        paper_max_degree=95,
        generator="powerlaw",
        probability_model="uniform",
        default_scale=0.04,
        notes="SNAP p2p-Gnutella31 shape: sparse, low max degree.",
    ),
    DatasetSpec(
        name="citation",
        paper_nodes=2_617,
        paper_edges=2_985,
        paper_avg_degree=1.14,
        paper_max_degree=44,
        generator="citation",
        probability_model="uniform",
        default_scale=0.5,
        notes="network-repository citation graph: near-tree DAG-like.",
    ),
    DatasetSpec(
        name="interbank",
        paper_nodes=125,
        paper_edges=249,
        paper_avg_degree=1.99,
        paper_max_degree=47,
        generator="interbank",
        probability_model="financial",
        default_scale=1.0,
        notes=(
            "Generated with the maximum-entropy approach of Anand, Craig & "
            "von Peter (the method the paper itself cites); marginals are "
            "synthetic log-normal bank balance sheets."
        ),
    ),
    DatasetSpec(
        name="guarantee",
        paper_nodes=31_309,
        paper_edges=35_987,
        paper_avg_degree=1.15,
        paper_max_degree=14_362,
        generator="guarantee",
        probability_model="financial",
        default_scale=0.08,
        notes=(
            "Proprietary bank guaranteed-loan network replaced by a "
            "hub-dominated generator: many small guarantee circles plus "
            "one mega-guarantor hub."
        ),
    ),
    DatasetSpec(
        name="fraud",
        paper_nodes=14_242,
        paper_edges=236_706,
        paper_avg_degree=16.62,
        paper_max_degree=85_074,
        generator="fraud",
        probability_model="financial",
        default_scale=0.05,
        notes=(
            "Proprietary card-fraud transaction network replaced by a "
            "bipartite consumer->merchant generator.  Table 2's max degree "
            "(85 074 > n) counts parallel transactions; our simple graph "
            "caps per-pair edges at one, keeping the heavy-tail shape."
        ),
    ),
)

#: Financial datasets (probability model fitted from features).
FINANCIAL: tuple[str, ...] = ("interbank", "guarantee", "fraud")

#: Public benchmark datasets (uniform random probabilities, as in §4.1).
BENCHMARKS: tuple[str, ...] = ("bitcoin", "facebook", "wiki", "p2p", "citation")


def spec_for(name: str) -> DatasetSpec:
    """Spec of the dataset called *name* (case-insensitive)."""
    wanted = name.lower()
    for spec in TABLE2_SPECS:
        if spec.name == wanted:
            return spec
    known = [spec.name for spec in TABLE2_SPECS]
    raise DatasetError(f"unknown dataset {name!r}; known: {known}")
