"""Builders for the five public-benchmark topologies of Table 2.

Each builder produces a topology whose node/edge counts follow the spec at
the requested scale and whose degree skew matches the published
average/max degree contrast.  Probabilities are left as placeholders and
assigned by the registry (uniform U[0,1] per §4.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import citation_edges, directed_powerlaw_edges
from repro.datasets.specs import DatasetSpec
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["benchmark_graph"]

#: Per-dataset tail exponents tuned to the published degree skew
#: (max_degree / avg_degree ratio).
_POWERLAW_PARAMS: dict[str, tuple[float, float]] = {
    "bitcoin": (2.1, 1.9),  # strong hubs (max deg 888 on 3.8k nodes)
    "facebook": (2.3, 2.1),  # dense, big hubs
    "wiki": (2.4, 1.9),  # voters vs admin candidates: in-skewed
    "p2p": (3.5, 3.2),  # flat degree profile (max deg 95 on 62k nodes)
}


def _edges_to_graph(
    n: int, src: np.ndarray, dst: np.ndarray, prefix: str
) -> UncertainGraph:
    return UncertainGraph.from_arrays(
        self_risks=np.zeros(n),
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.ones(src.size),
        labels=[f"{prefix}_{i:05d}" for i in range(n)],
    )


def benchmark_graph(
    spec: DatasetSpec, scale: float, seed: SeedLike = None
) -> UncertainGraph:
    """Build the topology of one public benchmark at *scale*.

    Parameters
    ----------
    spec:
        A benchmark spec (generator ``"powerlaw"`` or ``"citation"``).
    scale:
        Fraction of the published size to generate.
    seed:
        Randomness control.
    """
    rng = make_rng(seed)
    n = spec.scaled_nodes(scale)
    m = min(spec.scaled_edges(scale), n * (n - 1) // 2)
    if spec.generator == "citation":
        src, dst = citation_edges(n, m, seed=rng)
        return _edges_to_graph(n, src, dst, "paper")
    if spec.generator == "powerlaw":
        exponent_out, exponent_in = _POWERLAW_PARAMS[spec.name]
        # Cap scales the published max degree, but must stay feasible:
        # placing m edges needs total-degree capacity n * cap >= 2 m with
        # headroom, or the rejection sampler cannot finish.
        cap = max(
            8,
            round(spec.paper_max_degree * scale * 1.5),
            -(-6 * m // n),  # ceil(6m/n): 3x the mean total degree
        )
        src, dst = directed_powerlaw_edges(
            n,
            m,
            exponent_out=exponent_out,
            exponent_in=exponent_in,
            seed=rng,
            max_degree_cap=cap,
        )
        return _edges_to_graph(n, src, dst, spec.name[:4])
    raise DatasetError(
        f"spec {spec.name!r} does not use a benchmark generator "
        f"(generator={spec.generator!r})"
    )
