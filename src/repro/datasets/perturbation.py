"""Probability perturbation utilities for robustness studies.

The self-risk and diffusion probabilities of a real deployment come from
learned models ([10, 15]) and carry estimation error.  A sound risk
system must produce *stable* top-k answers under small probability
perturbations — these helpers inject controlled noise so that stability
can be measured (see ``tests/test_perturbation.py`` for the stability
property and ``examples``-level usage).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["perturb_probabilities", "stress_self_risks"]


def perturb_probabilities(
    graph: UncertainGraph,
    noise: float,
    seed: SeedLike = None,
    perturb_nodes: bool = True,
    perturb_edges: bool = True,
) -> UncertainGraph:
    """A copy of *graph* with truncated-Gaussian noise on probabilities.

    Parameters
    ----------
    graph:
        The source graph (left untouched).
    noise:
        Standard deviation of the additive Gaussian noise; results are
        clipped back into ``[0, 1]``.
    seed:
        Randomness control.
    perturb_nodes, perturb_edges:
        Which probability sets to disturb.

    Returns
    -------
    UncertainGraph
        An independent perturbed copy.
    """
    if noise < 0:
        raise DatasetError(f"noise must be non-negative, got {noise}")
    rng = make_rng(seed)
    perturbed = graph.copy()
    if perturb_nodes and graph.num_nodes:
        risks = graph.self_risk_array + rng.normal(0, noise, graph.num_nodes)
        perturbed.set_all_self_risks(np.clip(risks, 0.0, 1.0))
    if perturb_edges and graph.num_edges:
        _, _, probabilities = graph.edge_array
        noisy = probabilities + rng.normal(0, noise, graph.num_edges)
        perturbed.set_all_edge_probabilities(np.clip(noisy, 0.0, 1.0))
    return perturbed


def stress_self_risks(
    graph: UncertainGraph,
    multiplier: float,
    labels: list | None = None,
) -> UncertainGraph:
    """A copy of *graph* with (selected) self-risks scaled by *multiplier*.

    Models macro stress scenarios ("what if every retail SME's risk rose
    30 %?").  Results are clipped into ``[0, 1]``.

    Parameters
    ----------
    graph:
        The source graph (left untouched).
    multiplier:
        Factor applied to the chosen self-risks (must be non-negative).
    labels:
        Nodes to stress; ``None`` stresses everyone.
    """
    if multiplier < 0:
        raise DatasetError(
            f"multiplier must be non-negative, got {multiplier}"
        )
    stressed = graph.copy()
    risks = graph.self_risk_array.copy()
    if labels is None:
        risks *= multiplier
    else:
        for label in labels:
            index = graph.index(label)
            risks[index] *= multiplier
    stressed.set_all_self_risks(np.clip(risks, 0.0, 1.0))
    return stressed
