"""Credit-card fraud transaction network generator.

The paper's Fraud dataset is built from card transactions of a commercial
bank: an edge is a trade between a consumer and a merchant.  The published
statistics (Table 2: 14 242 nodes, 236 706 edges, max degree 85 074) imply
a *multigraph* — a few mega-merchants see more transactions than there are
nodes.  Our uncertain graphs are simple, so the generator reproduces the
bipartite heavy-tail shape with at most one edge per (consumer, merchant)
pair and documents the cap (see DESIGN.md).

Contagion direction: merchant → consumer.  A compromised merchant leaks
card data to the consumers who traded there, which is the propagation the
fraud-risk application cares about.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import powerlaw_weights
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["fraud_edges", "fraud_graph"]


def fraud_edges(
    n: int,
    m: int,
    seed: SeedLike = None,
    merchant_fraction: float = 0.12,
    merchant_exponent: float = 1.7,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Generate bipartite merchant→consumer edges.

    Parameters
    ----------
    n, m:
        Node and edge targets.  Consumers occupy indices
        ``[num_merchants, n)``.
    seed:
        Randomness control.
    merchant_fraction:
        Fraction of nodes that are merchants.
    merchant_exponent:
        Tail exponent of merchant popularity (lower = heavier tail,
        bigger mega-merchants).

    Returns
    -------
    tuple
        ``(src, dst, num_merchants)``; ``src`` are merchant indices.
    """
    num_merchants = max(2, int(n * merchant_fraction))
    num_consumers = n - num_merchants
    if num_consumers < 2:
        raise DatasetError("too few consumers; lower merchant_fraction")
    if m > num_merchants * num_consumers:
        raise DatasetError(
            f"cannot place {m} simple bipartite edges between "
            f"{num_merchants} merchants and {num_consumers} consumers"
        )
    rng = make_rng(seed)
    merchant_weights = powerlaw_weights(num_merchants, merchant_exponent, rng)
    merchant_probabilities = merchant_weights / merchant_weights.sum()
    seen: set[tuple[int, int]] = set()
    src_list: list[int] = []
    dst_list: list[int] = []
    while len(src_list) < m:
        batch = max(64, int((m - len(src_list)) * 1.5))
        merchants = rng.choice(
            num_merchants, size=batch, replace=True, p=merchant_probabilities
        )
        consumers = rng.integers(num_merchants, n, size=batch)
        for merchant, consumer in zip(merchants.tolist(), consumers.tolist()):
            if len(src_list) >= m:
                break
            key = (merchant, consumer)
            if key in seen:
                continue
            seen.add(key)
            src_list.append(merchant)
            dst_list.append(consumer)
    return (
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        num_merchants,
    )


def fraud_graph(n: int, m: int, seed: SeedLike = None) -> UncertainGraph:
    """Fraud network with placeholder probabilities.

    Labels are ``merchant_*`` / ``consumer_*``; probabilities are filled
    in by the financial model of :mod:`repro.datasets.probabilities`.
    """
    rng = make_rng(seed)
    src, dst, num_merchants = fraud_edges(n, m, seed=rng)
    labels = [
        f"merchant_{i:05d}" if i < num_merchants else f"consumer_{i:05d}"
        for i in range(n)
    ]
    return UncertainGraph.from_arrays(
        self_risks=np.zeros(n),
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.ones(src.size),
        labels=labels,
    )
