"""Loaders for SNAP-format edge lists (the paper's public benchmarks).

Table 2 evaluates on SNAP graphs (WikiVote, Gnutella, …) that cannot be
bundled with the repository; :mod:`repro.datasets.registry` therefore
ships synthetic stand-ins matched to the published statistics.  This
module closes the gap when the real files are available: it parses the
SNAP download format and the registry substitutes the real topology for
the generator whenever the file is present under the data directory
(``scripts/download_datasets.py`` fetches and checksum-verifies them).

Format handled (the WikiVote / Epinions / Gnutella schema, plus the
comma-separated variant the signed bitcoin graphs use):

* ``#``-prefixed comment/header lines anywhere;
* one edge per line: ``FromNodeId`` and ``ToNodeId`` as the first two
  whitespace- or comma-separated integer fields; extra columns (sign,
  rating, timestamp) are ignored;
* arbitrary (sparse, non-contiguous) node ids — relabelled to dense
  internal indices in ascending raw-id order, the raw id kept as the
  node label;
* self-loops and duplicate edges dropped (uncertain graphs here are
  simple), counts reported through :class:`SnapParseReport`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph

__all__ = [
    "SNAP_SOURCES",
    "SnapParseReport",
    "snap_data_dir",
    "find_snap_file",
    "parse_snap_edges",
    "degree_stratified_ids",
    "load_snap_graph",
]

#: Known SNAP downloads: dataset name -> (file name, download URL).
#: Names match Table-2 rows where one exists; ``epinions`` ships for the
#: schema tests and future Table-2 extensions.
SNAP_SOURCES: dict[str, tuple[str, str]] = {
    "wiki": (
        "wiki-Vote.txt",
        "https://snap.stanford.edu/data/wiki-Vote.txt.gz",
    ),
    "p2p": (
        "p2p-Gnutella31.txt",
        "https://snap.stanford.edu/data/p2p-Gnutella31.txt.gz",
    ),
    "epinions": (
        "soc-Epinions1.txt",
        "https://snap.stanford.edu/data/soc-Epinions1.txt.gz",
    ),
    "bitcoin": (
        "soc-sign-bitcoinotc.csv",
        "https://snap.stanford.edu/data/soc-sign-bitcoinotc.csv.gz",
    ),
    "facebook": (
        "facebook_combined.txt",
        "https://snap.stanford.edu/data/facebook_combined.txt.gz",
    ),
}

#: Environment variable overriding where real datasets are looked up.
DATA_DIR_ENV = "REPRO_DATA_DIR"


@dataclass(frozen=True)
class SnapParseReport:
    """What parsing dropped or remapped (provenance for Table 2 notes)."""

    edges_read: int
    self_loops_dropped: int
    duplicates_dropped: int
    nodes: int


def snap_data_dir() -> Path:
    """Directory real SNAP files are looked up in.

    ``$REPRO_DATA_DIR`` when set (tests point it at fixtures), else
    ``data/snap`` under the current working directory — where the
    download script puts them.
    """
    override = os.environ.get(DATA_DIR_ENV)
    if override:
        return Path(override)
    return Path("data") / "snap"


def find_snap_file(name: str) -> Path | None:
    """Path of dataset *name*'s real file if present, else ``None``."""
    source = SNAP_SOURCES.get(name.lower())
    if source is None:
        return None
    path = snap_data_dir() / source[0]
    return path if path.is_file() else None


def parse_snap_edges(
    lines: Iterable[str],
) -> tuple[np.ndarray, np.ndarray, SnapParseReport]:
    """Parse SNAP edge lines to raw ``(src, dst)`` id arrays.

    Returns the edges in file order with self-loops and duplicate pairs
    removed (first occurrence kept), plus a :class:`SnapParseReport`.
    Raises :class:`~repro.core.errors.DatasetError` on malformed lines.
    """
    src_ids: list[int] = []
    dst_ids: list[int] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.replace(",", " ").split()
        if len(fields) < 2:
            raise DatasetError(
                f"line {line_number}: need at least two id fields, "
                f"got {line!r}"
            )
        try:
            src_ids.append(int(fields[0]))
            dst_ids.append(int(fields[1]))
        except ValueError:
            raise DatasetError(
                f"line {line_number}: non-integer node id in {line!r}"
            ) from None
    src = np.asarray(src_ids, dtype=np.int64)
    dst = np.asarray(dst_ids, dtype=np.int64)
    edges_read = int(src.size)
    keep = src != dst
    self_loops = edges_read - int(keep.sum())
    src, dst = src[keep], dst[keep]
    if src.size:
        # Stable first-occurrence dedup on (src, dst) pairs.
        pairs = np.stack([src, dst], axis=1)
        _, first = np.unique(pairs, axis=0, return_index=True)
        keep_idx = np.sort(first)
        duplicates = int(src.size - keep_idx.size)
        src, dst = src[keep_idx], dst[keep_idx]
    else:
        duplicates = 0
    nodes = int(np.unique(np.concatenate([src, dst])).size) if src.size else 0
    report = SnapParseReport(
        edges_read=edges_read,
        self_loops_dropped=self_loops,
        duplicates_dropped=duplicates,
        nodes=nodes,
    )
    return src, dst, report


def degree_stratified_ids(
    src: np.ndarray,
    dst: np.ndarray,
    raw_ids: np.ndarray,
    max_nodes: int,
) -> np.ndarray:
    """Pick *max_nodes* raw ids preserving the degree distribution.

    The lowest-raw-id induced subgraph the loaders used before this
    sampler is biased however the dataset happened to number its nodes
    (SNAP files often cluster hubs at low ids).  This sampler instead
    stratifies by degree: nodes are bucketed by ``floor(log2(deg))``,
    every bucket contributes proportionally to its share of the graph
    (largest-remainder rounding, so the counts sum exactly), and within
    a bucket nodes are taken evenly spaced along the degree-sorted
    order.  Deterministic — no RNG — so scaled builds stay reproducible
    across runs and platforms.

    Returns the selected raw ids in ascending order.
    """
    if max_nodes < 2:
        raise DatasetError(f"max_nodes must be >= 2, got {max_nodes}")
    if max_nodes >= raw_ids.size:
        return raw_ids
    # Total degree over the parsed (deduplicated) edges; raw_ids is
    # sorted (np.unique), so searchsorted compacts ids vectorised.
    src_idx = np.searchsorted(raw_ids, src)
    dst_idx = np.searchsorted(raw_ids, dst)
    degrees = np.bincount(src_idx, minlength=raw_ids.size) + np.bincount(
        dst_idx, minlength=raw_ids.size
    )
    buckets = np.floor(np.log2(np.maximum(degrees, 1))).astype(np.int64)
    bucket_values, bucket_sizes = np.unique(buckets, return_counts=True)
    # Largest-remainder apportionment of max_nodes across the buckets.
    exact = bucket_sizes * (max_nodes / raw_ids.size)
    quota = np.floor(exact).astype(np.int64)
    remainder = max_nodes - int(quota.sum())
    if remainder > 0:
        order = np.argsort(-(exact - quota), kind="stable")
        quota[order[:remainder]] += 1
    # Buckets smaller than their quota hand the surplus to the largest
    # buckets (cannot overflow: total quota == max_nodes < total nodes).
    overflow = np.maximum(quota - bucket_sizes, 0)
    quota -= overflow
    surplus = int(overflow.sum())
    while surplus > 0:
        room = bucket_sizes - quota
        target = int(np.argmax(room))
        grant = min(surplus, int(room[target]))
        quota[target] += grant
        surplus -= grant
    selected_parts: list[np.ndarray] = []
    for value, size, take in zip(bucket_values, bucket_sizes, quota):
        if take == 0:
            continue
        members = np.flatnonzero(buckets == value)
        # Degree-sorted (ties by raw id via stable sort), evenly spaced:
        # keeps the within-bucket degree spread instead of one extreme.
        members = members[np.argsort(degrees[members], kind="stable")]
        picks = np.linspace(0, size - 1, int(take)).round().astype(np.int64)
        selected_parts.append(members[np.unique(picks)])
    selected = np.unique(np.concatenate(selected_parts))
    # Rounding collisions in linspace can under-fill; top up from the
    # highest-degree unselected nodes (deterministic).
    if selected.size < max_nodes:
        mask = np.ones(raw_ids.size, dtype=bool)
        mask[selected] = False
        rest = np.flatnonzero(mask)
        rest = rest[np.argsort(-degrees[rest], kind="stable")]
        selected = np.unique(
            np.concatenate([selected, rest[: max_nodes - selected.size]])
        )
    return raw_ids[selected]


def load_snap_graph(
    path: str | os.PathLike,
    *,
    max_nodes: int | None = None,
    subsample: str = "degree",
) -> UncertainGraph:
    """Build an :class:`UncertainGraph` from a SNAP edge-list file.

    Node labels are the raw SNAP integer ids; internal indices follow
    ascending raw-id order, so the build is deterministic.  All
    self-risks start at 0 and all edge probabilities at 1 — the registry
    layers the paper's probability protocol on top, exactly as it does
    for synthetic topologies.

    With *max_nodes* set (scaled experiment configs), the graph is the
    induced subgraph on a node sample chosen by *subsample*:
    ``"degree"`` (default) keeps the degree distribution via
    deterministic degree-bucket stratification
    (:func:`degree_stratified_ids`), so scaled rows stay close to the
    published degree statistics; ``"lowest"`` is the legacy
    lowest-raw-id cut (cheap, but biased by the file's id numbering).
    """
    file_path = Path(path)
    if not file_path.is_file():
        raise DatasetError(f"no such SNAP file: {file_path}")
    with open(file_path, "r", encoding="utf-8") as handle:
        src, dst, _report = parse_snap_edges(handle)
    if not src.size:
        raise DatasetError(f"SNAP file {file_path} holds no edges")
    raw_ids = np.unique(np.concatenate([src, dst]))
    if max_nodes is not None and max_nodes < raw_ids.size:
        if max_nodes < 2:
            raise DatasetError(f"max_nodes must be >= 2, got {max_nodes}")
        if subsample == "degree":
            raw_ids = degree_stratified_ids(src, dst, raw_ids, max_nodes)
        elif subsample == "lowest":
            raw_ids = raw_ids[:max_nodes]
        else:
            raise DatasetError(
                f"subsample must be 'degree' or 'lowest', got {subsample!r}"
            )
        keep = np.isin(src, raw_ids) & np.isin(dst, raw_ids)
        src, dst = src[keep], dst[keep]
    # raw_ids is sorted and src/dst are filtered to it, so the dense
    # relabelling is a vectorised binary search.
    src_idx = np.searchsorted(raw_ids, src)
    dst_idx = np.searchsorted(raw_ids, dst)
    return UncertainGraph.from_arrays(
        self_risks=np.zeros(raw_ids.size, dtype=np.float64),
        edge_src=src_idx,
        edge_dst=dst_idx,
        edge_probs=np.ones(src_idx.size, dtype=np.float64),
        labels=[int(raw) for raw in raw_ids],
    )
