"""Admission control for the SLO-enforced front end.

Three cooperating pieces, all transport-agnostic and clock-injectable
(so the tests run with a fake clock, deterministic to the token):

* :class:`TokenBucket` — per-tenant rate limiting.  Refill is computed
  lazily from the injected monotonic clock; :meth:`TokenBucket.retry_after`
  is the honest wait until the next token exists, which the server
  surfaces as the ``Retry-After`` header of a 429.
* :class:`EwmaCostModel` — the deadline oracle.  Fed every
  :class:`~repro.streaming.monitor.RefreshReport` that flows back from
  the serving layer, it decomposes observed refresh latency into a
  fixed per-refresh base cost plus a per-repaired-world marginal cost
  (both EWMAs), and tracks each tenant's expected repair size.  The
  prediction ``base + per_world · expected_worlds`` is what the server
  compares against the request's remaining latency budget: predicted
  blow-through means the query is answered from the always-warm Eq-(1)
  bounds instead of waiting on a repair that cannot finish in time.
* :class:`AdmissionController` — the gate itself: per-tenant buckets, a
  global in-flight cap on full (sampling) queries, and an
  ingestion-backlog limit; every rejection carries a machine-readable
  reason and a retry hint.

:class:`FrontendStats` is the single counters struct the overload
benchmark reconciles against: every request the server receives ends in
exactly one of admitted-completed / degraded / rejected / failed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.streaming.monitor import RefreshReport

__all__ = [
    "TokenBucket",
    "EwmaCostModel",
    "AdmissionController",
    "AdmissionDecision",
    "FrontendStats",
]

TenantId = Hashable
Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: *rate* tokens/second, capacity *burst*.

    Not thread-safe by itself — the controller serialises access.
    """

    def __init__(
        self, rate: float, burst: float, *, clock: Clock = time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self._burst, self._tokens + (now - self._stamp) * self._rate
        )
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; ``False`` (and no debit) if not."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until *tokens* will be available at the current rate."""
        self._refill()
        missing = tokens - self._tokens
        return max(0.0, missing / self._rate)


class EwmaCostModel:
    """Predict a tenant's next full-refresh latency from past reports.

    Model: ``cost = base + per_world · expected_worlds`` where

    * ``base`` — EWMA of refresh latencies with zero repaired worlds
      (bounds + reduction + bookkeeping; the floor every query pays),
    * ``per_world`` — EWMA of ``(elapsed - base) / worlds_repaired``
      over refreshes that did repair work (the marginal world cost),
    * ``expected_worlds`` — per-tenant EWMA of repair sizes, because
      repair size tracks each tenant's own update pattern while the
      per-world cost is a property of the shared machine + graph.

    :meth:`predict` returns ``None`` until at least one report has been
    observed — a cold model must not fabricate admission decisions, so
    the server treats ``None`` as "attempt the full query".
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = float(alpha)
        self._base: float | None = None
        self._per_world: float | None = None
        self._expected_worlds: dict[TenantId, float] = {}
        self._lock = threading.Lock()

    def _fold(self, current: float | None, sample: float) -> float:
        if current is None:
            return sample
        return (1.0 - self._alpha) * current + self._alpha * sample

    def observe(self, tenant_id: TenantId, report: RefreshReport) -> None:
        """Fold one refresh report into the model."""
        elapsed = float(report.elapsed_seconds)
        worlds = int(report.worlds_repaired)
        with self._lock:
            if worlds <= 0:
                self._base = self._fold(self._base, elapsed)
            else:
                base = self._base if self._base is not None else 0.0
                marginal = max(0.0, elapsed - base) / worlds
                self._per_world = self._fold(self._per_world, marginal)
            self._expected_worlds[tenant_id] = self._fold(
                self._expected_worlds.get(tenant_id), float(worlds)
            )

    def predict(self, tenant_id: TenantId) -> float | None:
        """Expected seconds for the tenant's next full refresh+query."""
        with self._lock:
            if self._base is None and self._per_world is None:
                return None
            base = self._base if self._base is not None else 0.0
            per_world = self._per_world if self._per_world is not None else 0.0
            worlds = self._expected_worlds.get(tenant_id, 0.0)
            return base + per_world * worlds

    def snapshot(self) -> dict:
        """Model internals for the stats endpoint."""
        with self._lock:
            return {
                "base_seconds": self._base,
                "per_world_seconds": self._per_world,
                "tenants_tracked": len(self._expected_worlds),
            }

    def state_dict(self) -> dict:
        """Full JSON-serialisable model state, for durable snapshots.

        Tenant keys are coerced through ``str`` so the state survives a
        JSON round-trip; the front end's tenant ids are strings already.
        """
        with self._lock:
            return {
                "alpha": self._alpha,
                "base_seconds": self._base,
                "per_world_seconds": self._per_world,
                "expected_worlds": {
                    str(tenant): float(value)
                    for tenant, value in self._expected_worlds.items()
                },
            }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore :meth:`state_dict` output (missing keys reset cold).

        A restart therefore predicts from the dead process's learned
        costs immediately instead of re-warming from ``None`` — the
        first post-recovery queries get real admission decisions.
        """
        base = state.get("base_seconds")
        per_world = state.get("per_world_seconds")
        worlds = dict(state.get("expected_worlds") or {})
        with self._lock:
            self._base = None if base is None else float(base)
            self._per_world = None if per_world is None else float(per_world)
            self._expected_worlds = {
                str(tenant): float(value)
                for tenant, value in worlds.items()
            }


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = "ok"
    retry_after: float = 0.0


@dataclass
class FrontendStats:
    """Every request ends in exactly one terminal counter.

    ``received == completed + degraded + rejected_rate +
    rejected_capacity + rejected_backlog + auth_failures + bad_requests
    + errors + fenced`` — the reconciliation the overload benchmark
    gates on.
    ``timeouts`` double-counts inside ``degraded`` (a deadline
    expiry *is* served degraded) and exists to split predicted
    (pre-emptive) from reactive degradation.
    """

    received: int = 0
    completed: int = 0
    degraded: int = 0
    timeouts: int = 0
    rejected_rate: int = 0
    rejected_capacity: int = 0
    rejected_backlog: int = 0
    auth_failures: int = 0
    bad_requests: int = 0
    errors: int = 0
    #: Writes refused because this node's epoch was superseded — the
    #: 503 tells the client to re-discover the promoted primary.
    fenced: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "received": self.received,
                "completed": self.completed,
                "degraded": self.degraded,
                "timeouts": self.timeouts,
                "rejected_rate": self.rejected_rate,
                "rejected_capacity": self.rejected_capacity,
                "rejected_backlog": self.rejected_backlog,
                "auth_failures": self.auth_failures,
                "bad_requests": self.bad_requests,
                "errors": self.errors,
                "fenced": self.fenced,
            }

    def accounted(self) -> int:
        """Sum of the terminal counters (must equal ``received``)."""
        totals = self.as_dict()
        return (
            totals["completed"]
            + totals["degraded"]
            + totals["rejected_rate"]
            + totals["rejected_capacity"]
            + totals["rejected_backlog"]
            + totals["auth_failures"]
            + totals["bad_requests"]
            + totals["errors"]
            + totals["fenced"]
        )


class AdmissionController:
    """The front end's gate: rate, concurrency, and backlog limits.

    Parameters
    ----------
    rate_limit:
        Requests/second each tenant may sustain (token-bucket refill).
    burst:
        Bucket capacity — short bursts above the rate that are absorbed.
    max_inflight:
        Global cap on concurrently executing *full* queries (the
        sampling path; degraded answers bypass this, that's the point).
    queue_depth_limit:
        Reject ingestion once the service's buffered-event backlog
        exceeds this (the shard futures behind it are what actually
        back up).
    clock:
        Injectable monotonic clock shared by every tenant bucket.
    """

    def __init__(
        self,
        *,
        rate_limit: float = 50.0,
        burst: float | None = None,
        max_inflight: int = 8,
        queue_depth_limit: int = 4096,
        clock: Clock = time.monotonic,
    ) -> None:
        self._rate = float(rate_limit)
        self._burst = float(burst) if burst is not None else max(
            1.0, self._rate / 2.0
        )
        self._max_inflight = int(max_inflight)
        self._queue_depth_limit = int(queue_depth_limit)
        self._clock = clock
        self._buckets: dict[TenantId, TokenBucket] = {}
        self._inflight = 0
        self._lock = threading.Lock()

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def _bucket(self, tenant_id: TenantId) -> TokenBucket:
        bucket = self._buckets.get(tenant_id)
        if bucket is None:
            bucket = self._buckets[tenant_id] = TokenBucket(
                self._rate, self._burst, clock=self._clock
            )
        return bucket

    def admit(
        self, tenant_id: TenantId, *, queue_depth: int = 0
    ) -> AdmissionDecision:
        """Check rate + backlog for one request (no concurrency debit)."""
        with self._lock:
            bucket = self._bucket(tenant_id)
            if not bucket.try_acquire():
                return AdmissionDecision(
                    False, "rate", max(0.001, bucket.retry_after())
                )
        if queue_depth > self._queue_depth_limit:
            # The backlog drains at the shards' pace; a half-window is
            # an honest first retry hint without tracking drain rate.
            return AdmissionDecision(False, "backlog", 0.05)
        return AdmissionDecision(True)

    def acquire_slot(self) -> bool:
        """Claim one full-query concurrency slot (False = saturated)."""
        with self._lock:
            if self._inflight >= self._max_inflight:
                return False
            self._inflight += 1
            return True

    def release_slot(self) -> None:
        """Return a slot (safe from executor threads)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
