"""Wire protocol of the network front end — HTTP/1.1 + JSON, stdlib only.

The front end speaks a deliberately small slice of HTTP/1.1 over
``asyncio`` streams: JSON request bodies, JSON responses, persistent
connections (``Connection: keep-alive`` is the default), no chunked
transfer, no TLS.  That slice is enough for ``curl``, for
:class:`~repro.frontend.client.FrontendClient`, and for the open-loop
load generator — while keeping the parser small enough to audit: a
malformed request can reject a connection, never crash the server.

This module also fixes the JSON encoding of
:mod:`~repro.streaming.events` update events
(:func:`event_to_json` / :func:`event_from_json`) — the same four event
types the ingestion queue and the WAL carry, so a wire client can drive
exactly the traffic the in-process API can.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.errors import FrontendError
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
    UpdateEvent,
)

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "HttpRequest",
    "read_request",
    "write_response",
    "event_to_json",
    "event_from_json",
    "send_request",
]

#: Reject request heads larger than this (one line + headers).
MAX_HEADER_BYTES = 16_384
#: Reject bodies larger than this (bulk events on big graphs dominate).
MAX_BODY_BYTES = 16 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: Mapping[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FrontendError(f"request body is not valid JSON: {error}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
) -> HttpRequest | None:
    """Parse one request off *reader*; ``None`` on clean EOF.

    Raises :class:`~repro.core.errors.FrontendError` for anything
    malformed or over the size limits — the connection handler turns
    that into a 400 and closes the connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise FrontendError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise FrontendError(f"request head exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise FrontendError(f"request head exceeds {MAX_HEADER_BYTES} bytes")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise FrontendError("undecodable request head")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise FrontendError(f"malformed request line: {request_line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise FrontendError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise FrontendError(f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise FrontendError(f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise FrontendError("connection closed mid-body")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any = None,
    *,
    headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> None:
    """Serialise one JSON response onto *writer* (buffered, not drained)."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)


# ----------------------------------------------------------------------
# Update-event JSON codec
# ----------------------------------------------------------------------
def event_to_json(event: UpdateEvent) -> dict:
    """Encode one update event as its wire JSON object."""
    if isinstance(event, SelfRiskUpdate):
        return {
            "type": "self_risk",
            "label": event.label,
            "value": float(event.value),
        }
    if isinstance(event, EdgeProbabilityUpdate):
        return {
            "type": "edge_probability",
            "src": event.src,
            "dst": event.dst,
            "value": float(event.value),
        }
    if isinstance(event, BulkSelfRiskUpdate):
        return {
            "type": "bulk_self_risk",
            "values": [float(value) for value in event.values],
        }
    if isinstance(event, BulkEdgeProbabilityUpdate):
        return {
            "type": "bulk_edge_probability",
            "values": [float(value) for value in event.values],
        }
    raise FrontendError(f"unencodable update event: {event!r}")


def event_from_json(payload: Mapping[str, Any]) -> UpdateEvent:
    """Decode one wire JSON object back into an update event."""
    if not isinstance(payload, Mapping):
        raise FrontendError(f"event must be a JSON object, got {payload!r}")
    kind = payload.get("type")
    try:
        if kind == "self_risk":
            return SelfRiskUpdate(payload["label"], float(payload["value"]))
        if kind == "edge_probability":
            return EdgeProbabilityUpdate(
                payload["src"], payload["dst"], float(payload["value"])
            )
        if kind == "bulk_self_risk":
            return BulkSelfRiskUpdate(
                [float(value) for value in payload["values"]]
            )
        if kind == "bulk_edge_probability":
            return BulkEdgeProbabilityUpdate(
                [float(value) for value in payload["values"]]
            )
    except (KeyError, TypeError, ValueError) as error:
        raise FrontendError(f"malformed {kind!r} event: {error}")
    raise FrontendError(f"unknown event type {kind!r}")


# ----------------------------------------------------------------------
# Minimal async client request (tests and the load generator)
# ----------------------------------------------------------------------
@dataclass
class WireResponse:
    """Status + headers + decoded JSON body of one exchange."""

    status: int
    headers: Mapping[str, str]
    payload: Any = field(default=None)


async def send_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: Any = None,
    *,
    headers: Mapping[str, str] | None = None,
) -> WireResponse:
    """Issue one request on an open connection and parse the response.

    The counterpart of :func:`read_request`/:func:`write_response`,
    shared by the e2e tests and the open-loop load generator; the
    synchronous :class:`~repro.frontend.client.FrontendClient` has its
    own ``http.client`` transport with retries.
    """
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: localhost",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, *header_lines = head.decode("latin-1").split("\r\n")
    status = int(status_line.split(" ")[1])
    response_headers: dict[str, str] = {}
    for line in header_lines:
        if line:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", "0"))
    raw = await reader.readexactly(length) if length else b""
    decoded = json.loads(raw) if raw else None
    return WireResponse(status=status, headers=response_headers, payload=decoded)
