"""The SLO-enforced network front end over a :class:`RiskService`.

One :class:`FrontendServer` binds an ``asyncio`` HTTP/JSON endpoint
(:mod:`repro.frontend.protocol`) in front of a
:class:`~repro.serving.service.RiskService` and enforces, per request:

1. **Authentication** — per-tenant bearer tokens, compared with
   :func:`hmac.compare_digest`; a token only opens its own tenant.
2. **Admission** (:class:`~repro.frontend.admission.AdmissionController`)
   — per-tenant token-bucket rate limits, a global in-flight cap on
   full sampling queries, and an ingestion-backlog limit; every
   rejection is a ``429`` carrying ``Retry-After``.
3. **Deadlines** — every query carries a latency budget (body
   ``budget_ms``, header ``X-Budget-Ms``, or the server's SLO default).
   The EWMA cost model predicts the tenant's full refresh+query cost;
   a predicted blow-through short-circuits to a *degraded* bounds-only
   answer (:meth:`RiskService.query_degraded`) without ever entering
   the shard queue, and a full query that overruns its in-flight
   deadline is answered degraded the moment the budget expires while
   the real computation finishes (and trains the model) in the
   background.

The endpoints:

========  =========================  =====================================
method    path                       body / semantics
========  =========================  =====================================
GET       /healthz                   liveness (no auth)
GET       /v1/health                 role/epoch/lag report (no auth)
GET       /v1/stats                  counters: frontend, queue, cache, model
POST      /v1/register               ``{tenant, k, kwargs?}``
POST      /v1/update                 ``{tenant, event, ack?}`` → ``{accepted}``
POST      /v1/query                  ``{tenant, budget_ms?, allow_degraded?}``
POST      /v1/replication/fetch      WAL chunk pull (cluster token)
POST      /v1/replication/bootstrap  snapshot files (cluster token)
========  =========================  =====================================

``/v1/update`` accepts an ``ack`` level: ``window`` (default — the
historical buffered-accept), ``durable`` (returns after the event's
batch is fsynced, with its WAL ``seq``), or ``replicated`` (durable
plus waits — bounded — for a replica ack; ``replicated: false`` on
timeout is an honest non-ack, the event is still durable locally).
Writes refused because this node's epoch was superseded answer ``503``
with ``Retry-After`` so clients re-route to the promoted primary.

Every query response reports ``degraded`` / ``stale`` flags and an
``X-Elapsed-Ms`` header (server-side handling time — what the SLO gate
in the benchmark measures).  Per-connection failures are contained:
a malformed request costs that connection a 400, never the process.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import hmac
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Mapping

from repro.core.errors import FencedError, FrontendError, ReproError
from repro.frontend.admission import (
    AdmissionController,
    EwmaCostModel,
    FrontendStats,
)
from repro.frontend.protocol import (
    HttpRequest,
    event_from_json,
    read_request,
    write_response,
)
from repro.io.jsonio import result_to_dict
from repro.queries.base import QueryResult
from repro.serving.service import RiskService
from repro.streaming.monitor import RefreshReport

__all__ = ["FrontendServer"]

TenantId = Hashable
_LOG = logging.getLogger(__name__)


class FrontendServer:
    """Serve a :class:`RiskService` over HTTP with SLO enforcement.

    Parameters
    ----------
    service:
        The serving layer to front.  The server runs the service's
        async flush pump for as long as it is started; the caller keeps
        ownership (and closes the service after :meth:`stop`).
    tokens:
        ``tenant_id -> bearer token``.  Only listed tenants can
        authenticate; requests must present their own tenant's token.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    slo_ms:
        Default per-query latency budget when the request names none.
    rate_limit, burst, max_inflight, queue_depth_limit:
        Admission knobs — see
        :class:`~repro.frontend.admission.AdmissionController`.
    deadline_margin:
        Fraction of the budget a full query may consume before the
        degraded fallback fires; the remainder pays for the bounds
        evaluation and serialisation.
    flush_interval:
        Cadence of the service's background ingestion pump.
    snapshot_interval:
        Forwarded to :meth:`RiskService.serve` — seconds between
        rotated disk snapshots (durable services only).
    replication:
        Optional :class:`~repro.replication.hub.ReplicationHub` for
        this (primary) service; enables the ``/v1/replication/*``
        routes and the ``ack=replicated`` write level.
    cluster_token:
        Shared bearer token authenticating replication peers.  The
        replication routes answer 401 without it — it is distinct from
        every tenant token on purpose (a tenant must not be able to
        pull the whole cluster's WAL).
    """

    def __init__(
        self,
        service: RiskService,
        tokens: Mapping[TenantId, str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        slo_ms: float = 250.0,
        rate_limit: float = 50.0,
        burst: float | None = None,
        max_inflight: int = 8,
        queue_depth_limit: int = 4096,
        deadline_margin: float = 0.85,
        flush_interval: float = 0.02,
        snapshot_interval: float | None = None,
        replication=None,
        cluster_token: str | None = None,
    ) -> None:
        if not 0.0 < deadline_margin <= 1.0:
            raise FrontendError(
                f"deadline_margin must be in (0, 1], got {deadline_margin}"
            )
        if slo_ms <= 0:
            raise FrontendError(f"slo_ms must be > 0, got {slo_ms}")
        self._service = service
        self._tokens = {
            tenant: str(token) for tenant, token in dict(tokens).items()
        }
        self._host = host
        self._requested_port = int(port)
        self._slo_ms = float(slo_ms)
        self._margin = float(deadline_margin)
        self._flush_interval = float(flush_interval)
        self._snapshot_interval = snapshot_interval
        self.stats = FrontendStats()
        self.admission = AdmissionController(
            rate_limit=rate_limit,
            burst=burst,
            max_inflight=max_inflight,
            queue_depth_limit=queue_depth_limit,
        )
        self.cost_model = EwmaCostModel()
        # Durable services carry the admission model across restarts:
        # restore whatever the recovered snapshot held, then hand the
        # model to the service as a snapshot-extras provider so every
        # future snapshot persists the freshest EWMAs.  A cold restart
        # therefore predicts from the previous process's learned costs
        # instead of admitting blind until the model re-warms.
        recovered = service.recovered_extras.get("ewma_cost_model")
        if recovered:
            self.cost_model.load_state_dict(recovered)
        service.register_extras_provider(
            "ewma_cost_model", self.cost_model.state_dict
        )
        # Full queries block on shard futures; give them their own
        # threads, capped at the admission in-flight limit so the
        # executor can never queue beyond what admission admitted.
        self._query_executor = ThreadPoolExecutor(
            max_workers=max(1, int(max_inflight)),
            thread_name_prefix="frontend-query",
        )
        # Degraded answers must not queue behind saturated full
        # queries — that is their whole purpose — so they get a small
        # dedicated lane.
        self._degraded_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="frontend-degraded"
        )
        self._replication = replication
        self._cluster_token = (
            None if cluster_token is None else str(cluster_token)
        )
        # Replication pulls + durable-ack waits block on disk/fsync;
        # a dedicated lane keeps them from starving query traffic.
        # Sized so bounded replicated-ack waits cannot occupy every
        # worker and starve the very fetches that deliver the acks.
        self._replication_executor = ThreadPoolExecutor(
            max_workers=6, thread_name_prefix="frontend-replication"
        )
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._pump_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            raise FrontendError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> None:
        """Bind the socket and launch the service's ingestion pump."""
        if self._server is not None:
            raise FrontendError("server already started")
        self._stop_event = asyncio.Event()
        self._pump_task = asyncio.ensure_future(
            self._service.serve(
                flush_interval=self._flush_interval,
                stop=self._stop_event,
                snapshot_interval=self._snapshot_interval,
            )
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )

    async def stop(self) -> None:
        """Stop accepting, drain the pump, release the executors."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._stop_event is not None:
            self._stop_event.set()
        if self._pump_task is not None:
            try:
                await self._pump_task
            except Exception:  # pragma: no cover - pump died with service
                _LOG.exception("ingestion pump exited abnormally")
            self._pump_task = None
        self._query_executor.shutdown(wait=False)
        self._degraded_executor.shutdown(wait=False)
        self._replication_executor.shutdown(wait=False)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until *stop* is set (the CLI's foreground mode)."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except FrontendError as error:
                    self.stats.bump("received")
                    self.stats.bump("bad_requests")
                    write_response(
                        writer, 400, {"error": str(error)}, keep_alive=False
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self.stats.bump("received")
                try:
                    status, payload, headers = await self._dispatch(request)
                except FrontendError as error:
                    self.stats.bump("bad_requests")
                    status, payload, headers = 400, {"error": str(error)}, {}
                except FencedError as error:
                    # This node's writer epoch was superseded by a
                    # promotion: tell the client to re-route, never
                    # pretend the write was accepted.
                    self.stats.bump("fenced")
                    status, payload, headers = (
                        503,
                        {"error": str(error), "fenced": True},
                        {"Retry-After": "0.050"},
                    )
                except ReproError as error:
                    self.stats.bump("errors")
                    status, payload, headers = 500, {"error": str(error)}, {}
                except Exception as error:  # noqa: BLE001 - stay alive
                    _LOG.exception("unhandled error serving %s", request.path)
                    self.stats.bump("errors")
                    status, payload, headers = (
                        500,
                        {"error": f"internal error: {type(error).__name__}"},
                        {},
                    )
                write_response(
                    writer,
                    status,
                    payload,
                    headers=headers,
                    keep_alive=request.keep_alive,
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, object, dict]:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            self.stats.bump("completed")
            return 200, {"ok": True}, {}
        if route == ("GET", "/v1/health"):
            self.stats.bump("completed")
            return 200, self._health_payload(), {}
        if route == ("POST", "/v1/replication/fetch"):
            return await self._handle_replication_fetch(request)
        if route == ("POST", "/v1/replication/bootstrap"):
            return await self._handle_replication_bootstrap(request)
        if route == ("GET", "/v1/stats"):
            self.stats.bump("completed")
            return 200, self._stats_payload(), {}
        if route == ("POST", "/v1/register"):
            return await self._handle_register(request)
        if route == ("POST", "/v1/update"):
            return await self._handle_update(request)
        if route == ("POST", "/v1/query"):
            return await self._handle_query(request)
        self.stats.bump("bad_requests")
        return 404, {"error": f"no route {request.method} {request.path}"}, {}

    # ------------------------------------------------------------------
    # Auth + admission
    # ------------------------------------------------------------------
    def _authenticate(
        self, request: HttpRequest, body: Mapping
    ) -> TenantId | None:
        """The authenticated tenant, or ``None`` (401 recorded)."""
        tenant = body.get("tenant") if isinstance(body, Mapping) else None
        header = request.headers.get("authorization", "")
        scheme, _, presented = header.partition(" ")
        expected = self._tokens.get(tenant)
        if (
            tenant is None
            or expected is None
            or scheme.lower() != "bearer"
            or not hmac.compare_digest(presented.strip(), expected)
        ):
            self.stats.bump("auth_failures")
            return None
        return tenant

    def _admit(self, tenant: TenantId) -> tuple[int, object, dict] | None:
        """Run admission; a response triple means rejection."""
        decision = self.admission.admit(
            tenant, queue_depth=self._service.queue.pending()
        )
        if decision.admitted:
            return None
        self.stats.bump(f"rejected_{decision.reason}")
        retry = max(0.001, decision.retry_after)
        return (
            429,
            {"error": f"rejected: {decision.reason}", "retry_after": retry},
            {"Retry-After": f"{retry:.3f}"},
        )

    def _cluster_authenticate(self, request: HttpRequest) -> bool:
        """Replication-peer auth: the shared cluster token, nothing else."""
        if self._cluster_token is None:
            self.stats.bump("auth_failures")
            return False
        header = request.headers.get("authorization", "")
        scheme, _, presented = header.partition(" ")
        if scheme.lower() != "bearer" or not hmac.compare_digest(
            presented.strip(), self._cluster_token
        ):
            self.stats.bump("auth_failures")
            return False
        return True

    # ------------------------------------------------------------------
    # Replication endpoints
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict:
        service = self._service
        return {
            "node": getattr(service, "node_id", "primary"),
            "role": "primary",
            "epoch": getattr(service, "epoch", 0),
            "applied_seq": getattr(service, "durable_seq", 0),
            "lag": 0,
            "tenants": len(service.tenants()),
            "replicas_acked": (
                self._replication.acked()
                if self._replication is not None
                else {}
            ),
        }

    async def _handle_replication_fetch(
        self, request: HttpRequest
    ) -> tuple[int, object, dict]:
        if not self._cluster_authenticate(request):
            return 401, {"error": "unauthorized"}, {}
        if self._replication is None:
            self.stats.bump("bad_requests")
            return 404, {"error": "replication is not enabled"}, {}
        body = request.json()
        try:
            replica = str(body["replica"])
            segment = int(body["segment"])
            offset = int(body["offset"])
        except (KeyError, TypeError, ValueError):
            raise FrontendError(
                "fetch needs replica, segment, offset"
            ) from None
        max_bytes = body.get("max_bytes")
        acked_seq = body.get("acked_seq")
        loop = asyncio.get_event_loop()
        result = await loop.run_in_executor(
            self._replication_executor,
            lambda: self._replication.fetch(
                replica,
                segment,
                offset,
                max_bytes=None if max_bytes is None else int(max_bytes),
                acked_seq=None if acked_seq is None else int(acked_seq),
            ),
        )
        chunk = result.chunk
        self.stats.bump("completed")
        return (
            200,
            {
                "segment": chunk.segment,
                "offset": chunk.offset,
                "data": base64.b64encode(chunk.data).decode("ascii"),
                "exhausted": chunk.exhausted,
                "gone": chunk.gone,
                "oldest_segment": chunk.oldest_segment,
                "resume_floor": chunk.resume_floor,
                "primary_seq": result.primary_seq,
                "epoch": result.epoch,
            },
            {},
        )

    async def _handle_replication_bootstrap(
        self, request: HttpRequest
    ) -> tuple[int, object, dict]:
        if not self._cluster_authenticate(request):
            return 401, {"error": "unauthorized"}, {}
        if self._replication is None:
            self.stats.bump("bad_requests")
            return 404, {"error": "replication is not enabled"}, {}
        body = request.json()
        try:
            replica = str(body["replica"])
        except (KeyError, TypeError):
            raise FrontendError("bootstrap needs replica") from None
        loop = asyncio.get_event_loop()
        result = await loop.run_in_executor(
            self._replication_executor,
            lambda: self._replication.bootstrap(replica),
        )
        self.stats.bump("completed")
        return (
            200,
            {
                "files": {
                    relative: base64.b64encode(blob).decode("ascii")
                    for relative, blob in result.files.items()
                },
                "segment": result.segment,
                "offset": result.offset,
                "primary_seq": result.primary_seq,
                "epoch": result.epoch,
            },
            {},
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _handle_register(
        self, request: HttpRequest
    ) -> tuple[int, object, dict]:
        body = request.json()
        tenant = self._authenticate(request, body)
        if tenant is None:
            return 401, {"error": "unauthorized"}, {}
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        k = body.get("k")
        if not isinstance(k, int) or k < 1:
            raise FrontendError(f"k must be a positive integer, got {k!r}")
        kwargs = body.get("kwargs", {})
        if not isinstance(kwargs, dict):
            raise FrontendError("kwargs must be a JSON object")
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(
            self._degraded_executor,
            lambda: self._service.register_tenant(tenant, k, **kwargs),
        )
        self.stats.bump("completed")
        return 200, {"registered": tenant, "k": k}, {}

    async def _handle_update(
        self, request: HttpRequest
    ) -> tuple[int, object, dict]:
        body = request.json()
        tenant = self._authenticate(request, body)
        if tenant is None:
            return 401, {"error": "unauthorized"}, {}
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        event = event_from_json(body.get("event"))
        ack = body.get("ack", "window")
        if ack not in ("window", "durable", "replicated"):
            raise FrontendError(
                f"ack must be window, durable, or replicated, got {ack!r}"
            )
        if ack == "window":
            accepted = self._service.submit_update(tenant, event)
            self.stats.bump("completed")
            return 202, {"accepted": bool(accepted)}, {}
        if ack == "replicated" and self._replication is None:
            raise FrontendError("ack=replicated requires replication")
        try:
            timeout = min(30.0, max(0.001, float(body.get("timeout", 2.0))))
        except (TypeError, ValueError):
            raise FrontendError(
                f"bad timeout: {body.get('timeout')!r}"
            ) from None
        loop = asyncio.get_event_loop()
        seq = await loop.run_in_executor(
            self._replication_executor,
            lambda: self._service.submit_and_sync(tenant, event),
        )
        if seq < 0:  # shed at the window — never accepted
            self.stats.bump("completed")
            return 202, {"accepted": False}, {}
        payload: dict = {"accepted": True, "seq": seq}
        if ack == "replicated":
            payload["replicated"] = await loop.run_in_executor(
                self._replication_executor,
                lambda: self._replication.wait_replicated(
                    seq, timeout=timeout
                ),
            )
        self.stats.bump("completed")
        return 202, payload, {}

    async def _handle_query(
        self, request: HttpRequest
    ) -> tuple[int, object, dict]:
        started = time.perf_counter()
        body = request.json()
        tenant = self._authenticate(request, body)
        if tenant is None:
            return 401, {"error": "unauthorized"}, {}
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        budget_ms = body.get(
            "budget_ms", request.headers.get("x-budget-ms", self._slo_ms)
        )
        try:
            budget = float(budget_ms) / 1000.0
        except (TypeError, ValueError):
            raise FrontendError(f"bad budget_ms: {budget_ms!r}")
        if budget <= 0:
            raise FrontendError(f"budget_ms must be > 0, got {budget_ms!r}")
        allow_degraded = bool(body.get("allow_degraded", True))
        family = body.get("family")
        if family is not None and not isinstance(family, str):
            raise FrontendError(f"family must be a string, got {family!r}")
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise FrontendError("params must be a JSON object")
        if params and family is None:
            raise FrontendError("params requires a family")
        loop = asyncio.get_event_loop()

        # 1. Pre-emptive degradation: the model predicts the full path
        #    cannot finish inside the budget — do not even enter the
        #    queue, answer from the always-warm bounds.  Only the top-k
        #    path has a bounds-only twin; family queries always attempt
        #    the shared-world computation.
        predicted = self.cost_model.predict(tenant)
        if (
            family is None
            and allow_degraded
            and predicted is not None
            and predicted > self._margin * budget
        ):
            degraded = await self._degraded_answer(loop, tenant)
            if degraded is not None:
                self.stats.bump("degraded")
                return self._result_response(
                    degraded, started, degraded_reason="predicted"
                )

        # 2. Concurrency gate on the full path.
        if not self.admission.acquire_slot():
            self.stats.bump("rejected_capacity")
            retry = max(0.001, predicted or 0.05)
            return (
                429,
                {"error": "rejected: capacity", "retry_after": retry},
                {"Retry-After": f"{retry:.3f}"},
            )

        # 3. Full query with an in-flight deadline.  The executor future
        #    is shielded: on expiry it keeps running (releasing its slot
        #    and training the cost model on completion) while the
        #    request is answered degraded immediately.
        future = asyncio.ensure_future(
            loop.run_in_executor(
                self._query_executor, self._full_query, tenant, family, params
            )
        )
        remaining = self._margin * budget - (time.perf_counter() - started)
        try:
            result = await asyncio.wait_for(
                asyncio.shield(future), max(0.001, remaining)
            )
        except asyncio.TimeoutError:
            if allow_degraded and family is None:
                degraded = await self._degraded_answer(loop, tenant)
                if degraded is not None:
                    self.stats.bump("degraded")
                    self.stats.bump("timeouts")
                    future.add_done_callback(_swallow)
                    return self._result_response(
                        degraded, started, degraded_reason="deadline"
                    )
            result = await future  # no degraded path: overrun honestly
        except Exception:
            future.add_done_callback(_swallow)
            raise
        self.stats.bump("completed")
        return self._result_response(result, started)

    # ------------------------------------------------------------------
    # Query internals
    # ------------------------------------------------------------------
    def _full_query(
        self,
        tenant: TenantId,
        family: str | None = None,
        params: Mapping | None = None,
    ):
        """Blocking full query (executor thread); trains the cost model.

        With *family* set, routes to the service's shared-world family
        path (:meth:`RiskService.query_family`) instead of the top-k
        default; both paths train the same EWMA cost model, since both
        pay the same per-tenant flush-and-repair cost before answering.
        """
        started = time.perf_counter()
        try:
            if family is None:
                result = self._service.query_topk(tenant)
            else:
                result = self._service.query_family(
                    tenant, family, params=dict(params or {})
                )
        finally:
            self.admission.release_slot()
        elapsed = time.perf_counter() - started
        report = self._service.last_report(tenant)
        self.cost_model.observe(
            tenant,
            RefreshReport(
                mode="frontend",
                reason="observed full query",
                dirty_nodes=0,
                dirty_edges=0,
                bounds_recomputed=0,
                reduction_reused=True,
                sampling="observed",
                worlds_repaired=(
                    report.worlds_repaired if report is not None else 0
                ),
                samples=report.samples if report is not None else 0,
                elapsed_seconds=elapsed,
            ),
        )
        return result

    async def _degraded_answer(self, loop, tenant: TenantId):
        """Bounds-only answer on the dedicated lane (None = no mirror)."""
        return await loop.run_in_executor(
            self._degraded_executor,
            lambda: self._service.query_degraded(tenant),
        )

    def _result_response(
        self, result, started: float, *, degraded_reason: str | None = None
    ) -> tuple[int, object, dict]:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if isinstance(result, QueryResult):
            # Family answers are never degraded/stale: the family path
            # has no bounds-only twin, so reaching here means the full
            # shared-world computation ran.
            payload = {
                "result": result.to_dict(),
                "degraded": False,
                "stale": False,
            }
        else:
            payload = {
                "result": result_to_dict(result),
                "degraded": bool(result.degraded),
                "stale": bool(result.stale),
            }
        if degraded_reason is not None:
            payload["degraded_reason"] = degraded_reason
        return 200, payload, {"X-Elapsed-Ms": f"{elapsed_ms:.3f}"}

    def _stats_payload(self) -> dict:
        return {
            "frontend": self.stats.as_dict(),
            "accounted": self.stats.accounted(),
            "inflight": self.admission.inflight,
            "queue": dict(self._service.queue.stats.as_dict()),
            "pending": self._service.queue.pending(),
            "cache": dict(self._service.cache_stats),
            "cost_model": self.cost_model.snapshot(),
            "tenants": len(self._service.tenants()),
        }


def _swallow(future: "asyncio.Future") -> None:
    """Retrieve a shielded future's exception so it never warns."""
    if not future.cancelled():
        future.exception()
