"""SLO-enforced network front end for the serving layer.

:class:`~repro.frontend.server.FrontendServer` puts an asyncio
HTTP/JSON endpoint in front of a
:class:`~repro.serving.service.RiskService` with per-tenant bearer
auth, token-bucket admission control, deadline propagation with
degraded bounds-only answers under overload, and honest 429 +
``Retry-After`` load shedding.
:class:`~repro.frontend.client.FrontendClient` is the matching polite
client (jittered exponential backoff, ``Retry-After`` honoured).
"""

from repro.frontend.admission import (
    AdmissionController,
    AdmissionDecision,
    EwmaCostModel,
    FrontendStats,
    TokenBucket,
)
from repro.frontend.client import ClientResponse, FrontendClient
from repro.frontend.protocol import (
    HttpRequest,
    event_from_json,
    event_to_json,
    read_request,
    send_request,
    write_response,
)
from repro.frontend.server import FrontendServer

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "EwmaCostModel",
    "FrontendStats",
    "TokenBucket",
    "ClientResponse",
    "FrontendClient",
    "HttpRequest",
    "event_from_json",
    "event_to_json",
    "read_request",
    "send_request",
    "write_response",
    "FrontendServer",
]
