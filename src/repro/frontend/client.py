"""Synchronous client for the SLO-enforced front end.

A thin, dependency-free (:mod:`http.client`) helper that speaks the
protocol of :class:`~repro.frontend.server.FrontendServer` and bakes in
the polite-client behaviours the admission controller is designed
around:

* **retry with jittered exponential backoff** — retryable outcomes
  (connection refused/reset, 429, 503) sleep
  ``min(cap, base · 2^attempt) · uniform(0.5, 1.0)`` between attempts,
  decorrelating competing clients instead of letting them stampede in
  lockstep;
* **Retry-After is honoured** — when a 429 names a wait, that wait
  *replaces* the computed backoff (the server knows its own refill
  schedule better than the client's guess);
* **bounded attempts** — after ``retries`` failures the last error
  surfaces as :class:`~repro.core.errors.FrontendError` (or the last
  429 response is returned, so callers can inspect it);
* **retry budget** — an optional wall-clock cap on one logical
  request's total retry time: a sleep that would overrun the budget is
  never taken (deadline-aware, not best-effort), so a caller with a
  500 ms budget gets an answer or an error in ≤ 500 ms, not after the
  full attempt schedule;
* **circuit breaker** — consecutive transport failures / 503s open
  the circuit: further requests fail fast with
  :class:`CircuitOpenError` instead of hammering a fenced or dead
  node.  After a cooldown the next request is a half-open probe — its
  success closes the circuit, its failure re-opens it for another
  cooldown.

The clock and RNG are injectable, so the backoff schedule and breaker
state machine are unit-testable without sleeping.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro.core.errors import FrontendError
from repro.frontend.protocol import event_to_json
from repro.streaming.events import UpdateEvent

__all__ = ["ClientResponse", "FrontendClient", "CircuitOpenError"]

TenantId = Hashable
#: Outcomes worth retrying: overload and transient transport failures.
_RETRYABLE_STATUSES = (429, 503)


class CircuitOpenError(FrontendError):
    """Failing fast: the client's circuit breaker is open."""


@dataclass(frozen=True)
class ClientResponse:
    """Status + decoded JSON payload of one completed exchange."""

    status: int
    payload: Any
    headers: Mapping[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class FrontendClient:
    """Call a :class:`FrontendServer`; retries overload politely.

    Parameters
    ----------
    host, port:
        The server's bind address.
    token:
        Bearer token presented on every request.
    tenant:
        Default tenant for the convenience methods.
    retries:
        Attempts per request (1 = no retry).
    backoff, backoff_cap:
        Base and ceiling (seconds) of the exponential schedule.
    timeout:
        Per-connection socket timeout.
    retry_budget:
        Optional cap (seconds) on one logical request's total time
        across retries.  ``None`` keeps the attempt-count bound alone.
    breaker_threshold:
        Consecutive unavailability outcomes (transport failure or 503)
        that open the circuit; ``0`` disables the breaker.
    breaker_cooldown:
        Seconds the circuit stays open before one half-open probe.
    sleep, rng, clock:
        Injectable for tests: the sleeper receives the computed delay;
        the RNG drives the jitter; the clock drives budget and breaker
        timing.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: str,
        *,
        tenant: TenantId | None = None,
        retries: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        timeout: float = 10.0,
        retry_budget: float | None = None,
        breaker_threshold: int = 0,
        breaker_cooldown: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retries < 1:
            raise FrontendError(f"retries must be >= 1, got {retries}")
        if retry_budget is not None and retry_budget <= 0:
            raise FrontendError(
                f"retry_budget must be > 0, got {retry_budget}"
            )
        if breaker_threshold < 0:
            raise FrontendError(
                f"breaker_threshold must be >= 0, got {breaker_threshold}"
            )
        self._host = host
        self._port = int(port)
        self._token = str(token)
        self._tenant = tenant
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._timeout = float(timeout)
        self._retry_budget = (
            None if retry_budget is None else float(retry_budget)
        )
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = float(breaker_cooldown)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._consecutive_failures = 0
        self._open_until: float | None = None
        #: ``closed`` / ``open`` / ``half-open`` (observability + tests).
        self.breaker_state = "closed"
        #: Backoff sleeps actually performed (observability + tests).
        self.backoffs: list[float] = []

    # ------------------------------------------------------------------
    def _delay(self, attempt: int, retry_after: float | None) -> float:
        if retry_after is not None:
            return max(0.0, retry_after)
        window = min(self._backoff_cap, self._backoff * (2.0 ** attempt))
        return window * (0.5 + self._rng.random() / 2.0)

    def _once(
        self, method: str, path: str, payload: Any
    ) -> ClientResponse:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            connection.request(
                method,
                path,
                body=body,
                headers={
                    "Authorization": f"Bearer {self._token}",
                    "Content-Type": "application/json",
                    "Connection": "close",
                },
            )
            response = connection.getresponse()
            raw = response.read()
            headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            decoded = json.loads(raw) if raw else None
            return ClientResponse(response.status, decoded, headers)
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------
    def _breaker_gate(self) -> None:
        """Fail fast while open; admit one probe once cooled down."""
        if self._breaker_threshold <= 0 or self._open_until is None:
            return
        now = self._clock()
        if now < self._open_until:
            self.breaker_state = "open"
            raise CircuitOpenError(
                f"circuit open for another {self._open_until - now:.3f}s"
            )
        self.breaker_state = "half-open"

    def _breaker_failure(self) -> None:
        """An unavailability outcome (transport error or 503)."""
        if self._breaker_threshold <= 0:
            return
        self._consecutive_failures += 1
        half_open = self.breaker_state == "half-open"
        if half_open or self._consecutive_failures >= self._breaker_threshold:
            self._open_until = self._clock() + self._breaker_cooldown
            self.breaker_state = "open"

    def _breaker_success(self) -> None:
        """The node answered (any status but 503): it is alive."""
        if self._breaker_threshold <= 0:
            return
        self._consecutive_failures = 0
        self._open_until = None
        self.breaker_state = "closed"

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> ClientResponse:
        """One request with retry, budget, and breaker policy applied."""
        deadline = (
            None
            if self._retry_budget is None
            else self._clock() + self._retry_budget
        )
        last_error: Exception | None = None
        last_response: ClientResponse | None = None
        for attempt in range(self._retries):
            self._breaker_gate()
            try:
                response = self._once(method, path, payload)
            except (ConnectionError, OSError, http.client.HTTPException) as error:
                last_error, last_response = error, None
                self._breaker_failure()
            else:
                # A 503 marks the node unavailable (fenced / shutting
                # down); any other answer proves it alive — including
                # 429, which is backpressure, not death.
                if response.status == 503:
                    self._breaker_failure()
                else:
                    self._breaker_success()
                if response.status not in _RETRYABLE_STATUSES:
                    return response
                last_error, last_response = None, response
            if attempt + 1 >= self._retries:
                break
            retry_after = None
            if last_response is not None:
                header = last_response.headers.get("retry-after")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            delay = self._delay(attempt, retry_after)
            if deadline is not None and self._clock() + delay > deadline:
                break  # the sleep would blow the budget: stop here
            self.backoffs.append(delay)
            self._sleep(delay)
        if last_response is not None:
            return last_response  # a final 429/503 — caller inspects it
        raise FrontendError(
            f"{method} {path} failed after {attempt + 1} attempts: "
            f"{last_error}"
        )

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------
    def _resolve(self, tenant: TenantId | None) -> TenantId:
        tenant = tenant if tenant is not None else self._tenant
        if tenant is None:
            raise FrontendError("no tenant given and no default configured")
        return tenant

    def healthz(self) -> bool:
        return bool(self.request("GET", "/healthz").ok)

    def stats(self) -> dict:
        response = self.request("GET", "/v1/stats")
        if not response.ok:
            raise FrontendError(f"stats failed: {response.status}")
        return response.payload

    def register(
        self, k: int, *, tenant: TenantId | None = None, **kwargs
    ) -> ClientResponse:
        return self.request(
            "POST",
            "/v1/register",
            {"tenant": self._resolve(tenant), "k": k, "kwargs": kwargs},
        )

    def update(
        self,
        event: UpdateEvent,
        *,
        tenant: TenantId | None = None,
        ack: str = "window",
        ack_timeout: float | None = None,
    ) -> ClientResponse:
        """Submit one event; *ack* selects the durability guarantee.

        ``window`` (default) returns once the event is buffered;
        ``durable`` once its batch is fsynced on the primary (the
        response carries the WAL ``seq``); ``replicated`` additionally
        waits — bounded by *ack_timeout* — for a replica ack, reported
        honestly in the response's ``replicated`` flag.
        """
        payload: dict = {
            "tenant": self._resolve(tenant),
            "event": event_to_json(event),
        }
        if ack != "window":
            payload["ack"] = str(ack)
            if ack_timeout is not None:
                payload["timeout"] = float(ack_timeout)
        return self.request("POST", "/v1/update", payload)

    def query(
        self,
        *,
        tenant: TenantId | None = None,
        budget_ms: float | None = None,
        allow_degraded: bool = True,
        family: str | None = None,
        params: Mapping | None = None,
    ) -> ClientResponse:
        """Query the tenant's current answer.

        With *family* set (``"kcore"``, ``"reliability"``, ``"skyline"``,
        …) the request routes to that registered query family over the
        tenant's shared repaired worlds; *params* carries its keyword
        arguments.  Default is the top-k path.
        """
        payload: dict = {
            "tenant": self._resolve(tenant),
            "allow_degraded": allow_degraded,
        }
        if budget_ms is not None:
            payload["budget_ms"] = float(budget_ms)
        if family is not None:
            payload["family"] = str(family)
            if params:
                payload["params"] = dict(params)
        return self.request("POST", "/v1/query", payload)
