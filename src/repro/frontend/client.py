"""Synchronous client for the SLO-enforced front end.

A thin, dependency-free (:mod:`http.client`) helper that speaks the
protocol of :class:`~repro.frontend.server.FrontendServer` and bakes in
the polite-client behaviours the admission controller is designed
around:

* **retry with jittered exponential backoff** — retryable outcomes
  (connection refused/reset, 429, 503) sleep
  ``min(cap, base · 2^attempt) · uniform(0.5, 1.0)`` between attempts,
  decorrelating competing clients instead of letting them stampede in
  lockstep;
* **Retry-After is honoured** — when a 429 names a wait, that wait
  *replaces* the computed backoff (the server knows its own refill
  schedule better than the client's guess);
* **bounded attempts** — after ``retries`` failures the last error
  surfaces as :class:`~repro.core.errors.FrontendError` (or the last
  429 response is returned, so callers can inspect it).

The clock and RNG are injectable, so the backoff schedule is unit
-testable without sleeping.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro.core.errors import FrontendError
from repro.frontend.protocol import event_to_json
from repro.streaming.events import UpdateEvent

__all__ = ["ClientResponse", "FrontendClient"]

TenantId = Hashable
#: Outcomes worth retrying: overload and transient transport failures.
_RETRYABLE_STATUSES = (429, 503)


@dataclass(frozen=True)
class ClientResponse:
    """Status + decoded JSON payload of one completed exchange."""

    status: int
    payload: Any
    headers: Mapping[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class FrontendClient:
    """Call a :class:`FrontendServer`; retries overload politely.

    Parameters
    ----------
    host, port:
        The server's bind address.
    token:
        Bearer token presented on every request.
    tenant:
        Default tenant for the convenience methods.
    retries:
        Attempts per request (1 = no retry).
    backoff, backoff_cap:
        Base and ceiling (seconds) of the exponential schedule.
    timeout:
        Per-connection socket timeout.
    sleep, rng:
        Injectable for tests: the sleeper receives the computed delay;
        the RNG drives the jitter.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: str,
        *,
        tenant: TenantId | None = None,
        retries: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        timeout: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if retries < 1:
            raise FrontendError(f"retries must be >= 1, got {retries}")
        self._host = host
        self._port = int(port)
        self._token = str(token)
        self._tenant = tenant
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._timeout = float(timeout)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        #: Backoff sleeps actually performed (observability + tests).
        self.backoffs: list[float] = []

    # ------------------------------------------------------------------
    def _delay(self, attempt: int, retry_after: float | None) -> float:
        if retry_after is not None:
            return max(0.0, retry_after)
        window = min(self._backoff_cap, self._backoff * (2.0 ** attempt))
        return window * (0.5 + self._rng.random() / 2.0)

    def _once(
        self, method: str, path: str, payload: Any
    ) -> ClientResponse:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            connection.request(
                method,
                path,
                body=body,
                headers={
                    "Authorization": f"Bearer {self._token}",
                    "Content-Type": "application/json",
                    "Connection": "close",
                },
            )
            response = connection.getresponse()
            raw = response.read()
            headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            decoded = json.loads(raw) if raw else None
            return ClientResponse(response.status, decoded, headers)
        finally:
            connection.close()

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> ClientResponse:
        """One request with the retry/backoff policy applied."""
        last_error: Exception | None = None
        last_response: ClientResponse | None = None
        for attempt in range(self._retries):
            try:
                response = self._once(method, path, payload)
            except (ConnectionError, OSError, http.client.HTTPException) as error:
                last_error, last_response = error, None
            else:
                if response.status not in _RETRYABLE_STATUSES:
                    return response
                last_error, last_response = None, response
            if attempt + 1 >= self._retries:
                break
            retry_after = None
            if last_response is not None:
                header = last_response.headers.get("retry-after")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            delay = self._delay(attempt, retry_after)
            self.backoffs.append(delay)
            self._sleep(delay)
        if last_response is not None:
            return last_response  # a final 429/503 — caller inspects it
        raise FrontendError(
            f"{method} {path} failed after {self._retries} attempts: "
            f"{last_error}"
        )

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------
    def _resolve(self, tenant: TenantId | None) -> TenantId:
        tenant = tenant if tenant is not None else self._tenant
        if tenant is None:
            raise FrontendError("no tenant given and no default configured")
        return tenant

    def healthz(self) -> bool:
        return bool(self.request("GET", "/healthz").ok)

    def stats(self) -> dict:
        response = self.request("GET", "/v1/stats")
        if not response.ok:
            raise FrontendError(f"stats failed: {response.status}")
        return response.payload

    def register(
        self, k: int, *, tenant: TenantId | None = None, **kwargs
    ) -> ClientResponse:
        return self.request(
            "POST",
            "/v1/register",
            {"tenant": self._resolve(tenant), "k": k, "kwargs": kwargs},
        )

    def update(
        self, event: UpdateEvent, *, tenant: TenantId | None = None
    ) -> ClientResponse:
        return self.request(
            "POST",
            "/v1/update",
            {
                "tenant": self._resolve(tenant),
                "event": event_to_json(event),
            },
        )

    def query(
        self,
        *,
        tenant: TenantId | None = None,
        budget_ms: float | None = None,
        allow_degraded: bool = True,
        family: str | None = None,
        params: Mapping | None = None,
    ) -> ClientResponse:
        """Query the tenant's current answer.

        With *family* set (``"kcore"``, ``"reliability"``, ``"skyline"``,
        …) the request routes to that registered query family over the
        tenant's shared repaired worlds; *params* carries its keyword
        arguments.  Default is the top-k path.
        """
        payload: dict = {
            "tenant": self._resolve(tenant),
            "allow_degraded": allow_degraded,
        }
        if budget_ms is not None:
            payload["budget_ms"] = float(budget_ms)
        if family is not None:
            payload["family"] = str(family)
            if params:
                payload["params"] = dict(params)
        return self.request("POST", "/v1/query", payload)
