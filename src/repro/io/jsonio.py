"""JSON (de)serialisation for graphs and detection results.

JSON is the interchange format the experiment runner uses to persist
results (``EXPERIMENTS.md`` tables are generated from these records), and
the format example applications use to hand graphs between processes.
Labels survive round-trips for the JSON-representable label types (str,
int, float, bool); other hashables are stringified with a warning in the
payload.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.algorithms.base import DetectionResult
from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph_json",
    "load_graph_json",
    "result_to_dict",
    "result_from_dict",
    "save_results_json",
]

_JSON_SAFE = (str, int, float, bool)


def _encode_label(label: Any) -> Any:
    return label if isinstance(label, _JSON_SAFE) else str(label)


def graph_to_dict(graph: UncertainGraph) -> dict[str, Any]:
    """Encode *graph* as a JSON-ready dict."""
    return {
        "format": "repro-uncertain-graph",
        "version": 1,
        "nodes": [
            {"label": _encode_label(label), "self_risk": graph.self_risk(label)}
            for label in graph.nodes()
        ],
        "edges": [
            {
                "src": _encode_label(src),
                "dst": _encode_label(dst),
                "probability": prob,
            }
            for src, dst, prob in graph.edges()
        ],
    }


def graph_from_dict(payload: dict[str, Any]) -> UncertainGraph:
    """Decode a dict produced by :func:`graph_to_dict`."""
    if payload.get("format") != "repro-uncertain-graph":
        raise GraphError(
            f"not an uncertain-graph payload: format={payload.get('format')!r}"
        )
    graph = UncertainGraph()
    for node in payload["nodes"]:
        graph.add_node(node["label"], node["self_risk"])
    for edge in payload["edges"]:
        graph.add_edge(edge["src"], edge["dst"], edge["probability"])
    return graph


def save_graph_json(graph: UncertainGraph, path: str | os.PathLike) -> None:
    """Write *graph* as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=1)


def load_graph_json(path: str | os.PathLike) -> UncertainGraph:
    """Read a JSON graph written by :func:`save_graph_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))


def result_to_dict(result: DetectionResult) -> dict[str, Any]:
    """Encode a :class:`DetectionResult` as a JSON-ready dict."""
    return {
        "method": result.method,
        "k": result.k,
        "nodes": [_encode_label(label) for label in result.nodes],
        "scores": {
            str(_encode_label(label)): score
            for label, score in result.scores.items()
        },
        "samples_used": result.samples_used,
        "candidate_size": result.candidate_size,
        "k_verified": result.k_verified,
        "elapsed_seconds": result.elapsed_seconds,
        "details": {key: _jsonify(value) for key, value in result.details.items()},
        "stale": result.stale,
        "degraded": result.degraded,
    }


def result_from_dict(payload: dict[str, Any]) -> DetectionResult:
    """Decode a dict produced by :func:`result_to_dict`.

    Labels come back as their JSON representations (non-JSON-safe label
    types were stringified on the way out), so compare decoded results
    with results decoded the same way.
    """
    return DetectionResult(
        method=str(payload["method"]),
        k=int(payload["k"]),
        nodes=list(payload["nodes"]),
        scores={
            label: float(score)
            for label, score in payload["scores"].items()
        },
        samples_used=int(payload["samples_used"]),
        candidate_size=int(payload["candidate_size"]),
        k_verified=int(payload["k_verified"]),
        elapsed_seconds=float(payload["elapsed_seconds"]),
        details=dict(payload.get("details", {})),
        stale=bool(payload.get("stale", False)),
        degraded=bool(payload.get("degraded", False)),
    )


def _jsonify(value: Any) -> Any:
    if isinstance(value, _JSON_SAFE) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def save_results_json(
    results: list[DetectionResult], path: str | os.PathLike
) -> None:
    """Persist a list of detection results as a JSON array."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([result_to_dict(result) for result in results], handle, indent=1)
