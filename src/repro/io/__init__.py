"""Graph and result serialisation (text edge lists, JSON, Graphviz DOT)."""

from repro.io.dot import to_dot, write_dot
from repro.io.edgelist import (
    dumps_edgelist,
    loads_edgelist,
    read_edgelist,
    write_edgelist,
)
from repro.io.jsonio import (
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    result_to_dict,
    save_graph_json,
    save_results_json,
)

__all__ = [
    "to_dot",
    "write_dot",
    "dumps_edgelist",
    "loads_edgelist",
    "read_edgelist",
    "write_edgelist",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph_json",
    "result_to_dict",
    "save_graph_json",
    "save_results_json",
]
