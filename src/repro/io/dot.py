"""Graphviz DOT export for uncertain graphs.

The deployed system (paper §5.1) visualises guarantee networks with
D3.js/ForceAtlas2; this exporter produces the equivalent offline
artefact — a DOT file where node colour intensity encodes self-risk (or
any supplied score, e.g. estimated default probabilities) and edge
labels carry diffusion probabilities.
"""

from __future__ import annotations

import os
from typing import Mapping

from repro.core.errors import GraphError
from repro.core.graph import NodeLabel, UncertainGraph

__all__ = ["to_dot", "write_dot"]


def _quote(label: object) -> str:
    text = str(label).replace('"', '\\"')
    return f'"{text}"'


def _risk_color(score: float) -> str:
    """White→red ramp over [0, 1] as a hex RGB colour."""
    level = int(round(255 * (1.0 - min(max(score, 0.0), 1.0))))
    return f"#ff{level:02x}{level:02x}"


def to_dot(
    graph: UncertainGraph,
    scores: Mapping[NodeLabel, float] | None = None,
    highlight: set | frozenset | None = None,
    graph_name: str = "uncertain_graph",
) -> str:
    """Render *graph* as a DOT string.

    Parameters
    ----------
    graph:
        The uncertain graph.
    scores:
        Optional node colouring scores in ``[0, 1]`` (defaults to each
        node's self-risk).  Nodes absent from the mapping fall back to
        self-risk.
    highlight:
        Optional set of labels drawn with a bold border (e.g. the top-k
        answer set).
    graph_name:
        DOT graph identifier.
    """
    highlight = highlight or frozenset()
    lines = [f"digraph {graph_name} {{"]
    lines.append("  node [style=filled, fontsize=10];")
    for label in graph.nodes():
        if scores is not None and label in scores:
            score = float(scores[label])
        else:
            score = graph.self_risk(label)
        if not 0.0 <= score <= 1.0:
            raise GraphError(
                f"score for {label!r} must be in [0, 1], got {score}"
            )
        attributes = [f'fillcolor="{_risk_color(score)}"']
        attributes.append(f'tooltip="p={score:.4f}"')
        if label in highlight:
            attributes.append("penwidth=3")
        lines.append(f"  {_quote(label)} [{', '.join(attributes)}];")
    for src, dst, probability in graph.edges():
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} "
            f'[label="{probability:.2f}", fontsize=8];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(
    graph: UncertainGraph,
    path: str | os.PathLike,
    scores: Mapping[NodeLabel, float] | None = None,
    highlight: set | frozenset | None = None,
) -> None:
    """Write the DOT rendering of *graph* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph, scores=scores, highlight=highlight))
