"""Plain-text edge-list I/O for uncertain graphs.

Format (whitespace separated, ``#`` comments allowed):

* node lines:  ``N <label> <self_risk>``
* edge lines:  ``E <src> <dst> <diffusion_probability>``

Node lines must precede the edges that reference them.  Labels are stored
as strings on read; callers needing typed labels can remap afterwards.
This format exists so experiment graphs can be checked into text fixtures
and diffed.
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = ["write_edgelist", "read_edgelist", "dumps_edgelist", "loads_edgelist"]


def _write(graph: UncertainGraph, handle: TextIO) -> None:
    handle.write("# uncertain graph edge list\n")
    handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
    # 17 significant digits round-trips any float64 exactly; 12 does not,
    # and lossy probabilities break the serialisation round-trip tests.
    for label in graph.nodes():
        handle.write(f"N {label} {graph.self_risk(label):.17g}\n")
    for src, dst, prob in graph.edges():
        handle.write(f"E {src} {dst} {prob:.17g}\n")


def _parse(lines: Iterable[str]) -> UncertainGraph:
    graph = UncertainGraph()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "N":
            if len(parts) != 3:
                raise GraphError(
                    f"line {line_number}: node lines need 3 fields, got {len(parts)}"
                )
            graph.add_node(parts[1], float(parts[2]))
        elif kind == "E":
            if len(parts) != 4:
                raise GraphError(
                    f"line {line_number}: edge lines need 4 fields, got {len(parts)}"
                )
            graph.add_edge(parts[1], parts[2], float(parts[3]))
        else:
            raise GraphError(
                f"line {line_number}: unknown record type {kind!r}"
            )
    return graph


def write_edgelist(graph: UncertainGraph, path: str | os.PathLike) -> None:
    """Write *graph* to *path* in the text edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(graph, handle)


def read_edgelist(path: str | os.PathLike) -> UncertainGraph:
    """Read an uncertain graph from *path*; labels come back as strings."""
    with open(path, "r", encoding="utf-8") as handle:
        return _parse(handle)


def dumps_edgelist(graph: UncertainGraph) -> str:
    """Serialise *graph* to an edge-list string."""
    import io

    buffer = io.StringIO()
    _write(graph, buffer)
    return buffer.getvalue()


def loads_edgelist(text: str) -> UncertainGraph:
    """Parse an edge-list string produced by :func:`dumps_edgelist`."""
    return _parse(text.splitlines())
