"""Bottom-k sketches (Cohen & Kaplan) and the BSRBK early-stop machinery.

Section 2.2 of the paper: hash every distinct element of a multiset into
``(0, 1)``; the sketch keeps the ``bk`` smallest hash values and estimates
the number of distinct elements as ``(bk - 1) / L(A, bk)`` where
``L(A, bk)`` is the bk-th smallest hash.  The expected relative error is
``sqrt(2 / (pi (bk - 2)))`` and the coefficient of variation is at most
``1 / sqrt(bk - 2)``.

Section 3.3 uses the sketch as a *stopping rule*: assign every sample id a
uniform hash, process samples in ascending hash order, and count for each
candidate the samples in which it defaults.  The first candidate whose
counter reaches ``bk`` has, provably, the largest estimated default
probability (Theorem 6); for top-k, stop when ``k - k'`` candidates have
reached ``bk``.  :class:`BottomKStopper` implements that bookkeeping.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import SamplingError

__all__ = [
    "BottomKSketch",
    "BottomKStopper",
    "BottomKScan",
    "bottom_k_scan",
    "expected_relative_error",
    "coefficient_of_variation",
]


def _validate_bk(bk: int) -> int:
    bk = int(bk)
    if bk < 2:
        raise SamplingError(f"bottom-k parameter bk must be >= 2, got {bk}")
    return bk


def expected_relative_error(bk: int) -> float:
    """Expected relative error of a bottom-k estimate: sqrt(2/(pi(bk-2)))."""
    bk = _validate_bk(bk)
    if bk <= 2:
        return math.inf
    return math.sqrt(2.0 / (math.pi * (bk - 2)))


def coefficient_of_variation(bk: int) -> float:
    """Upper bound on the coefficient of variation: 1/sqrt(bk-2)."""
    bk = _validate_bk(bk)
    if bk <= 2:
        return math.inf
    return 1.0 / math.sqrt(bk - 2)


class BottomKSketch:
    """Classic bottom-k distinct-count sketch over hash values in (0, 1).

    Maintains the ``bk`` smallest hashes seen so far with a max-heap, so
    inserts are ``O(log bk)``.

    Examples
    --------
    >>> sketch = BottomKSketch(bk=4)
    >>> for h in [0.9, 0.1, 0.4, 0.2, 0.05]:
    ...     sketch.add(h)
    >>> round(sketch.kth_smallest(), 2)
    0.4
    """

    def __init__(self, bk: int) -> None:
        self._bk = _validate_bk(bk)
        self._heap: list[float] = []  # max-heap via negation
        self._seen = 0

    @property
    def bk(self) -> int:
        """The sketch size parameter."""
        return self._bk

    @property
    def size(self) -> int:
        """How many hashes are currently retained (≤ bk)."""
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """Whether ``bk`` hashes have been retained."""
        return len(self._heap) == self._bk

    def add(self, hash_value: float) -> None:
        """Offer one hash value in ``(0, 1)`` to the sketch."""
        if not 0.0 < hash_value < 1.0:
            raise SamplingError(
                f"hash values must lie strictly in (0, 1), got {hash_value}"
            )
        self._seen += 1
        if len(self._heap) < self._bk:
            heapq.heappush(self._heap, -hash_value)
        elif hash_value < -self._heap[0]:
            heapq.heapreplace(self._heap, -hash_value)

    def update(self, hash_values) -> None:
        """Offer many hash values at once."""
        for value in hash_values:
            self.add(float(value))

    def kth_smallest(self) -> float:
        """``L(A, bk)`` — requires the sketch to be full."""
        if not self.is_full:
            raise SamplingError(
                f"sketch holds {self.size} < bk={self._bk} hashes; "
                "cannot read the bk-th smallest"
            )
        return -self._heap[0]

    def estimate_distinct(self) -> float:
        """Distinct-count estimate ``(bk - 1) / L(A, bk)``.

        Falls back to the exact retained count while the sketch is not yet
        full (every hash seen is retained, so the count is exact assuming
        hash uniqueness).
        """
        if not self.is_full:
            return float(self.size)
        return (self._bk - 1) / self.kth_smallest()


@dataclass(frozen=True)
class BottomKScan:
    """Result of one vectorised bottom-k stopping scan.

    Field-for-field equivalent to feeding the scanned rows, in order,
    through a :class:`BottomKStopper` (the tests pin the equivalence):

    Attributes
    ----------
    processed:
        Samples the stopper would have consumed — the row the
        ``stop_after``-th candidate finished on (inclusive), or all rows
        when the stop never fires.
    stopped_early:
        Whether ``stop_after`` candidates finished within the rows.
    finish_positions:
        Per-candidate row index (0-based) where the candidate's counter
        reached ``bk``; ``-1`` for candidates unfinished within
        ``processed``.
    counts:
        Per-candidate default counters over the processed prefix, frozen
        at ``bk`` exactly as the stopper freezes them.
    estimates:
        Per-candidate default-probability estimates: sketch estimates
        for finished candidates, empirical frequencies over the
        processed prefix otherwise (``BottomKStopper.estimates``).
    """

    processed: int
    stopped_early: bool
    finish_positions: np.ndarray
    counts: np.ndarray
    estimates: np.ndarray


def bottom_k_scan(
    outcomes: np.ndarray,
    hashes: np.ndarray,
    bk: int,
    stop_after: int,
    total_samples: int,
) -> BottomKScan:
    """Replay the bottom-k stopping rule over a whole outcome matrix.

    *outcomes* is the boolean ``(rows, candidates)`` default matrix in
    **ascending hash order**, *hashes* the matching sample hashes.  One
    cumulative-sum pass replaces the stopper's per-sample Python loop —
    and because the result is a pure function of the prefix (a longer
    prefix can only append later finishes, never move earlier ones), the
    scan gives the same stopping point no matter how incrementally the
    rows were materialised.  This is what lets BSRBK run over the
    indexed engine's order-independent worlds and lets the streaming
    monitor re-run the rule after splicing repaired worlds.
    """
    outcomes = np.asarray(outcomes, dtype=bool)
    if outcomes.ndim != 2 or outcomes.shape[0] == 0:
        raise SamplingError("outcomes must be a non-empty (rows, B) matrix")
    rows = outcomes.shape[0]
    hashes = np.asarray(hashes, dtype=np.float64)
    if hashes.shape != (rows,):
        raise SamplingError(
            f"need one hash per row: {hashes.shape} vs {rows} rows"
        )
    bk = _validate_bk(bk)
    if stop_after <= 0:
        raise SamplingError("stop_after must be positive")
    if total_samples <= 0:
        raise SamplingError("total_samples must be positive")
    cums = np.cumsum(outcomes, axis=0, dtype=np.int64)
    reached = cums >= bk
    finished_any = reached[-1]
    # argmax finds the first True row; candidates that never reach bk
    # sort past every real finish position via the sentinel ``rows``.
    finish = np.where(finished_any, reached.argmax(axis=0), rows)
    stopped_early = int(finished_any.sum()) >= stop_after
    if stopped_early:
        stop_position = int(
            np.partition(finish, stop_after - 1)[stop_after - 1]
        )
        processed = stop_position + 1
    else:
        processed = rows
    finished = finish < processed
    finish_positions = np.where(finished, finish, -1)
    counts = np.minimum(cums[processed - 1], bk)
    empirical = counts / float(processed)
    with np.errstate(divide="ignore", invalid="ignore"):
        sketched = (bk - 1) / (
            hashes[np.clip(finish_positions, 0, rows - 1)]
            * float(total_samples)
        )
    estimates = np.where(finished, sketched, empirical)
    return BottomKScan(
        processed=processed,
        stopped_early=stopped_early,
        finish_positions=finish_positions,
        counts=counts,
        estimates=estimates,
    )


class BottomKStopper:
    """Early-stopping bookkeeping for BSRBK (Section 3.3).

    Samples must be fed in **ascending hash order**.  For each sample the
    caller reports which candidates defaulted; the stopper counts per
    candidate and freezes a candidate once its counter reaches ``bk``,
    recording the hash at which it finished (its ``L(A, bk)``).

    Parameters
    ----------
    num_candidates:
        Size of the candidate set being tracked.
    bk:
        Counter threshold (the bottom-k parameter).
    total_samples:
        The full sample budget ``t`` the hashes were drawn over; needed to
        turn distinct-count estimates into probabilities.
    stop_after:
        Stop once this many candidates have finished (``k - k'``).
    """

    def __init__(
        self, num_candidates: int, bk: int, total_samples: int, stop_after: int
    ) -> None:
        if num_candidates <= 0:
            raise SamplingError("num_candidates must be positive")
        if total_samples <= 0:
            raise SamplingError("total_samples must be positive")
        if stop_after <= 0:
            raise SamplingError("stop_after must be positive")
        self._bk = _validate_bk(bk)
        self._total_samples = int(total_samples)
        self._stop_after = int(stop_after)
        self._counts = np.zeros(num_candidates, dtype=np.int64)
        self._finish_hash = np.full(num_candidates, np.nan)
        self._finished_order: list[int] = []
        self._processed = 0
        self._last_hash = 0.0

    @property
    def processed(self) -> int:
        """Number of samples consumed so far."""
        return self._processed

    @property
    def counts(self) -> np.ndarray:
        """Per-candidate default counters (read-only view)."""
        return self._counts

    @property
    def finished(self) -> list[int]:
        """Candidate positions that reached ``bk``, in finishing order."""
        return list(self._finished_order)

    @property
    def should_stop(self) -> bool:
        """Whether ``stop_after`` candidates have finished."""
        return len(self._finished_order) >= self._stop_after

    def offer(self, sample_hash: float, outcome: np.ndarray) -> list[int]:
        """Consume one sample; return candidates that finished on it.

        Parameters
        ----------
        sample_hash:
            The sample's hash; must be non-decreasing across calls.
        outcome:
            Boolean vector over candidates ("defaulted in this world").
        """
        if sample_hash < self._last_hash:
            raise SamplingError(
                "samples must be offered in ascending hash order: "
                f"{sample_hash} < {self._last_hash}"
            )
        self._last_hash = float(sample_hash)
        self._processed += 1
        outcome = np.asarray(outcome, dtype=bool)
        if outcome.shape != self._counts.shape:
            raise SamplingError(
                f"outcome has shape {outcome.shape}, "
                f"expected {self._counts.shape}"
            )
        newly_finished: list[int] = []
        active = outcome & np.isnan(self._finish_hash)
        hits = np.flatnonzero(active)
        self._counts[hits] += 1
        for position in hits:
            if self._counts[position] >= self._bk:
                self._finish_hash[position] = sample_hash
                self._finished_order.append(int(position))
                newly_finished.append(int(position))
        return newly_finished

    def estimates(self) -> np.ndarray:
        """Per-candidate default-probability estimates.

        Finished candidates use the sketch estimate
        ``(bk - 1) / (L(A, bk) * t)`` (Theorem 6); unfinished candidates
        fall back to the empirical frequency over the processed prefix.
        Finished estimates dominate unfinished ones by construction of the
        ascending-hash processing order.
        """
        if self._processed == 0:
            raise SamplingError("no samples processed yet")
        empirical = self._counts / float(self._processed)
        with np.errstate(divide="ignore", invalid="ignore"):
            sketched = (self._bk - 1) / (self._finish_hash * self._total_samples)
        return np.where(np.isnan(self._finish_hash), empirical, sketched)
