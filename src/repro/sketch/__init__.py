"""Bottom-k sketches and the BSRBK early-stopping rule (paper §2.2, §3.3)."""

from repro.sketch.bottom_k import (
    BottomKSketch,
    BottomKStopper,
    coefficient_of_variation,
    expected_relative_error,
)

__all__ = [
    "BottomKSketch",
    "BottomKStopper",
    "coefficient_of_variation",
    "expected_relative_error",
]
