"""Common interface and result type for the five detection algorithms.

Every detector consumes an :class:`~repro.core.graph.UncertainGraph` and an
answer size ``k`` and produces a :class:`DetectionResult` — the ranked
top-k vulnerable nodes plus enough telemetry (sample counts, candidate
sizes, wall time) for the efficiency experiments of Figure 6 to be
regenerated without re-instrumenting the algorithms.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.graph import NodeLabel, UncertainGraph
from repro.core.topk import validate_k
from repro.sampling.rng import SeedLike

__all__ = ["DetectionResult", "VulnerableNodeDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one top-k vulnerable nodes detection run.

    Attributes
    ----------
    method:
        Short method name ("N", "SN", "SR", "BSR", "BSRBK").
    k:
        Requested answer size.
    nodes:
        The ``k`` detected labels, most vulnerable first.
    scores:
        Mapping from each returned label to the score it was ranked by
        (estimated default probability; for bound-verified nodes, the
        lower bound that certified them).
    samples_used:
        Number of possible worlds materialised.
    candidate_size:
        ``|B|`` after pruning (equals ``n`` for methods without pruning).
    k_verified:
        ``k'`` — answers certified by Lemma 1 rule 1 without sampling.
    elapsed_seconds:
        Wall-clock time of the detection call.
    details:
        Free-form per-method diagnostics (thresholds, bound orders, …).
    stale:
        ``False`` for every freshly computed answer.  The durable
        serving layer sets ``True`` on an answer served from the last
        snapshot while its tenant is still replaying the WAL — correct
        as of the snapshot, possibly behind the durable stream.  Not
        part of :meth:`same_answer` (staleness is serving metadata, not
        answer content).
    degraded:
        ``False`` for every exact answer.  The SLO-enforced front end
        sets ``True`` on a *bounds-only* answer — a ranking assembled
        from the always-warm Eq-(1) lower/upper iterates alone, served
        when the full sampling repair would blow the caller's latency
        budget.  A degraded answer is bounds-consistent (every reported
        node's upper bound reaches the k-th largest lower bound) but
        not the Theorem-5 estimate; like ``stale`` it is serving
        metadata, excluded from :meth:`same_answer`.
    """

    method: str
    k: int
    nodes: list[NodeLabel]
    scores: dict[NodeLabel, float]
    samples_used: int
    candidate_size: int
    k_verified: int
    elapsed_seconds: float
    details: dict[str, Any] = field(default_factory=dict)
    stale: bool = False
    degraded: bool = False

    def top_set(self) -> frozenset:
        """The answer as a set (what precision@k compares)."""
        return frozenset(self.nodes)

    def same_answer(self, other: "DetectionResult") -> bool:
        """Bit-identity of the *answer* with another result.

        The single definition of the repository's equivalence contract
        (incremental monitors and the serving layer promise answers
        ``same_answer``-equal to fresh detection): ranked nodes, their
        scores, the sample budget, and the Algorithm-4 outcome — but not
        wall-clock or free-form diagnostics, which legitimately differ.
        """
        return (
            self.nodes == other.nodes
            and self.scores == other.scores
            and self.samples_used == other.samples_used
            and self.candidate_size == other.candidate_size
            and self.k_verified == other.k_verified
        )

    def summary(self) -> dict[str, Any]:
        """Flat dict for experiment tables."""
        return {
            "method": self.method,
            "k": self.k,
            "samples": self.samples_used,
            "candidates": self.candidate_size,
            "verified": self.k_verified,
            "seconds": round(self.elapsed_seconds, 4),
        }


class VulnerableNodeDetector(abc.ABC):
    """Abstract base class for top-k vulnerable node detectors.

    Subclasses implement :meth:`_detect`; the public :meth:`detect` wraps
    it with argument validation and wall-clock timing so every method is
    measured identically in the benchmarks.

    Parameters
    ----------
    seed:
        Seed/generator for all randomness of this detector instance.
    """

    #: Short name used in experiment tables; subclasses override.
    name: str = "abstract"

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed

    @abc.abstractmethod
    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        """Run the detection; *k* is already validated."""

    def detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        """Detect the top-*k* vulnerable nodes of *graph*.

        Raises
        ------
        GraphError
            If ``k`` is not in ``[1, n]`` or the graph is empty.
        """
        k = validate_k(k, graph.num_nodes)
        started = time.perf_counter()
        result = self._detect(graph, k)
        elapsed = time.perf_counter() - started
        # Timing is recorded here so subclasses cannot forget it; the
        # dataclass is frozen, so swap in the measured elapsed time with
        # `replace`, which carries every other field (present and
        # future) along unchanged.
        return dataclasses.replace(result, elapsed_seconds=elapsed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
