"""The five top-k vulnerable node detectors evaluated in the paper."""

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.algorithms.naive import NaiveDetector
from repro.algorithms.registry import ALL_METHODS, detector_class, make_detector
from repro.algorithms.sn import SampledNaiveDetector
from repro.algorithms.sr import SampleReverseDetector

__all__ = [
    "DetectionResult",
    "VulnerableNodeDetector",
    "NaiveDetector",
    "SampledNaiveDetector",
    "SampleReverseDetector",
    "BoundedSampleReverseDetector",
    "BottomKDetector",
    "ALL_METHODS",
    "detector_class",
    "make_detector",
]
