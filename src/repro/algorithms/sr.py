"""Method SR — reverse sampling on a filtered candidate set.

The intermediate method of Section 4.1: derive lower/upper bounds, drop
every node that rule 2 of Lemma 1 proves cannot be in the top-k
(``pu(v) < Tl``), then estimate only the survivors with the reverse
sampler of Algorithm 5.  No verification (rule 1) is applied, so the
sample size is Equation (3) evaluated on the shrunken universe ``|B|``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.bounds.iterative import bound_pair
from repro.core.graph import UncertainGraph
from repro.core.topk import kth_largest, top_k_indices
from repro.sampling.reverse import reverse_engine
from repro.sampling.rng import SeedLike
from repro.sampling.sample_size import basic_sample_size, validate_epsilon_delta

__all__ = ["SampleReverseDetector"]


class SampleReverseDetector(VulnerableNodeDetector):
    """Reverse sampling + rule-2 filtering (method **SR**).

    Parameters
    ----------
    epsilon, delta:
        Approximation target.
    bound_order:
        The ``z`` of Algorithms 2/3 used to derive the filtering bounds
        (the paper settles on 2 after the Figure 5 sweep).
    seed:
        Randomness control.
    engine:
        Reverse-sampling engine: ``"indexed"`` (counter-PRF worlds —
        the default), ``"batched"`` or ``"reference"``.
    """

    name = "SR"

    def __init__(
        self,
        epsilon: float = 0.3,
        delta: float = 0.1,
        bound_order: int = 2,
        seed: SeedLike = None,
        engine: str = "indexed",
    ) -> None:
        super().__init__(seed)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._bound_order = int(bound_order)
        self._engine = reverse_engine(engine)

    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        lower, upper = bound_pair(graph, self._bound_order, self._bound_order)
        threshold_lower = kth_largest(lower, k)
        candidates = np.flatnonzero(upper >= threshold_lower)
        samples = basic_sample_size(
            int(candidates.size), k, self._epsilon, self._delta
        )
        sampler = self._engine(graph, candidates, seed=self._seed)
        probabilities = sampler.run(samples).probabilities
        top_positions = top_k_indices(probabilities, k)
        top_indices = candidates[top_positions]
        nodes = [graph.label(int(i)) for i in top_indices]
        scores = {
            graph.label(int(i)): float(probabilities[pos])
            for pos, i in zip(top_positions, top_indices)
        }
        return DetectionResult(
            method=self.name,
            k=k,
            nodes=nodes,
            scores=scores,
            samples_used=samples,
            candidate_size=int(candidates.size),
            k_verified=0,
            elapsed_seconds=0.0,
            details={
                "epsilon": self._epsilon,
                "delta": self._delta,
                "bound_order": self._bound_order,
                "Tl": float(threshold_lower),
                "nodes_touched": sampler.nodes_touched,
                "edges_touched": sampler.edges_touched,
            },
        )
