"""Name-based construction of the five evaluated detectors.

The experiment harness refers to methods by the paper's labels
("N", "SN", "SR", "BSR", "BSRBK"); this registry turns a label plus
keyword overrides into a configured detector instance.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algorithms.base import VulnerableNodeDetector
from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.algorithms.naive import NaiveDetector
from repro.algorithms.sn import SampledNaiveDetector
from repro.algorithms.sr import SampleReverseDetector
from repro.core.errors import ExperimentError

__all__ = ["ALL_METHODS", "make_detector", "detector_class"]

#: Method labels in the paper's presentation order.
ALL_METHODS: tuple[str, ...] = ("N", "SN", "SR", "BSR", "BSRBK")

_REGISTRY: dict[str, Callable[..., VulnerableNodeDetector]] = {
    "N": NaiveDetector,
    "SN": SampledNaiveDetector,
    "SR": SampleReverseDetector,
    "BSR": BoundedSampleReverseDetector,
    "BSRBK": BottomKDetector,
}

#: Constructor keywords each method accepts (used to filter shared configs).
_ACCEPTED_KEYWORDS: dict[str, frozenset[str]] = {
    "N": frozenset({"samples", "seed", "batch_size"}),
    "SN": frozenset({"epsilon", "delta", "seed", "batch_size"}),
    "SR": frozenset({"epsilon", "delta", "bound_order", "seed", "engine"}),
    "BSR": frozenset(
        {"epsilon", "delta", "lower_order", "upper_order", "seed", "engine"}
    ),
    "BSRBK": frozenset(
        {"bk", "epsilon", "delta", "lower_order", "upper_order", "seed", "engine"}
    ),
}


def detector_class(name: str) -> Callable[..., VulnerableNodeDetector]:
    """The detector class registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown method {name!r}; known methods: {sorted(_REGISTRY)}"
        ) from None


def make_detector(
    name: str, strict: bool = False, **kwargs: Any
) -> VulnerableNodeDetector:
    """Instantiate the method *name* with keyword overrides.

    Parameters
    ----------
    name:
        One of :data:`ALL_METHODS`.
    strict:
        When ``False`` (default) keywords the method does not accept are
        silently dropped, which lets experiment configs pass one shared
        parameter dict to every method.  When ``True`` unknown keywords
        raise.
    kwargs:
        Constructor arguments for the method.
    """
    cls = detector_class(name)
    accepted = _ACCEPTED_KEYWORDS[name]
    unknown = set(kwargs) - accepted
    if unknown and strict:
        raise ExperimentError(
            f"method {name!r} does not accept keyword(s) {sorted(unknown)}"
        )
    filtered = {key: value for key, value in kwargs.items() if key in accepted}
    return cls(**filtered)
